#!/usr/bin/env python3
"""Section 5.5: facet analysis of higher-order programs.

Two corpus programs exercise Figures 5-6:

* ``ho_pipeline`` folds ``compose f g`` over a vector — abstract
  closures flow through ``compose`` into ``fold``;
* ``ho_select`` picks between two lambdas with a conditional — when the
  flag is *dynamic* the analysis must answer ``T_C`` (the unknown
  operator) and still collect signatures from both branches by applying
  them "in advance" (Figure 6's conditional rule).

Run:  python examples/higher_order_analysis.py
"""

from repro import BT, FacetSuite, VectorSizeFacet, parse_program
from repro.facets.abstract import AbstractSuite
from repro.offline.higher_order import analyze_higher_order
from repro.workloads import HO_PIPELINE_SRC, HO_SELECT_SRC


def main() -> None:
    suite = AbstractSuite(FacetSuite([VectorSizeFacet()]))

    # -- pipeline: dynamic vector of static size, static multiplier -----
    pipeline = parse_program(HO_PIPELINE_SRC)
    result = analyze_higher_order(
        pipeline,
        [suite.input("vector", bt=BT.DYNAMIC, size="s"),
         suite.static("float")],
        suite)
    print("== ho_pipeline ==")
    print(f"result abstract value: {result.result} "
          f"(binding time {result.bt_of_result()})")
    for name, (args, out) in sorted(result.signatures.items()):
        rendered = " x ".join(str(a) for a in args)
        print(f"  {name} : {rendered} -> {out}")

    # -- select: static flag vs dynamic flag -------------------------------
    select = parse_program(HO_SELECT_SRC)
    for flag_bt, label in [(BT.STATIC, "static"), (BT.DYNAMIC,
                                                   "dynamic")]:
        result = analyze_higher_order(
            select,
            [suite.dynamic("int"), suite.input("bool", bt=flag_bt)],
            suite)
        print(f"\n== ho_select, flag {label} ==")
        print(f"result: {result.result} "
              f"(binding time {result.bt_of_result()})")
    print("\nWith a static flag the chosen lambda is known and the "
          "applications can specialize; with a dynamic flag the "
          "function-valued conditional is T_C and the result is "
          "Dynamic — exactly Figure 6's treatment.")


if __name__ == "__main__":
    main()
