#!/usr/bin/env python3
"""Example 1 in action: specializing on *signs*.

The paper's Example 1 defines the Sign facet; this example shows what
it buys.  ``normalize`` dispatches on the sign of its input; knowing
only that the input is positive — no concrete value at all — lets
parameterized PE delete the sign test and the dead negative branch.
Conventional PE (Figure 2) can do nothing here, which we demonstrate
side by side.

Run:  python examples/sign_specialization.py
"""

from repro import (
    DYN, FacetSuite, Interpreter, SignFacet, parse_program,
    pretty_program, specialize_online, specialize_simple)
from repro.online import PEConfig, UnfoldStrategy
from repro.workloads import SIGN_PIPELINE_SRC


def main() -> None:
    program = parse_program(SIGN_PIPELINE_SRC)
    print("Source:")
    print(pretty_program(program))

    # ``shrink`` recurses on a dynamic bound, so ask APP to specialize
    # rather than unfold forever.
    config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)

    # -- conventional PE: x dynamic, scale dynamic: nothing to do --------
    simple = specialize_simple(program, [DYN, DYN], config)
    print("Conventional PE (Figure 2), everything dynamic:")
    print(pretty_program(simple.program))
    print(f"folds: {simple.stats.prim_folds}\n")

    # -- parameterized PE: x is dynamic but known POSITIVE ----------------
    suite = FacetSuite([SignFacet()])
    inputs = [suite.input("int", sign="pos"),
              suite.input("int", sign="pos")]
    result = specialize_online(program, inputs, suite, config)
    print("Parameterized PE, x and scale known positive:")
    print(pretty_program(result.program))
    print(f"sign-facet folds: "
          f"{result.stats.folds_by_facet.get('sign', 0)}, "
          f"conditionals reduced: {result.stats.if_reductions}")

    # The sign test `(< x 0)` folded to false: the residual goal goes
    # straight to the positive branch.
    residual_src = pretty_program(result.program)
    assert "(< " not in residual_src.split("\n\n")[0], \
        "sign test should have been eliminated from the goal function"

    # Behaviour is preserved on positive inputs.
    for x, scale in [(7, 3), (12, 5), (1, 9)]:
        want = Interpreter(program).run(x, scale)
        got = Interpreter(result.program).run(x, scale)
        assert want == got, (x, scale, want, got)
    print("\nresidual verified on positive inputs ✓")


if __name__ == "__main__":
    main()
