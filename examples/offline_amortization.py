#!/usr/bin/env python3
"""Why offline? Amortizing one analysis over many specializations.

The paper's argument for the offline strategy (Sections 1 and 5): facet
computation is hoisted out of specialization, so when one program is
specialized many times — same binding-time *pattern*, different values —
the analysis runs once and every specialization is cheap.  This example
specializes the polynomial evaluator for many coefficient vectors and
compares total facet computations under the two strategies.

Run:  python examples/offline_amortization.py
"""

import time

from repro import (
    AbstractSuite, BT, FacetSuite, VectorSizeFacet, analyze,
    parse_program, specialize_online)
from repro.offline.specializer import OfflineSpecializer
from repro.workloads import POLY_EVAL_SRC

DEGREES = [2, 3, 4, 5, 6, 7, 8, 9]


def main() -> None:
    program = parse_program(POLY_EVAL_SRC)
    suite = FacetSuite([VectorSizeFacet()])

    # -- online: every specialization recomputes every facet -------------
    online_evals = 0
    start = time.perf_counter()
    for degree in DEGREES:
        inputs = [suite.input("vector", size=degree),
                  suite.unknown("float")]
        result = specialize_online(program, inputs, suite)
        online_evals += result.stats.facet_evaluations
    online_time = time.perf_counter() - start

    # -- offline: one analysis, many specializations ----------------------
    abstract_suite = AbstractSuite(suite)
    pattern = [abstract_suite.input("vector", bt=BT.DYNAMIC, size="s"),
               abstract_suite.dynamic("float")]
    start = time.perf_counter()
    analysis = analyze(program, pattern, abstract_suite)
    analysis_time = time.perf_counter() - start

    offline_evals = 0
    start = time.perf_counter()
    for degree in DEGREES:
        inputs = [suite.input("vector", size=degree),
                  suite.unknown("float")]
        result = OfflineSpecializer(analysis, suite).specialize(inputs)
        offline_evals += result.stats.facet_evaluations
    offline_time = time.perf_counter() - start

    print(f"{len(DEGREES)} specializations of poly_eval "
          f"(degrees {DEGREES[0]}..{DEGREES[-1]}):")
    print(f"  online : {online_evals:5d} facet evaluations, "
          f"{online_time * 1e3:7.2f} ms")
    print(f"  offline: {offline_evals:5d} facet evaluations, "
          f"{offline_time * 1e3:7.2f} ms specialization "
          f"+ {analysis_time * 1e3:.2f} ms analysis (once)")
    print(f"  facet-evaluation ratio: "
          f"{online_evals / max(offline_evals, 1):.1f}x")
    assert offline_evals < online_evals
    print("\noffline specialization does strictly less facet work ✓")


if __name__ == "__main__":
    main()
