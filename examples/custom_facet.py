#!/usr/bin/env python3
"""Tutorial: defining your own facet, end to end.

The framework is *parameterized*: any safe abstraction of a semantic
algebra plugs in.  This example builds a "multiple-of-3" facet from
scratch — domain, abstraction, closed and open operators — then

1. verifies the paper's obligations with the shipped checkers
   (Definition 2's conditions as executable tests), and
2. uses it to specialize a program no other facet can help with.

Run:  python examples/custom_facet.py
"""

from repro import FacetSuite, Interpreter, parse_program, \
    pretty_program, specialize_online
from repro.algebra import check_facet_monotonicity, check_facet_safety
from repro.facets.base import Facet
from repro.lang.interp import run_program
from repro.lattice.flat import FlatLattice
from repro.lattice.laws import check_lattice
from repro.lattice.pevalue import PEValue

MULT = "mult3"      # divisible by 3
OTHER = "other"     # provably not divisible by 3


class MultipleOf3Facet(Facet):
    """Tracks divisibility by 3 over the int algebra."""

    name = "mod3"
    carrier = "int"

    def __init__(self) -> None:
        super().__init__()
        self.domain = FlatLattice(self.name, [MULT, OTHER])
        top = self.domain.top

        def add(a, b):
            # mult+mult stays mult; mult+other stays other; two
            # "others" can cancel (1+2), so that case is top.
            if a == MULT and b == MULT:
                return MULT
            if {a, b} == {MULT, OTHER}:
                return OTHER
            return top

        def mul(a, b):
            if a == MULT or b == MULT:
                return MULT
            if a == OTHER and b == OTHER:
                return OTHER  # 3 is prime: no factors of 3 appear
            return top

        def neg(a):
            return a

        self.closed_ops = {"+": add, "-": add, "*": mul, "neg": neg,
                           "abs": neg}

        def eq(a, b):
            # A multiple of 3 never equals a non-multiple.
            if {a, b} == {MULT, OTHER}:
                return PEValue.const(False)
            return PEValue.top()

        self.open_ops = {
            "=": eq,
            "!=": lambda a, b: (PEValue.const(True)
                                if {a, b} == {MULT, OTHER}
                                else PEValue.top()),
        }

    def abstract(self, value):
        return MULT if value % 3 == 0 else OTHER


def main() -> None:
    facet = MultipleOf3Facet()

    # -- obligations: Definition 2, executable --------------------------
    law_violations = check_lattice(facet.domain)
    safety_violations = check_facet_safety(facet)
    monotonicity_violations = check_facet_monotonicity(facet)
    print(f"lattice laws:  {len(law_violations)} violations")
    print(f"safety (Property 1/2): {len(safety_violations)} violations")
    print(f"monotonicity:  {len(monotonicity_violations)} violations")
    assert not (law_violations or safety_violations
                or monotonicity_violations)

    # -- use it -----------------------------------------------------------
    # A fixed-point check in modular arithmetic: if x is a multiple of
    # 3 and y is not, `x = y` is decidable without knowing either.
    program = parse_program("""
        (define (main x y)
          (if (= (* 3 x) (+ (* 3 y) 1))
              (expensive x)
              x))
        (define (expensive x) (* x (* x (* x x))))
    """)
    suite = FacetSuite([facet])
    inputs = [suite.unknown("int"), suite.unknown("int")]
    result = specialize_online(program, inputs, suite)
    print("\nResidual with the mod3 facet:")
    print(pretty_program(result.program))
    assert str(result.program).strip() == "(define (main x y) x)"

    for x, y in [(0, 0), (5, -2), (100, 7)]:
        assert Interpreter(result.program).run(x, y) \
            == run_program(program, x, y)
    print("the unreachable branch is gone; semantics verified ✓")


if __name__ == "__main__":
    main()
