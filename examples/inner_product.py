#!/usr/bin/env python3
"""Section 6 end-to-end: online AND offline parameterized PE of the
inner-product program, with the Figure 9 analysis table.

Shows the paper's central comparison: both strategies produce the same
Figure 8 residual, but the offline specializer — driven by the facet
analysis — performs a fraction of the facet computations, because the
analysis already determined that size information is needed in ``iprod``
only and that plain binding times suffice inside ``dotprod``.

Run:  python examples/inner_product.py [size]
"""

import sys

from repro import (
    AbstractSuite, BT, FacetSuite, Interpreter, VectorSizeFacet, Vector,
    analyze, facet_table, parse_program, pretty_program,
    specialize_online)
from repro.offline.specializer import OfflineSpecializer
from repro.workloads import INNER_PRODUCT_SRC


def main(size: int = 3) -> None:
    program = parse_program(INNER_PRODUCT_SRC)
    suite = FacetSuite([VectorSizeFacet()])

    # ---- online (Section 6.1) ------------------------------------------
    inputs = [suite.input("vector", size=size),
              suite.input("vector", size=size)]
    online = specialize_online(program, inputs, suite)
    print(f"== Online PPE, size {size} (Figure 8) ==")
    print(pretty_program(online.program))
    print(f"facet evaluations: {online.stats.facet_evaluations}, "
          f"PE-time decisions: {online.stats.decisions}\n")

    # ---- facet analysis (Section 6.2, Figure 9) -------------------------
    abstract_suite = AbstractSuite(suite)
    pattern = [abstract_suite.input("vector", bt=BT.DYNAMIC, size="s"),
               abstract_suite.input("vector", bt=BT.DYNAMIC, size="s")]
    analysis = analyze(program, pattern, abstract_suite)
    print(facet_table(analysis, title="Facet analysis (Figure 9)"))
    print()

    # ---- offline specialization -----------------------------------------
    offline = OfflineSpecializer(analysis, suite).specialize(inputs)
    print("== Offline specialization (same residual) ==")
    print(pretty_program(offline.program))
    print(f"facet evaluations: {offline.stats.facet_evaluations} "
          f"(vs {online.stats.facet_evaluations} online), "
          f"PE-time decisions: {offline.stats.decisions} "
          f"(vs {online.stats.decisions} online)")
    assert offline.program == online.program

    # ---- both agree with the source --------------------------------------
    a = Vector.of([float(i + 1) for i in range(size)])
    b = Vector.of([float(2 * i) for i in range(size)])
    want = Interpreter(program).run(a, b)
    assert Interpreter(online.program).run(a, b) == want
    assert Interpreter(offline.program).run(a, b) == want
    print(f"\nresiduals verified: iprod = {want} ✓")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
