#!/usr/bin/env python3
"""The Section 4.4 extension: propagating predicate constraints.

The paper notes that Redfun propagates properties extracted from a
conditional's predicate (and their negation) into the branches, and
leaves incorporating this into parameterized PE as future work.  This
example turns the extension on (``PEConfig(propagate_constraints=True)``)
and shows what it buys on an absolute-value pipeline: inside the
``x < 0`` branch the specializer *knows* ``x`` is negative, so the
downstream sign dispatches fold even though ``x`` itself arrived with
no facet information at all.

Run:  python examples/constraint_propagation.py
"""

from repro import (
    FacetSuite, Interpreter, IntervalFacet, PEConfig, SignFacet,
    parse_program, pretty_program, specialize_online)
from repro.lang.interp import run_program

SRC = """
(define (main x)
  (if (< x 0)
      (classify (neg x))
      (classify x)))

(define (classify y)
  (if (< y 0) -1 (if (> y 0) 1 0)))
"""


def main() -> None:
    program = parse_program(SRC)
    suite = FacetSuite([SignFacet(), IntervalFacet()])
    inputs = [suite.unknown("int")]   # x: nothing known at all

    plain = specialize_online(program, inputs, suite)
    print("Without constraint propagation:")
    print(pretty_program(plain.program))

    extended = specialize_online(
        program, inputs, suite,
        PEConfig(propagate_constraints=True))
    print("With constraint propagation (Section 4.4 extension):")
    print(pretty_program(extended.program))
    print(f"variables refined at branch points: "
          f"{extended.stats.constraint_refinements}")

    # classify's negative arm is provably dead on both paths: in the
    # then-branch x < 0 makes neg(x) positive; in the else-branch the
    # negated test makes x non-negative.
    assert "-1" not in str(extended.program)
    assert "-1" in str(plain.program)

    for x in (-9, -1, 0, 1, 9):
        want = run_program(program, x)
        assert Interpreter(plain.program).run(x) == want
        assert Interpreter(extended.program).run(x) == want
    print("\nboth residuals verified; the extension removed the dead "
          "branch ✓")


if __name__ == "__main__":
    main()
