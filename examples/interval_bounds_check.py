#!/usr/bin/env python3
"""A user-defined facet beyond the paper's examples: ranges.

Section 1 lists "signs, ranges, and types" as the properties
parameterized PE should admit; this example uses the Interval facet to
eliminate a bounds check.  ``lookup`` clamps an index into ``[lo, hi]``
and then tests that the clamped index is inside the vector — if the
clamp range is statically within the (statically sized) vector, both
tests fold and the residual is a bare ``vref``.

Run:  python examples/interval_bounds_check.py
"""

from repro import (
    FacetSuite, Interpreter, IntervalFacet, Vector, VectorSizeFacet,
    parse_program, pretty_program, specialize_online)
from repro.facets.library.interval import Interval
from repro.workloads import CLAMPED_LOOKUP_SRC


def main() -> None:
    program = parse_program(CLAMPED_LOOKUP_SRC)
    print("Source:")
    print(pretty_program(program))

    suite = FacetSuite([IntervalFacet(), VectorSizeFacet()])
    # The vector has static size 8; the index is dynamic but the clamp
    # bounds are the static constants 1 and 8.
    inputs = [
        suite.input("vector", size=8),      # V
        suite.input("int"),                 # i : fully dynamic
        suite.const_vector(1),              # lo
        suite.const_vector(8),              # hi
    ]
    result = specialize_online(program, inputs, suite)
    print("Residual with size 8, clamp range [1, 8]:")
    print(pretty_program(result.program))
    print(f"interval-facet folds: "
          f"{result.stats.folds_by_facet.get('interval', 0)}, "
          f"size-facet folds: "
          f"{result.stats.folds_by_facet.get('size', 0)}")

    # The bounds test is gone: the residual goal contains no `if`.
    goal_src = pretty_program(result.program).split("\n\n")[0]
    assert "(if " not in goal_src, "bounds check should have folded"
    assert "vref" in goal_src

    vector = Vector.of([float(i * i) for i in range(1, 9)])
    for index in [-3, 1, 5, 8, 42]:
        want = Interpreter(program).run(vector, index, 1, 8)
        got = Interpreter(result.program).run(vector, index)
        assert want == got, (index, want, got)
    print("\nresidual verified across in- and out-of-range indices ✓")


if __name__ == "__main__":
    main()
