#!/usr/bin/env python3
"""Quickstart: the paper's Section 6 walk-through in ~60 lines.

Specializes the inner-product program (Figure 7) with respect to the
*size* of its vectors — an abstract property, not a concrete value —
reproducing the residual program of Figure 8, then checks it computes
the same answers as the original.

Run:  python examples/quickstart.py
"""

from repro import (
    FacetSuite, Interpreter, VectorSizeFacet, Vector, parse_program,
    pretty_program, specialize_online)
from repro.workloads import INNER_PRODUCT_SRC


def main() -> None:
    # 1. Parse Figure 7.
    program = parse_program(INNER_PRODUCT_SRC)
    print("Source program (Figure 7):")
    print(pretty_program(program))

    # 2. Parameterize the partial evaluator with the Size facet
    #    (Section 6.1) and describe the inputs: two vectors whose
    #    *elements* are dynamic but whose *size* is the static value 3.
    suite = FacetSuite([VectorSizeFacet()])
    inputs = [suite.input("vector", size=3),
              suite.input("vector", size=3)]

    # 3. Specialize (online parameterized PE, Figure 3).
    result = specialize_online(program, inputs, suite)
    print("Residual program (Figure 8):")
    print(pretty_program(result.program))
    print(f"size-facet folds: "
          f"{result.stats.folds_by_facet.get('size', 0)}, "
          f"conditionals reduced: {result.stats.if_reductions}, "
          f"calls unfolded: {result.stats.unfoldings}")

    # 4. The residual program agrees with the source on real vectors.
    a = Vector.of([1.0, 2.0, 3.0])
    b = Vector.of([4.0, 5.0, 6.0])
    original = Interpreter(program).run(a, b)
    residual = Interpreter(result.program).run(a, b)
    print(f"\niprod([1 2 3], [4 5 6]) original={original} "
          f"residual={residual}")
    assert original == residual
    print("residual program verified against the source. ✓")


if __name__ == "__main__":
    main()
