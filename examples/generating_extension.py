#!/usr/bin/env python3
"""Generating extensions: compile a program's specializer once, use it
many times.

The offline pipeline splits work into three stages:

    facet analysis  (once per binding-time pattern)
      -> staging    (once: compile the annotated program to closures)
        -> specialization  (once per concrete/abstract input instance)

This example builds the generating extension of the polynomial
evaluator and mass-produces specialized evaluators for a family of
degrees, checking each against the offline specializer and the source.

Run:  python examples/generating_extension.py
"""

import time

from repro import (
    AbstractSuite, BT, FacetSuite, Interpreter, VectorSizeFacet,
    Vector, analyze, parse_program, pretty_program)
from repro.lang.interp import run_program
from repro.offline.cogen import make_generating_extension
from repro.offline.specializer import OfflineSpecializer
from repro.workloads import POLY_EVAL_SRC

DEGREES = list(range(1, 11))


def main() -> None:
    program = parse_program(POLY_EVAL_SRC)
    suite = FacetSuite([VectorSizeFacet()])
    abstract_suite = AbstractSuite(suite)
    pattern = [abstract_suite.input("vector", bt=BT.DYNAMIC, size="s"),
               abstract_suite.dynamic("float")]

    start = time.perf_counter()
    analysis = analyze(program, pattern, abstract_suite)
    analysis_ms = (time.perf_counter() - start) * 1e3

    start = time.perf_counter()
    genext = make_generating_extension(analysis, suite)
    staging_ms = (time.perf_counter() - start) * 1e3
    print(f"analysis: {analysis_ms:.2f} ms (once per pattern); "
          f"staging: {staging_ms:.2f} ms (once per program)\n")

    specializer = OfflineSpecializer(analysis, suite)
    for degree in DEGREES:
        inputs = [suite.input("vector", size=degree),
                  suite.unknown("float")]
        staged = genext.specialize(inputs)
        unstaged = specializer.specialize(inputs)
        assert staged.program == unstaged.program
        coefficients = Vector.of([float(i + 1) for i in range(degree)])
        want = run_program(program, coefficients, 2.0)
        got = Interpreter(staged.program).run(coefficients, 2.0)
        assert want == got

    print(f"{len(DEGREES)} specialized evaluators produced; every "
          f"residual matches the unstaged offline specializer and the "
          f"source semantics ✓\n")
    print("Degree-3 residual:")
    inputs = [suite.input("vector", size=3), suite.unknown("float")]
    print(pretty_program(genext.specialize(inputs).program))


if __name__ == "__main__":
    main()
