#!/usr/bin/env python3
"""First Futamura projection on a mini-VM.

The corpus ships a tiny arithmetic VM written *in the object language*:
programs are vectors of opcodes/operands.  Specializing the VM's
``run`` function with respect to a static code vector and a dynamic
input compiles the bytecode away: the residual program is straight-line
arithmetic on ``x`` — interpretation overhead removed, the classic
partial-evaluation result the paper's framework subsumes (Section 7:
"our approach subsumes conventional self-applicable partial evaluation
a la Mix").

Run:  python examples/futamura_vm.py
"""

from repro import (
    FacetSuite, Interpreter, Vector, parse_program, pretty_program,
    specialize_online)
from repro.lang.interp import run_with_stats
from repro.workloads import MINI_VM_SRC


def main() -> None:
    program = parse_program(MINI_VM_SRC)
    # Bytecode for: acc = 0; acc += x; acc += 10; acc *= 3; halt.
    code = Vector.of([3.0, 1.0, 10.0, 2.0, 3.0, 0.0])
    print("VM source:")
    print(pretty_program(program))
    print(f"bytecode: {code}\n")

    suite = FacetSuite()  # plain PE suffices: the code vector is static
    result = specialize_online(program, [code, suite.unknown("float")],
                               suite)
    print("Residual (the compiled program):")
    print(pretty_program(result.program))

    for x in [0.0, 1.0, -2.5, 7.25]:
        want, want_stats = run_with_stats(program, code, x)
        got, got_stats = run_with_stats(result.program, x)
        assert want == got, (x, want, got)
        print(f"x={x:>5}: result {got:>7} | interpreter steps "
              f"{want_stats.steps:>3} -> residual steps "
              f"{got_stats.steps:>2} "
              f"({want_stats.steps / got_stats.steps:.1f}x fewer)")
    print("\nbytecode compiled away by specialization ✓")


if __name__ == "__main__":
    main()
