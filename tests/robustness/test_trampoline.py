"""Stack-safety regression: deep specializations must not rely on
``sys.setrecursionlimit``.

The engines' ``_pe`` recursion is trampolined (an explicit stack of
generators, :mod:`repro.engine.trampoline`), so an unfold chain far
past CPython's default recursion limit specializes fine — the old
``sys.setrecursionlimit(100_000)`` band-aid is gone, and these tests
monkeypatch the function to *fail* if anything reaches for it again.

(The concrete interpreter and the offline *analysis* still manage the
recursion limit for their own recursion — only the specializers are
under test here.)
"""

from __future__ import annotations

import sys

import pytest

from repro.baselines.simple_pe import specialize_simple
from repro.lang.ast import Const
from repro.lang.parser import parse_program
from repro.offline.specializer import specialize_offline
from repro.online.config import PEConfig
from repro.online.specializer import specialize_online
from repro.service.specs import parse_specs, simple_division
from repro.service.worker import default_suite
from repro.workloads import deep_static_loop

#: Far past the default recursion limit (1000); every unfold level
#: used to cost several Python frames.
DEPTH = 5000

CONFIG = PEConfig(unfold_fuel=10_000)


@pytest.fixture
def no_recursion_limit_tampering(monkeypatch):
    def forbid(limit):
        raise AssertionError(
            f"engine called sys.setrecursionlimit({limit})")
    monkeypatch.setattr(sys, "setrecursionlimit", forbid)


def _assert_folded(result):
    body = result.program.defs[0].body
    assert body == Const(DEPTH), \
        f"expected the loop to fold to {DEPTH}, got {body!r}"
    assert result.stats.degradations == 0


def test_online_specializes_deep_loop(no_recursion_limit_tampering):
    program = parse_program(deep_static_loop())
    suite = default_suite()
    inputs = parse_specs(suite, [str(DEPTH)])
    result = specialize_online(program, inputs, suite, CONFIG)
    _assert_folded(result)


def test_simple_pe_specializes_deep_loop(no_recursion_limit_tampering):
    program = parse_program(deep_static_loop())
    division = simple_division([str(DEPTH)])
    result = specialize_simple(program, division, CONFIG)
    _assert_folded(result)


def test_offline_specializes_deep_loop():
    # No tampering guard: the offline *analysis* front end still
    # manages the recursion limit for its own AST recursion; the
    # specializer itself is trampolined.
    program = parse_program(deep_static_loop())
    suite = default_suite()
    inputs = parse_specs(suite, [str(DEPTH)])
    result = specialize_offline(program, inputs, suite, config=CONFIG)
    _assert_folded(result)
