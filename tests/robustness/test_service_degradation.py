"""Service-level graceful degradation: deadlines become engine
budgets, so runaway specializations degrade *inside* the engine
instead of being killed at the deadline.

Before this layer existed the service's only defense was the
worker-kill + trivial-fallback path (``degraded=True``); these tests
pin the cooperative alternative: the scheduler maps a fraction of the
request deadline onto ``max_wall_seconds``, the engine widens when the
clock runs out, and the caller gets a *real* residual
(``degraded=False``) whose stats carry the degrade events.
"""

from __future__ import annotations

from repro.service import SpecRequest, SpecializationService
from repro.workloads import ADVERSARIAL_CASES

BRANCHY = ADVERSARIAL_CASES[0]


def _request(**kwargs) -> SpecRequest:
    return SpecRequest.create(source=BRANCHY.source, specs=["dyn"],
                              **kwargs)


def test_deadline_degrades_in_engine_not_by_worker_kill():
    """A deadline on an exploding request ends in cooperative widening
    — no timeout, no kill, no pool restart, no trivial fallback."""
    # A small fraction of a generous deadline: the engine's clock runs
    # out early (~0.2s in), leaving the worker plenty of margin to
    # widen and answer well before the 10s kill would fire.  The
    # fraction must be conservative because post-processing (simplify /
    # pretty-printing) is *outside* the governed region and scales with
    # the partial residual the budget permitted.
    with SpecializationService(workers=1,
                               deadline_budget_fraction=0.02) as service:
        result = service.run_one(_request(
            deadline=10.0, config={"simplify": False, "tidy": False}))
        stats = service.stats
    assert not result.degraded
    budget = result.stats["budget"]
    assert budget["degradations"] > 0
    assert budget["by_reason"].get("wall_clock", 0) > 0
    assert stats.engine_degradations == 1
    assert stats.completed == 1
    assert stats.timeouts == 0
    assert stats.worker_crashes == 0
    assert stats.pool_restarts == 0


def test_inline_mode_maps_deadline_too():
    """``workers=0`` cannot kill anything, so the engine budget is the
    *only* deadline enforcement there."""
    with SpecializationService(workers=0,
                               deadline_budget_fraction=0.05) as service:
        result = service.run_one(_request(deadline=2.0))
        stats = service.stats
    assert not result.degraded
    assert result.stats["budget"]["by_reason"].get("wall_clock", 0) > 0
    assert stats.engine_degradations == 1


def test_degraded_residuals_are_not_cached():
    """The deadline budget is not part of the request fingerprint, so
    a residual produced under budget pressure must not be served to a
    later (possibly deadline-less) identical request."""
    with SpecializationService(workers=0,
                               deadline_budget_fraction=0.05) as service:
        first = service.run_one(_request(id="a", deadline=2.0))
        second = service.run_one(_request(id="b", deadline=2.0))
        stats = service.stats
    assert first.stats["budget"]["degradations"] > 0
    assert second.stats["budget"]["degradations"] > 0
    assert stats.engine_degradations == 2
    assert stats.cache_hits == 0


def test_request_config_budget_wins_over_deadline_mapping():
    """An explicit per-request budget is honoured as-is; degradation
    then happens on that dimension, not the wall clock."""
    with SpecializationService(workers=0) as service:
        result = service.run_one(
            _request(config={"max_steps": 5_000}, deadline=30.0))
        stats = service.stats
    assert not result.degraded
    assert result.stats["budget"]["by_reason"].get("steps", 0) > 0
    assert stats.engine_degradations == 1


def test_service_wide_default_budgets_apply():
    """``ppe batch --max-steps N`` plumbs through ``default_config``;
    requests without their own budget inherit it."""
    with SpecializationService(
            workers=0,
            default_config={"max_steps": 5_000}) as service:
        result = service.run_one(_request())
    assert not result.degraded
    assert result.stats["budget"]["by_reason"].get("steps", 0) > 0
