"""Folding must not build integers no budget can multiply.

Multiplication doubles bit length, so a specialized squaring chain on
a static value grows a constant whose *next* fold is a single
``x * y`` too large to finish — and budgets only interrupt between
operations.  ``fold_would_blow_up`` makes every folding site
residualize such products instead (run-time semantics unchanged), and
the interval facet widens oversized product bounds to ±∞.  Found by
the differential harness (a generated squaring loop hung one service
request for hours); these tests pin the guard.
"""

from __future__ import annotations

import time

from repro.facets import FacetSuite, IntervalFacet, ParityFacet, SignFacet
from repro.facets.library.interval import FULL, Interval
from repro.lang.ast import Const, Prim, walk
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.primitives import FOLD_MAGNITUDE_BITS, fold_would_blow_up
from repro.lang.values import INT
from repro.online import PEConfig, specialize_online

BIG = 2 ** 600  # comfortably past FOLD_MAGNITUDE_BITS


class TestPredicate:
    def test_oversized_product_refused(self):
        assert fold_would_blow_up("*", [BIG, 3])
        assert fold_would_blow_up("*", [3, -BIG])

    def test_small_products_and_other_ops_fold(self):
        assert not fold_would_blow_up("*", [2 ** FOLD_MAGNITUDE_BITS - 1,
                                            2 ** FOLD_MAGNITUDE_BITS - 1])
        assert not fold_would_blow_up("+", [BIG, BIG])
        assert not fold_would_blow_up("*", [True, True])
        assert not fold_would_blow_up("*", [1.5, 2.5])

    def test_interval_products_widen(self):
        facet = IntervalFacet()
        products = facet.closed_ops["*"]
        assert products(Interval(BIG, BIG), Interval(BIG, BIG)) == FULL
        assert products(Interval(2, 3), Interval(4, 5)) == Interval(8, 15)


class TestEngineKeepsOversizedProductsResidual:
    def test_squaring_chain_stays_residual_and_correct(self):
        # Four foldable squarings of 2^600: unguarded PE would build a
        # 9600-bit constant (and a squaring *loop* would never return).
        source = f"(define (f x) (* (* (* (* {BIG} {BIG}) 1) 1) 1))"
        program = parse_program(source)
        suite = FacetSuite([SignFacet(), ParityFacet(), IntervalFacet()])

        started = time.perf_counter()
        result = specialize_online(
            program, [suite.unknown(INT)], suite, PEConfig())
        elapsed = time.perf_counter() - started

        assert elapsed < 5.0
        residual_products = [n for n in walk(result.program.main.body)
                             if isinstance(n, Prim) and n.op == "*"]
        assert residual_products, \
            "the oversized product must stay residual, not fold"
        big_consts = [n for n in walk(result.program.main.body)
                      if isinstance(n, Const) and isinstance(n.value, int)
                      and not isinstance(n.value, bool)
                      and n.value.bit_length() > 2 * FOLD_MAGNITUDE_BITS]
        assert not big_consts, \
            "folding must never build constants past the magnitude cap"
        # Run-time semantics unchanged: the residual still computes
        # the exact product.
        assert run_program(result.program, 0) == BIG * BIG
