"""Adversarial-program robustness: known-exploding programs must
terminate inside their budgets with a *correct* degraded residual.

The governed-engine contract under test: crossing a soft budget never
raises — the engine widens the offending call to Dynamic, records a
:class:`~repro.engine.budget.DegradeEvent` and keeps going.  The
differential oracle pins the other half of the contract: the degraded
residual still agrees with the source program on every dynamic input.

The fast tests run the family against a scaled-down step budget so all
three engines can be exercised in well under a second per case; the
out-of-the-box guarantee (default ``PEConfig`` budgets, ~1M steps)
takes tens of seconds per case and runs when
``REPRO_ADVERSARIAL_FULL=1`` — the CI ``adversarial`` job sets it.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines.simple_pe import specialize_simple
from repro.engine.budget import DIMENSIONS
from repro.engine.errors import BudgetExhausted
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.offline.specializer import specialize_offline
from repro.online.config import PEConfig
from repro.online.specializer import specialize_online
from repro.service.specs import parse_specs, simple_division
from repro.service.worker import default_suite
from repro.workloads import ADVERSARIAL_CASES

ENGINES = ("online", "offline", "simple")

#: Small enough for sub-second tests, large enough that the widened
#: aftermath still produces a meaningful residual.
SCALED = PEConfig(max_steps=10_000)

CASES = {case.name: case for case in ADVERSARIAL_CASES}


def _specialize(case, engine, config):
    program = parse_program(case.source)
    if engine == "simple":
        result = specialize_simple(program, simple_division(["dyn"]),
                                   config)
        return program, result
    suite = default_suite()
    inputs = parse_specs(suite, ["dyn"])
    if engine == "online":
        return program, specialize_online(program, inputs, suite,
                                          config)
    return program, specialize_offline(program, inputs, suite,
                                       config=config)


def _assert_degraded_but_correct(case, program, result):
    stats = result.stats
    assert stats.degradations > 0, \
        f"{case.name}: expected budget degradations"
    assert stats.degradations >= len(stats.degrade_events)  # capped log
    for event in stats.degrade_events:
        assert event.reason in DIMENSIONS
        assert event.action in ("widened-call", "residual-call")
        assert event.site
    # The differential oracle: degraded means *less specialized*,
    # never *less correct*.
    for argument in case.oracle_args:
        assert run_program(program, argument) \
            == run_program(result.program, argument), \
            f"{case.name}: residual diverges from source on {argument}"


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("case", ADVERSARIAL_CASES,
                         ids=lambda case: case.name)
def test_terminates_and_agrees_under_scaled_budget(case, engine):
    program, result = _specialize(case, engine, SCALED)
    _assert_degraded_but_correct(case, program, result)
    assert result.stats.degradations_by_reason.get("steps", 0) > 0


def test_pingpong_degrades_at_both_sites():
    """Mutual recursion degrades wherever the budget catches it — the
    event log names the actual source functions."""
    case = CASES["mutual-pingpong"]
    _, result = _specialize(case, "online", SCALED)
    sites = {event.site for event in result.stats.degrade_events}
    assert sites & {"ping", "pong"}


def test_residual_node_budget_fires():
    case = CASES["branchy-descent"]
    program, result = _specialize(
        case, "online", PEConfig(max_steps=None,
                                 max_residual_nodes=2_000))
    _assert_degraded_but_correct(case, program, result)
    assert result.stats.degradations_by_reason.get(
        "residual_nodes", 0) > 0


def test_unfold_depth_budget_records_residual_calls():
    """The visible unfold-depth cap refuses the unfold but keeps the
    call's precision: action is ``residual-call``, not a widening."""
    case = CASES["branchy-descent"]
    program, result = _specialize(
        case, "online", PEConfig(max_steps=None, max_unfold_depth=6))
    stats = result.stats
    assert stats.degradations_by_reason.get("unfold_depth", 0) > 0
    assert all(event.action == "residual-call"
               for event in stats.degrade_events
               if event.reason == "unfold_depth")
    for argument in case.oracle_args:
        assert run_program(program, argument) \
            == run_program(result.program, argument)


def test_wall_clock_budget_fires():
    case = CASES["branchy-descent"]
    program, result = _specialize(
        case, "online", PEConfig(max_steps=None,
                                 max_wall_seconds=0.05))
    _assert_degraded_but_correct(case, program, result)
    assert result.stats.degradations_by_reason.get("wall_clock", 0) > 0


@pytest.mark.parametrize("engine", ENGINES)
def test_strict_budgets_raise_instead(engine):
    case = CASES["branchy-descent"]
    with pytest.raises(BudgetExhausted) as info:
        _specialize(case, engine,
                    PEConfig(max_steps=1_000, strict_budgets=True))
    assert info.value.dimension == "steps"
    assert info.value.limit == 1_000


def test_budget_usage_is_reported():
    case = CASES["branchy-descent"]
    _, result = _specialize(case, "online", SCALED)
    used = result.stats.budget_used
    assert used["steps"] > 10_000  # sticky: counted past the limit
    assert used["residual_nodes"] > 0
    snapshot = result.stats.as_dict()["budget"]
    assert snapshot["degradations"] == result.stats.degradations
    assert snapshot["events"]


@pytest.mark.skipif(os.environ.get("REPRO_ADVERSARIAL_FULL") != "1",
                    reason="slow; set REPRO_ADVERSARIAL_FULL=1 "
                           "(the CI adversarial job does)")
@pytest.mark.parametrize("case", ADVERSARIAL_CASES,
                         ids=lambda case: case.name)
def test_terminates_under_default_budgets(case):
    """The out-of-the-box guarantee: *default* ``PEConfig`` budgets are
    finite, so the family terminates with a degraded-but-correct
    residual with no tuning at all."""
    program, result = _specialize(case, "online", None)
    _assert_degraded_but_correct(case, program, result)
    assert result.stats.budget_used["steps"] \
        > PEConfig().max_steps
