"""The structured failure taxonomy: every engine failure is a
:class:`~repro.engine.errors.ReproError`, classified by fault.

The robustness north-star: a caller that catches ``ReproError`` has
caught everything the engine can throw — no bare Python exception
escapes an engine entry point.
"""

from __future__ import annotations

import pytest

from repro.engine.errors import (
    BudgetExhausted, FacetError, ProgramError, ReproError,
    SpecializationError, classify, engine_guard)
from repro.lang.errors import LangError, PEError
from repro.lang.parser import parse_program
from repro.online.config import PEConfig
from repro.online.specializer import specialize_online
from repro.service.specs import parse_specs
from repro.service.worker import default_suite
from repro.workloads import ADVERSARIAL_CASES


class TestHierarchy:
    def test_every_leaf_is_a_repro_error(self):
        for leaf in (ProgramError, SpecializationError, FacetError,
                     BudgetExhausted):
            assert issubclass(leaf, ReproError)

    def test_language_errors_are_program_errors(self):
        assert issubclass(LangError, ProgramError)

    def test_legacy_pe_error_sits_under_both(self):
        # Historically PEError covered both program-level fuel blowups
        # and specializer-internal failures.
        assert issubclass(PEError, ProgramError)
        assert issubclass(PEError, SpecializationError)


class TestClassify:
    @pytest.mark.parametrize("error,bucket", [
        (BudgetExhausted("spent", dimension="steps"), "budget"),
        (FacetError("bad product"), "facet"),
        (ProgramError("bad program"), "program"),
        (SpecializationError("engine bug"), "specialization"),
        (ValueError("anything else"), "internal"),
    ])
    def test_buckets(self, error, bucket):
        assert classify(error) == bucket

    def test_legacy_pe_error_counts_as_program_fault(self):
        assert classify(PEError("fuel spent")) == "program"


class TestEngineGuard:
    def test_wraps_bare_exceptions(self):
        with pytest.raises(SpecializationError) as info:
            with engine_guard("unit test"):
                raise KeyError("oops")
        assert "unit test" in str(info.value)
        assert isinstance(info.value.__cause__, KeyError)

    def test_repro_errors_pass_through_untouched(self):
        original = BudgetExhausted("spent", dimension="steps")
        with pytest.raises(BudgetExhausted) as info:
            with engine_guard("unit test"):
                raise original
        assert info.value is original


class TestNoBareExceptionEscapes:
    def _online(self, source, config=None):
        program = parse_program(source)
        suite = default_suite()
        return specialize_online(program, parse_specs(suite, ["dyn"]),
                                 suite, config)

    def test_invalid_program_is_a_repro_error(self):
        with pytest.raises(ReproError) as info:
            parse_program("(define (main d) (undefinedfn d))")
        assert classify(info.value) == "program"

    def test_failing_static_computation_is_residualized(self):
        """A failing static subcomputation is *deferred*, not raised:
        the engine residualizes the offending primitive so the fault
        surfaces (classified) at run time, on the path that hits it."""
        result = self._online("(define (main d) (+ d (div 1 0)))")
        assert result.stats.degradations == 0  # defensive, not budget

    def test_hard_fuel_backstop_is_a_budget_error(self):
        """``fuel`` stays a hard error behind the soft budgets; with
        the soft budgets off it is the last line of defense."""
        config = PEConfig(fuel=5_000, max_steps=None,
                          max_residual_nodes=None)
        with pytest.raises(BudgetExhausted) as info:
            self._online(ADVERSARIAL_CASES[0].source, config)
        assert info.value.dimension == "fuel"
        assert classify(info.value) == "budget"
