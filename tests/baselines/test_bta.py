"""Conventional binding-time analysis baseline tests."""

import pytest

from repro.baselines.bta import Division, bta
from repro.lang.ast import If, walk
from repro.lang.parser import parse_program
from repro.lattice.bt import BT
from repro.workloads import WORKLOADS


class TestDivisions:
    def test_fully_static(self):
        program = parse_program("(define (f x y) (+ x y))")
        result = bta(program, "SS")
        assert result.divisions["f"].pattern() == "SS->S"

    def test_fully_dynamic(self):
        program = parse_program("(define (f x y) (+ x y))")
        result = bta(program, "DD")
        assert result.divisions["f"].pattern() == "DD->D"

    def test_mixed(self):
        program = parse_program("(define (f x y) (+ x y))")
        result = bta(program, "SD")
        assert result.divisions["f"].result is BT.DYNAMIC

    def test_static_conditional_result(self):
        program = parse_program(
            "(define (f s d) (if (< s 0) 1 2))")
        result = bta(program, "SD")
        assert result.divisions["f"].result is BT.STATIC

    def test_dynamic_test_poisons_result(self):
        program = parse_program(
            "(define (f s d) (if (< d 0) s s))")
        result = bta(program, "SD")
        assert result.divisions["f"].result is BT.DYNAMIC

    def test_recursive_propagation(self):
        program = parse_program("""
            (define (main s d) (walk s d))
            (define (walk n x) (if (= n 0) x (walk (- n 1) x)))
        """)
        result = bta(program, "SD")
        walk_division = result.divisions["walk"]
        assert walk_division.args[0] is BT.STATIC
        assert walk_division.args[1] is BT.DYNAMIC

    def test_bt_values_accepted_directly(self):
        program = parse_program("(define (f x) x)")
        result = bta(program, [BT.STATIC])
        assert result.divisions["f"].result is BT.STATIC

    def test_bad_pattern_letter(self):
        program = parse_program("(define (f x) x)")
        with pytest.raises(ValueError):
            bta(program, "X")


class TestExprBindingTimes:
    def test_bt_of_expressions(self):
        program = parse_program(
            "(define (f s d) (+ (* s 2) d))")
        result = bta(program, "SD")
        body = program.main.body
        mul = body.args[0]
        assert result.bt_of(mul) is BT.STATIC
        assert result.bt_of(body) is BT.DYNAMIC

    def test_inner_product_without_facets_is_all_dynamic(self):
        """The motivating contrast to Figure 9: a conventional BTA on
        dynamic vectors finds nothing static in dotprod."""
        program = WORKLOADS["inner_product"].program()
        result = bta(program, "DD")
        dotprod = program.get("dotprod")
        tests = [node.test for node in walk(dotprod.body)
                 if isinstance(node, If)]
        assert tests
        assert all(result.bt_of(t) is BT.DYNAMIC for t in tests)
