"""Simple (conventional) partial evaluation — Figure 2 unit tests."""

import pytest

from repro.baselines.simple_pe import DYN, specialize_simple
from repro.facets import FacetSuite
from repro.lang.interp import Interpreter, run_program
from repro.lang.parser import parse_program
from repro.lang.values import INT, VECTOR, Vector
from repro.online import PEConfig, UnfoldStrategy, specialize_online
from repro.workloads import WORKLOADS


class TestBasics:
    def test_all_static_evaluates(self):
        program = parse_program("(define (f x y) (+ (* x x) y))")
        result = specialize_simple(program, [4, 2])
        assert str(result.program).strip() == "(define (f) 18)"

    def test_all_dynamic_is_identityish(self):
        program = parse_program("(define (f x) (+ x 1))")
        result = specialize_simple(program, [DYN])
        assert "(+ x 1)" in str(result.program)

    def test_sk_p_folds_only_full_constants(self):
        program = parse_program("(define (f x) (+ (* 2 3) x))")
        result = specialize_simple(program, [DYN])
        assert "(+ 6 x)" in str(result.program)

    def test_static_if_reduces(self):
        program = parse_program(
            "(define (f s d) (if (< s 0) (neg d) d))")
        result = specialize_simple(program, [5, DYN])
        assert str(result.program).strip() == "(define (f d) d)"

    def test_bad_input_rejected(self):
        program = parse_program("(define (f x) x)")
        with pytest.raises(Exception):
            specialize_simple(program, ["not-a-value"])

    def test_division_by_zero_stays_residual(self):
        program = parse_program("(define (f x) (div x 0))")
        result = specialize_simple(program, [1])
        assert "div" in str(result.program)


class TestUnfoldAndSpecialize:
    def test_static_loop_unfolds_away(self):
        program = WORKLOADS["gcd"].program()
        result = specialize_simple(program, [12, 18])
        assert str(result.program).strip() == "(define (gcd) 6)"

    def test_dynamic_loop_specializes(self):
        program = parse_program(
            "(define (sum n acc) (if (= n 0) acc "
            "(sum (- n 1) (+ acc n))))")
        result = specialize_simple(program, [DYN, 0])
        assert Interpreter(result.program).run(4) == 10

    def test_power_specialized_on_exponent(self):
        program = WORKLOADS["power"].program()
        result = specialize_simple(program, [DYN, 10])
        assert Interpreter(result.program).run(2) == 1024
        # Fully unfolded: no residual recursion on power.
        assert "power" not in str(result.program).replace(
            "(define (power", "")


class TestEquivalenceWithEmptySuite:
    """Figure 2 == Figure 3 with only the PE facet (no user facets)."""

    CASES = [
        ("(define (f x y) (+ (* x 2) y))", [3, DYN], [(5,), (0,)]),
        ("(define (f x y) (if (< x y) x y))", [DYN, 7],
         [(3,), (12,)]),
        ("""(define (main n x) (loop n x))
            (define (loop n x) (if (= n 0) x
                                   (loop (- n 1) (* x x))))""",
         [2, DYN], [(3,), (-1,)]),
    ]

    @pytest.mark.parametrize("src,inputs,tests", CASES)
    def test_same_residual_semantics(self, src, inputs, tests):
        program = parse_program(src)
        suite = FacetSuite()
        simple = specialize_simple(program, inputs)
        ppe_inputs = [suite.unknown(None) if v is DYN else v
                      for v in inputs]
        online = specialize_online(program, ppe_inputs, suite)
        for args in tests:
            assert Interpreter(simple.program).run(*args) \
                == Interpreter(online.program).run(*args)

    def test_inner_product_gets_nothing_without_facets(self):
        """The paper's motivation: without the Size facet, the vector
        is just dynamic and SPE leaves the whole recursion residual."""
        program = WORKLOADS["inner_product"].program()
        result = specialize_simple(program, [DYN, DYN])
        text = str(result.program)
        assert "if" in text          # the loop test survives
        assert "vsize" in text       # the size is never discovered

    def test_higher_order_beta(self):
        program = parse_program(
            "(define (f x) ((lambda (y) (* y y)) (+ x 1)))")
        result = specialize_simple(program, [DYN])
        assert "lambda" not in str(result.program)
        assert Interpreter(result.program).run(2) == 9
