"""Unit tests for :class:`repro.observability.CacheStats`."""

from __future__ import annotations

from repro.observability import CacheStats


def test_rates_start_at_zero():
    """Zero lookups must report a 0.0 hit rate, not divide by zero —
    a fresh suite's profile report is the degenerate case."""
    stats = CacheStats()
    assert stats.dispatch_rate == 0.0
    assert stats.vector_rate == 0.0
    assert stats.op_rate == 0.0
    assert stats.outcome_rate == 0.0
    assert stats.overall_rate == 0.0
    assert stats.as_dict()["overall_rate"] == 0.0


def test_overall_rate_aggregates_every_cache():
    stats = CacheStats(dispatch_hits=3, dispatch_misses=1,
                       vector_hits=2, vector_misses=2,
                       op_hits=1, op_misses=1,
                       outcome_hits=0, outcome_misses=2)
    assert stats.overall_rate == 6 / 12


def test_rates():
    stats = CacheStats(dispatch_hits=3, dispatch_misses=1,
                       vector_hits=1, vector_misses=3,
                       op_hits=1, op_misses=1,
                       outcome_hits=9, outcome_misses=1)
    assert stats.dispatch_rate == 0.75
    assert stats.vector_rate == 0.25
    assert stats.op_rate == 0.5
    assert stats.outcome_rate == 0.9


def test_merge_accumulates():
    left = CacheStats(dispatch_hits=1, vector_misses=2, op_hits=3,
                      outcome_misses=4)
    right = CacheStats(dispatch_hits=10, dispatch_misses=1,
                       vector_misses=5, op_hits=7, outcome_misses=6)
    left.merge(right)
    assert left.dispatch_hits == 11
    assert left.dispatch_misses == 1
    assert left.vector_misses == 7
    assert left.op_hits == 10
    assert left.outcome_misses == 10


def test_as_dict_shape():
    as_dict = CacheStats(dispatch_hits=1, dispatch_misses=1).as_dict()
    assert set(as_dict) == {"dispatch", "vector", "op", "outcome",
                            "overall_rate"}
    assert as_dict["dispatch"] == {"hits": 1, "misses": 1, "rate": 0.5}
    assert as_dict["overall_rate"] == 0.5
    for name in ("dispatch", "vector", "op", "outcome"):
        assert set(as_dict[name]) == {"hits", "misses", "rate"}
