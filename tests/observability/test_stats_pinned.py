"""Exact PEStats pins on reference workloads.

The caching layer must be semantically invisible: every counter in
:class:`repro.observability.stats.PEStats` measures the paper's cost
model, so the numbers here are pinned exactly and must be identical
with the suite caches enabled and disabled.  A change to any pinned
value means the specializer's work — not just its speed — changed.
"""

from __future__ import annotations

import pytest

from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.online.specializer import specialize_online
from repro.workloads import WORKLOADS


def _rich_suite(caching: bool) -> FacetSuite:
    return FacetSuite([SignFacet(), ParityFacet(), IntervalFacet(),
                       VectorSizeFacet()], caching=caching)


def _semantic_stats(stats) -> dict:
    """The counter dict minus wall-clock noise."""
    as_dict = stats.as_dict()
    as_dict.pop("phase_seconds", None)
    return as_dict


@pytest.mark.parametrize("caching", [True, False],
                         ids=["caching-on", "caching-off"])
class TestPinnedCounts:
    def test_fig8_inner_product(self, caching):
        """Figure 8: iprod with a known vector size and dynamic data."""
        suite = FacetSuite([VectorSizeFacet()], caching=caching)
        program = WORKLOADS["inner_product"].program()
        result = specialize_online(
            program, [suite.input("vector", size=3), suite.unknown(None)],
            suite)
        stats = result.stats
        assert stats.facet_evaluations == 27
        assert stats.folds_by_facet == {"size": 1, "pe": 7}
        assert stats.cache_hits == 0
        assert stats.generalizations == 0
        assert stats.prim_folds == 8
        assert stats.if_reductions == 4
        assert stats.unfoldings == 4
        assert stats.decisions == 28

    def test_power_static_exponent(self, caching):
        """Recursive workload: x^5 by repeated squaring, exponent static."""
        suite = _rich_suite(caching)
        program = WORKLOADS["power"].program()
        result = specialize_online(
            program, [suite.unknown("int"), suite.const_vector(5)], suite)
        stats = result.stats
        assert stats.facet_evaluations == 80
        assert stats.folds_by_facet == {"pe": 17}
        assert stats.cache_hits == 0
        assert stats.generalizations == 0
        assert stats.prim_folds == 17
        assert stats.if_reductions == 9
        assert stats.specializations == 2

    def test_fib_polyvariant_cache_hits(self, caching):
        """Recursive workload exercising the specialization cache."""
        suite = _rich_suite(caching)
        program = WORKLOADS["fib"].program()
        result = specialize_online(
            program, [suite.input("int", sign="pos")], suite)
        stats = result.stats
        assert stats.cache_hits == 3
        assert stats.generalizations == 0
        assert stats.facet_evaluations == 24
        assert stats.folds_by_facet == {}
        assert stats.specializations == 1
        assert stats.decisions == 14


def test_caching_does_not_change_any_counter():
    """Full-stats dict equality, caching on vs off, both workloads."""
    for name, inputs_of in (
            ("inner_product",
             lambda s: [s.input("vector", size=3), s.unknown(None)]),
            ("power",
             lambda s: [s.unknown("int"), s.const_vector(5)])):
        program = WORKLOADS[name].program()
        stats = []
        for caching in (True, False):
            suite = (FacetSuite([VectorSizeFacet()], caching=caching)
                     if name == "inner_product" else _rich_suite(caching))
            result = specialize_online(program, inputs_of(suite), suite)
            stats.append(_semantic_stats(result.stats))
        assert stats[0] == stats[1], name


def test_phase_timers_populate():
    suite = FacetSuite([VectorSizeFacet()])
    program = WORKLOADS["inner_product"].program()
    result = specialize_online(
        program, [suite.input("vector", size=3), suite.unknown(None)],
        suite)
    seconds = result.stats.phase_seconds
    assert set(seconds) == {"specialize", "simplify"}
    assert all(value >= 0.0 for value in seconds.values())
