"""The ``--profile`` JSON report: builder, writer, and CLI wiring."""

from __future__ import annotations

import io
import json

from repro.cli import main
from repro.observability import (
    CacheStats, PEStats, PhaseTimer, ServiceStats, build_report,
    write_report)
from repro.workloads import WORKLOADS


def test_build_report_minimal():
    report = build_report()
    assert report == {"version": 1}


def test_build_report_full():
    timer = PhaseTimer()
    timer.add("parse", 0.5)
    stats = PEStats()
    stats.facet_evaluations = 7
    report = build_report(command="ppe specialize p.ppe", timer=timer,
                          stats=stats, cache_stats=CacheStats(),
                          extra={"suites": 2})
    assert report["command"] == "ppe specialize p.ppe"
    assert report["phases"] == {"parse": 0.5}
    assert report["total_seconds"] == 0.5
    assert report["stats"]["facet_evaluations"] == 7
    assert set(report["caches"]) == {"dispatch", "vector", "op",
                                     "outcome", "overall_rate"}
    assert report["suites"] == 2


def test_build_report_service_section():
    stats = ServiceStats(submitted=4, completed=3, degraded=1,
                         cache_hits=1, cache_misses=3)
    report = build_report(command="ppe batch m.json",
                          service_stats=stats)
    assert report["service"]["submitted"] == 4
    assert report["service"]["degraded"] == 1
    assert report["service"]["cache"]["rate"] == 0.25


def test_write_report_to_path(tmp_path):
    destination = tmp_path / "profile.json"
    write_report({"version": 1, "x": 3}, str(destination))
    assert json.loads(destination.read_text()) == {"version": 1, "x": 3}


def test_write_report_dash_goes_to_fallback():
    stream = io.StringIO()
    write_report({"version": 1}, "-", fallback=stream)
    assert json.loads(stream.getvalue()) == {"version": 1}


def test_cli_specialize_profile(tmp_path, capsys):
    program = tmp_path / "inner_product.ppe"
    program.write_text(WORKLOADS["inner_product"].source)
    destination = tmp_path / "profile.json"
    exit_code = main(["specialize", str(program), "size=3", "dyn",
                      "--profile", str(destination)])
    assert exit_code == 0
    capsys.readouterr()
    report = json.loads(destination.read_text())
    assert report["version"] == 1
    assert report["command"].startswith("ppe specialize")
    assert {"parse", "specialize", "simplify"} <= set(report["phases"])
    assert report["stats"]["facet_evaluations"] == 48
    assert report["caches"]["dispatch"]["hits"] > 0


def test_cli_offline_profile_includes_analyze_phase(tmp_path, capsys):
    program = tmp_path / "inner_product.ppe"
    program.write_text(WORKLOADS["inner_product"].source)
    destination = tmp_path / "profile.json"
    exit_code = main(["offline", str(program), "size=3", "dyn",
                      "--profile", str(destination)])
    assert exit_code == 0
    capsys.readouterr()
    report = json.loads(destination.read_text())
    assert {"parse", "analyze", "specialize", "simplify"} <= set(
        report["phases"])
    assert report["total_seconds"] > 0


def test_cli_profile_defaults_to_stderr(tmp_path, capsys):
    program = tmp_path / "inner_product.ppe"
    program.write_text(WORKLOADS["inner_product"].source)
    exit_code = main(["analyze", str(program), "size=3", "dyn",
                      "--profile"])
    assert exit_code == 0
    captured = capsys.readouterr()
    payload = captured.err[captured.err.index("{"):]
    assert json.loads(payload)["version"] == 1
