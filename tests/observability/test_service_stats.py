"""Unit tests for :class:`repro.observability.ServiceStats`."""

from __future__ import annotations

from repro.observability import ServiceStats


def test_rates_start_at_zero():
    """No traffic yet: every derived rate is 0.0, never an error."""
    stats = ServiceStats()
    assert stats.cache_hit_rate == 0.0
    assert stats.degraded_rate == 0.0
    snapshot = stats.as_dict()
    assert snapshot["cache"]["rate"] == 0.0
    assert snapshot["degraded_rate"] == 0.0


def test_cache_hit_rate():
    stats = ServiceStats(cache_hits=3, cache_misses=1)
    assert stats.cache_hit_rate == 0.75


def test_degraded_rate():
    stats = ServiceStats(completed=3, degraded=1)
    assert stats.degraded_rate == 0.25


def test_merge_accumulates():
    left = ServiceStats(submitted=2, completed=1, degraded=1,
                        cache_hits=1, retries=2, timeouts=1,
                        backoff_seconds=0.25)
    right = ServiceStats(submitted=3, completed=3, cache_misses=2,
                         worker_crashes=1, errors=1, pool_restarts=1,
                         backoff_seconds=0.5, cache_evictions=4)
    left.merge(right)
    assert left.submitted == 5
    assert left.completed == 4
    assert left.degraded == 1
    assert left.cache_hits == 1
    assert left.cache_misses == 2
    assert left.cache_evictions == 4
    assert left.worker_crashes == 1
    assert left.retries == 2
    assert left.timeouts == 1
    assert left.errors == 1
    assert left.pool_restarts == 1
    assert left.backoff_seconds == 0.75


def test_as_dict_shape():
    snapshot = ServiceStats(submitted=1).as_dict()
    assert set(snapshot) == {
        "submitted", "completed", "degraded", "degraded_rate", "cache",
        "store", "genext", "analysis_memo", "worker_crashes",
        "retries", "timeouts", "errors", "errors_by_category",
        "pool_restarts", "backoff_seconds", "budget", "faults",
        "breaker", "quarantine", "watchdog"}
    assert set(snapshot["cache"]) == {"hits", "misses", "evictions",
                                      "rate"}
    assert set(snapshot["store"]) == {"hits", "misses", "writes",
                                      "evictions", "corrupt",
                                      "errors", "rate"}
    assert set(snapshot["genext"]) == {"hits", "store_hits",
                                       "store_writes", "emits"}
    assert set(snapshot["analysis_memo"]) == {"hits", "misses"}
    assert set(snapshot["budget"]) == {"engine_degradations"}
    assert set(snapshot["breaker"]) == {"opens", "short_circuits",
                                        "seams"}
    assert set(snapshot["quarantine"]) == {"requests", "pills"}
    assert set(snapshot["watchdog"]) == {"recycles"}
    assert snapshot["faults"] == {}


def test_merge_accumulates_hardening_counters():
    left = ServiceStats(quarantined=1, poison_pills=1,
                        watchdog_recycles=2, breaker_opens=1,
                        faults_injected={"store.read:error": 2})
    right = ServiceStats(quarantined=2, breaker_short_circuits=3,
                         watchdog_recycles=1,
                         faults_injected={"store.read:error": 1,
                                          "worker.execute:crash": 4})
    left.merge(right)
    assert left.quarantined == 3
    assert left.poison_pills == 1
    assert left.watchdog_recycles == 3
    assert left.breaker_opens == 1
    assert left.breaker_short_circuits == 3
    assert left.faults_injected == {"store.read:error": 3,
                                    "worker.execute:crash": 4}


def test_store_hit_rate():
    stats = ServiceStats(store_hits=3, store_misses=1)
    assert stats.store_hit_rate == 0.75
    assert ServiceStats().store_hit_rate == 0.0


def test_merge_accumulates_store_counters():
    left = ServiceStats(store_hits=1, store_writes=2, store_corrupt=1)
    right = ServiceStats(store_hits=2, store_misses=3,
                         store_evictions=4, store_errors=1)
    left.merge(right)
    assert left.store_hits == 3
    assert left.store_misses == 3
    assert left.store_writes == 2
    assert left.store_evictions == 4
    assert left.store_corrupt == 1
    assert left.store_errors == 1


def test_merge_accumulates_budget_and_categories():
    left = ServiceStats(engine_degradations=1,
                        errors_by_category={"program": 1})
    right = ServiceStats(engine_degradations=2,
                         errors_by_category={"program": 2,
                                             "budget": 1})
    left.merge(right)
    assert left.engine_degradations == 3
    assert left.errors_by_category == {"program": 3, "budget": 1}
