"""``stats.backend``: the compiled backend's profile counters."""

from __future__ import annotations

import json

from repro.cli import main
from repro.observability import BackendStats, build_report


def test_counters_round_trip_through_as_dict():
    stats = BackendStats(compiles=2, compile_seconds=0.25,
                         compiled_runs=7, artifact_reuses=3,
                         shadow_runs=5, shadow_inconclusive=1,
                         mismatches=0)
    assert stats.as_dict() == {
        "compiles": 2, "compile_seconds": 0.25, "compiled_runs": 7,
        "artifact_reuses": 3, "shadow_runs": 5,
        "shadow_inconclusive": 1, "mismatches": 0,
    }


def test_merge_accumulates():
    total = BackendStats()
    total.merge(BackendStats(compiles=1, compiled_runs=2))
    total.merge(BackendStats(compiles=2, shadow_runs=4, mismatches=1))
    assert total.compiles == 3
    assert total.compiled_runs == 2
    assert total.shadow_runs == 4
    assert total.mismatches == 1


def test_build_report_backend_section():
    stats = BackendStats(compiles=1, compiled_runs=2)
    report = build_report(command="ppe batch m.json",
                          backend_stats=stats)
    assert report["stats"]["backend"]["compiles"] == 1
    assert report["stats"]["backend"]["compiled_runs"] == 2


def test_build_report_without_backend_has_no_section():
    report = build_report(command="ppe batch m.json")
    assert "backend" not in report.get("stats", {})


def test_cli_batch_profile_reports_backend_section(tmp_path, capsys):
    program = tmp_path / "gcd.ppe"
    program.write_text(
        "(define (gcd a b) (if (= b 0) a (gcd b (mod a b))))")
    manifest = tmp_path / "manifest.json"
    manifest.write_text(json.dumps([
        {"file": "gcd.ppe", "specs": ["dyn", "18"], "id": "g"},
    ]))
    profile_path = tmp_path / "profile.json"
    assert main(["batch", str(manifest), "--workers", "0",
                 "--backend", "compiled",
                 "--profile", str(profile_path)]) == 0
    capsys.readouterr()
    report = json.loads(profile_path.read_text())
    assert report["stats"]["backend"]["compiles"] == 1
    assert report["stats"]["backend"]["mismatches"] == 0

    # The interp backend keeps the report exactly as it was.
    profile_interp = tmp_path / "profile_interp.json"
    assert main(["batch", str(manifest), "--workers", "0",
                 "--profile", str(profile_interp)]) == 0
    capsys.readouterr()
    report = json.loads(profile_interp.read_text())
    assert "backend" not in report.get("stats", {})
