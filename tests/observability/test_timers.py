"""Unit tests for :class:`repro.observability.PhaseTimer`."""

from __future__ import annotations

from repro.observability import PhaseTimer


def test_phase_records_elapsed_time():
    timer = PhaseTimer()
    with timer.phase("parse"):
        pass
    assert "parse" in timer.seconds
    assert timer.seconds["parse"] >= 0.0


def test_repeated_phases_accumulate():
    timer = PhaseTimer()
    timer.add("specialize", 1.5)
    timer.add("specialize", 0.5)
    with timer.phase("specialize"):
        pass
    assert timer.seconds["specialize"] >= 2.0


def test_phase_records_on_exception():
    timer = PhaseTimer()
    try:
        with timer.phase("analyze"):
            raise ValueError("boom")
    except ValueError:
        pass
    assert "analyze" in timer.seconds


def test_total_and_as_dict():
    timer = PhaseTimer()
    timer.add("parse", 0.25)
    timer.add("specialize", 0.75)
    assert timer.total() == 1.0
    assert timer.as_dict() == {"parse": 0.25, "specialize": 0.75}
