"""Parser unit tests: lowering, classification, error reporting."""

import pytest

from repro.lang.ast import (
    App, Call, Const, If, Lam, Let, Prim, Var)
from repro.lang.errors import ParseError
from repro.lang.parser import parse_expr, parse_program


class TestExpressions:
    def test_int_literal(self):
        assert parse_expr("7") == Const(7)

    def test_bool_literal(self):
        assert parse_expr("true") == Const(True)

    def test_float_literal(self):
        assert parse_expr("2.5") == Const(2.5)

    def test_variable_in_scope(self):
        assert parse_expr("x", scope={"x"}) == Var("x")

    def test_unbound_variable_rejected(self):
        with pytest.raises(ParseError, match="unbound"):
            parse_expr("x")

    def test_primitive_application(self):
        expr = parse_expr("(+ 1 2)")
        assert expr == Prim("+", (Const(1), Const(2)))

    def test_nested_primitives(self):
        expr = parse_expr("(* (+ 1 2) 3)")
        assert expr == Prim("*", (Prim("+", (Const(1), Const(2))),
                                  Const(3)))

    def test_call_to_known_function(self):
        expr = parse_expr("(f 1)", function_names={"f"})
        assert expr == Call("f", (Const(1),))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ParseError, match="unknown operator"):
            parse_expr("(mystery 1)")

    def test_if(self):
        expr = parse_expr("(if true 1 2)")
        assert expr == If(Const(True), Const(1), Const(2))

    def test_if_arity_checked(self):
        with pytest.raises(ParseError, match="if needs"):
            parse_expr("(if true 1)")

    def test_empty_application_rejected(self):
        with pytest.raises(ParseError, match="empty application"):
            parse_expr("()")

    def test_primitive_not_first_class(self):
        with pytest.raises(ParseError, match="not.*first-class"):
            parse_expr("+")


class TestLet:
    def test_single_binding(self):
        expr = parse_expr("(let ((x 1)) x)")
        assert expr == Let("x", Const(1), Var("x"))

    def test_multiple_bindings_nest_sequentially(self):
        expr = parse_expr("(let ((x 1) (y (+ x 1))) y)")
        assert expr == Let("x", Const(1),
                           Let("y", Prim("+", (Var("x"), Const(1))),
                               Var("y")))

    def test_let_body_sees_binding(self):
        expr = parse_expr("(let ((x 1)) (+ x x))")
        assert isinstance(expr, Let)

    def test_empty_bindings_rejected(self):
        with pytest.raises(ParseError, match="at least one binding"):
            parse_expr("(let () 1)")

    def test_malformed_binding_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("(let ((x)) x)")

    def test_keyword_as_binding_name_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("(let ((if 1)) 2)")


class TestLambdaAndApp:
    def test_lambda(self):
        expr = parse_expr("(lambda (x) (+ x 1))")
        assert expr == Lam(("x",), Prim("+", (Var("x"), Const(1))))

    def test_lambda_multi_param(self):
        expr = parse_expr("(lambda (x y) x)")
        assert expr == Lam(("x", "y"), Var("x"))

    def test_application_of_bound_variable(self):
        expr = parse_expr("(f 1)", scope={"f"})
        assert expr == App(Var("f"), (Const(1),))

    def test_application_of_compound(self):
        expr = parse_expr("((lambda (x) x) 1)")
        assert isinstance(expr, App)
        assert isinstance(expr.fn, Lam)

    def test_local_binding_shadows_function_name(self):
        # `f` bound by lambda: application, not Call.
        expr = parse_expr("(lambda (f) (f 1))", function_names={"f"})
        assert isinstance(expr.body, App)

    def test_zero_arg_application(self):
        expr = parse_expr("(f)", scope={"f"})
        assert expr == App(Var("f"), ())


class TestPrograms:
    def test_minimal_program(self):
        program = parse_program("(define (main x) x)")
        assert program.main.name == "main"
        assert program.main.params == ("x",)

    def test_functions_see_each_other_regardless_of_order(self):
        program = parse_program("""
            (define (a x) (b x))
            (define (b x) x)
        """)
        assert isinstance(program.get("a").body, Call)

    def test_forward_reference(self):
        program = parse_program("""
            (define (main x) (helper x))
            (define (helper y) (+ y 1))
        """)
        assert program.get("main").body == Call("helper", (Var("x"),))

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError, match="empty program"):
            parse_program("")

    def test_non_define_top_level_rejected(self):
        with pytest.raises(ParseError):
            parse_program("(+ 1 2)")

    def test_define_inside_expression_rejected(self):
        with pytest.raises(ParseError, match="top level"):
            parse_program("(define (f x) (define (g y) y))")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError, match="unclosed"):
            parse_program("(define (f x) (+ x 1)")

    def test_stray_close_paren(self):
        with pytest.raises(ParseError, match="unexpected"):
            parse_program("(define (f x) x))")

    def test_first_class_function_reference(self):
        program = parse_program("""
            (define (main x) (apply-to main x))
            (define (apply-to f x) (f x))
        """)
        # `main` in argument position is a Var (first-class reference).
        call = program.get("main").body
        assert isinstance(call, Call)
        assert call.args[0] == Var("main")

    def test_comments_everywhere(self):
        program = parse_program("""
            ; leading comment
            (define (f x) ; trailing
              x)          ; more
        """)
        assert program.main.body == Var("x")
