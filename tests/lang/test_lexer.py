"""Tokenizer unit tests."""

import pytest

from repro.lang import lexer
from repro.lang.errors import LexError
from repro.lang.lexer import Token, tokenize


def kinds(source: str) -> list[str]:
    return [t.kind for t in tokenize(source)]


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input_yields_eof_only(self):
        assert kinds("") == [lexer.EOF]

    def test_whitespace_only(self):
        assert kinds("  \t \n  ") == [lexer.EOF]

    def test_parens(self):
        assert kinds("()") == [lexer.LPAREN, lexer.RPAREN, lexer.EOF]

    def test_nested_parens(self):
        assert texts("((()))") == ["(", "(", "(", ")", ")", ")"]

    def test_symbol(self):
        tokens = tokenize("foo")
        assert tokens[0].kind == lexer.SYMBOL
        assert tokens[0].text == "foo"

    def test_symbol_with_punctuation(self):
        for sym in ["+", "-", "*", "<=", ">=", "!=", "f!3", "x_1",
                    "vec-ref", "a.b"]:
            tokens = tokenize(sym)
            assert tokens[0].kind == lexer.SYMBOL, sym
            assert tokens[0].text == sym


class TestNumbers:
    def test_int(self):
        token = tokenize("42")[0]
        assert token.kind == lexer.INT
        assert token.value == 42

    def test_negative_int(self):
        token = tokenize("-17")[0]
        assert token.kind == lexer.INT
        assert token.value == -17

    def test_positive_signed_int(self):
        token = tokenize("+9")[0]
        assert token.kind == lexer.INT
        assert token.value == 9

    def test_float(self):
        token = tokenize("3.25")[0]
        assert token.kind == lexer.FLOAT
        assert token.value == 3.25

    def test_negative_float(self):
        token = tokenize("-0.5")[0]
        assert token.kind == lexer.FLOAT
        assert token.value == -0.5

    def test_scientific_float(self):
        token = tokenize("1e3")[0]
        assert token.kind == lexer.FLOAT
        assert token.value == 1000.0

    def test_minus_alone_is_a_symbol(self):
        assert tokenize("-")[0].kind == lexer.SYMBOL

    def test_dots_without_digits_are_symbols(self):
        assert tokenize("..")[0].kind == lexer.SYMBOL


class TestBooleans:
    def test_true(self):
        token = tokenize("true")[0]
        assert token.kind == lexer.BOOL
        assert token.value is True

    def test_false(self):
        token = tokenize("false")[0]
        assert token.kind == lexer.BOOL
        assert token.value is False

    def test_truthy_is_a_symbol(self):
        assert tokenize("truthy")[0].kind == lexer.SYMBOL


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert kinds("; a comment\n42") == [lexer.INT, lexer.EOF]

    def test_comment_to_eof(self):
        assert kinds("; nothing else") == [lexer.EOF]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [(t.line, t.column) for t in tokens[:-1]] == \
            [(1, 1), (2, 1), (3, 3)]

    def test_column_after_parens(self):
        tokens = tokenize("(ab cd)")
        assert tokens[1].column == 2
        assert tokens[2].column == 5

    def test_error_position(self):
        with pytest.raises(LexError) as err:
            tokenize("abc \x01")
        assert err.value.line == 1
        assert err.value.column == 5

    def test_error_on_bad_char(self):
        with pytest.raises(LexError):
            tokenize("[1 2]")


class TestMixed:
    def test_full_define(self):
        tokens = tokenize("(define (f x) (+ x 1))")
        assert [t.kind for t in tokens] == [
            lexer.LPAREN, lexer.SYMBOL, lexer.LPAREN, lexer.SYMBOL,
            lexer.SYMBOL, lexer.RPAREN, lexer.LPAREN, lexer.SYMBOL,
            lexer.SYMBOL, lexer.INT, lexer.RPAREN, lexer.RPAREN,
            lexer.EOF]

    def test_adjacent_tokens_without_space(self):
        assert texts("(f(g))") == ["(", "f", "(", "g", ")", ")"]

    def test_token_value_for_symbol_is_text(self):
        assert tokenize("hello")[0].value == "hello"
