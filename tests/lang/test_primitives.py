"""Primitive registry and concrete semantics (``K_p``) unit tests."""

import pytest

from repro.lang.errors import EvalError
from repro.lang.primitives import (
    PRIMITIVES, apply_primitive, get_primitive, is_primitive,
    primitives_for_carrier)
from repro.lang.values import BOOL, FLOAT, INT, VECTOR, Vector


class TestRegistry:
    def test_known_primitives(self):
        for name in ["+", "-", "*", "div", "mod", "/", "<", "=", "and",
                     "not", "mkvec", "updvec", "vsize", "vref", "neg",
                     "abs", "min", "max", "itof"]:
            assert is_primitive(name), name

    def test_unknown(self):
        assert not is_primitive("frobnicate")
        with pytest.raises(EvalError):
            get_primitive("frobnicate")

    def test_open_closed_classification(self):
        # Section 3.2 / Section 6: closed iff co-domain = carrier.
        plus_int = get_primitive("+").resolve([INT, INT])
        assert plus_int.is_closed
        less_int = get_primitive("<").resolve([INT, INT])
        assert less_int.is_open
        assert get_primitive("mkvec").sigs[0].is_closed
        assert get_primitive("updvec").sigs[0].is_closed
        assert get_primitive("vsize").sigs[0].is_open
        assert get_primitive("vref").sigs[0].is_open

    def test_overload_resolution(self):
        plus = get_primitive("+")
        assert plus.resolve([INT, INT]).carrier == INT
        assert plus.resolve([FLOAT, FLOAT]).carrier == FLOAT
        assert plus.resolve([INT, FLOAT]) is None

    def test_primitives_for_carrier(self):
        vector_ops = dict(primitives_for_carrier(VECTOR))
        assert set(vector_ops) == {"mkvec", "updvec", "vsize", "vref"}
        bool_ops = dict(primitives_for_carrier(BOOL))
        assert set(bool_ops) == {"and", "or", "not"}


class TestArithmetic:
    def test_int_ops(self):
        assert apply_primitive("+", [2, 3]) == 5
        assert apply_primitive("-", [2, 3]) == -1
        assert apply_primitive("*", [4, -3]) == -12
        assert apply_primitive("neg", [5]) == -5
        assert apply_primitive("abs", [-5]) == 5
        assert apply_primitive("min", [2, 3]) == 2
        assert apply_primitive("max", [2, 3]) == 3

    def test_float_ops(self):
        assert apply_primitive("+", [1.5, 2.0]) == 3.5
        assert apply_primitive("/", [7.0, 2.0]) == 3.5
        assert apply_primitive("itof", [3]) == 3.0

    def test_truncating_division(self):
        assert apply_primitive("div", [7, 2]) == 3
        assert apply_primitive("div", [-7, 2]) == -3
        assert apply_primitive("div", [7, -2]) == -3
        assert apply_primitive("div", [-7, -2]) == 3

    def test_mod_follows_truncation(self):
        assert apply_primitive("mod", [7, 2]) == 1
        assert apply_primitive("mod", [-7, 2]) == -1
        assert apply_primitive("mod", [7, -2]) == 1

    def test_division_by_zero(self):
        with pytest.raises(EvalError, match="zero"):
            apply_primitive("div", [1, 0])
        with pytest.raises(EvalError, match="zero"):
            apply_primitive("mod", [1, 0])
        with pytest.raises(EvalError, match="zero"):
            apply_primitive("/", [1.0, 0.0])

    def test_mixed_sorts_rejected(self):
        with pytest.raises(EvalError):
            apply_primitive("+", [1, 2.0])

    def test_bools_not_numbers(self):
        with pytest.raises(EvalError):
            apply_primitive("+", [True, 1])


class TestComparisons:
    def test_int_comparisons(self):
        assert apply_primitive("<", [1, 2]) is True
        assert apply_primitive("<=", [2, 2]) is True
        assert apply_primitive(">", [1, 2]) is False
        assert apply_primitive(">=", [2, 3]) is False
        assert apply_primitive("=", [3, 3]) is True
        assert apply_primitive("!=", [3, 3]) is False

    def test_float_comparisons(self):
        assert apply_primitive("<", [1.0, 1.5]) is True
        assert apply_primitive("=", [2.5, 2.5]) is True

    def test_result_is_bool(self):
        assert apply_primitive("=", [1, 1]) is True
        assert isinstance(apply_primitive("=", [1, 1]), bool)


class TestBooleans:
    def test_and_or_not(self):
        assert apply_primitive("and", [True, False]) is False
        assert apply_primitive("or", [True, False]) is True
        assert apply_primitive("not", [False]) is True

    def test_non_bool_rejected(self):
        with pytest.raises(EvalError):
            apply_primitive("and", [1, True])


class TestVectorOps:
    def test_mkvec(self):
        v = apply_primitive("mkvec", [3])
        assert isinstance(v, Vector)
        assert v.size == 3

    def test_updvec_vref(self):
        v = apply_primitive("mkvec", [2])
        v = apply_primitive("updvec", [v, 1, 5.0])
        assert apply_primitive("vref", [v, 1]) == 5.0

    def test_vsize(self):
        assert apply_primitive("vsize", [Vector.of([1.0, 2.0])]) == 2

    def test_updvec_requires_float_element(self):
        v = Vector.empty(1)
        with pytest.raises(EvalError, match="overload"):
            apply_primitive("updvec", [v, 1, 5])

    def test_arity_checked(self):
        with pytest.raises(EvalError, match="expected 2"):
            apply_primitive("+", [1])
        with pytest.raises(EvalError, match="expected 1"):
            apply_primitive("vsize", [])
