"""Program container and validation unit tests."""

import pytest

from repro.lang.ast import Call, Const, FunDef, Prim, Var
from repro.lang.errors import ValidationError
from repro.lang.parser import parse_program
from repro.lang.program import Program, is_first_order
from repro.workloads import WORKLOADS


class TestContainer:
    def test_main_is_first(self):
        program = parse_program("""
            (define (a x) x)
            (define (b x) x)
        """)
        assert program.main.name == "a"

    def test_get(self):
        program = parse_program("(define (f x) x)")
        assert program.get("f").params == ("x",)
        with pytest.raises(ValidationError):
            program.get("g")

    def test_with_def_replaces(self):
        program = parse_program("(define (f x) x)")
        updated = program.with_def(FunDef("f", ("y",), Var("y")))
        assert updated.get("f").params == ("y",)
        assert len(updated) == 1

    def test_with_def_appends(self):
        program = parse_program("(define (f x) x)")
        updated = program.with_def(FunDef("g", ("y",), Var("y")))
        assert len(updated) == 2

    def test_size(self):
        program = parse_program("(define (f x) (+ x 1))")
        assert program.size() == 3

    def test_empty_program_rejected(self):
        with pytest.raises(ValidationError):
            Program(())


class TestValidation:
    def test_duplicate_function(self):
        with pytest.raises(ValidationError, match="duplicate"):
            Program((FunDef("f", ("x",), Var("x")),
                     FunDef("f", ("y",), Var("y")))).validate()

    def test_function_shadowing_primitive(self):
        with pytest.raises(ValidationError, match="shadows"):
            Program((FunDef("vref", ("x",), Var("x")),)).validate()

    def test_duplicate_params(self):
        with pytest.raises(ValidationError, match="duplicate param"):
            Program((FunDef("f", ("x", "x"), Var("x")),)).validate()

    def test_unbound_variable(self):
        with pytest.raises(ValidationError, match="unbound"):
            Program((FunDef("f", ("x",), Var("y")),)).validate()

    def test_unknown_function_call(self):
        body = Call("ghost", (Var("x"),))
        with pytest.raises(ValidationError, match="unknown function"):
            Program((FunDef("f", ("x",), body),)).validate()

    def test_call_arity(self):
        program = Program((
            FunDef("f", ("x",), Call("g", (Var("x"), Var("x")))),
            FunDef("g", ("y",), Var("y"))))
        with pytest.raises(ValidationError, match="expects 1"):
            program.validate()

    def test_prim_arity(self):
        body = Prim("+", (Const(1),))
        with pytest.raises(ValidationError, match="expects 2"):
            Program((FunDef("f", ("x",), body),)).validate()

    def test_unknown_primitive(self):
        body = Prim("zap", (Const(1),))
        with pytest.raises(ValidationError, match="unknown primitive"):
            Program((FunDef("f", ("x",), body),)).validate()

    def test_first_order_mode_rejects_lambda(self):
        program = parse_program("(define (f x) ((lambda (y) y) x))")
        with pytest.raises(ValidationError,
                           match="higher-order|lambda"):
            program.validate(allow_higher_order=False)

    def test_first_order_mode_rejects_fn_reference(self):
        program = parse_program("""
            (define (f x) (g f x))
            (define (g h x) (h x))
        """)
        with pytest.raises(ValidationError):
            program.validate(allow_higher_order=False)


class TestFirstOrderDetection:
    def test_corpus_classification(self):
        for name, workload in WORKLOADS.items():
            assert is_first_order(workload.program()) \
                == (not workload.higher_order), name

    def test_let_bound_name_matching_function_is_fine(self):
        program = parse_program("""
            (define (main x) (let ((helper (+ x 1))) (helper2 helper)))
            (define (helper2 y) y)
        """)
        assert is_first_order(program)
