"""Concrete value domain unit tests."""

import pytest

from repro.lang.errors import EvalError
from repro.lang.values import (
    BOOL, FLOAT, INT, VECTOR, Vector, check_sort, format_value,
    is_value, sort_of, values_equal)


class TestSorts:
    def test_sort_of_int(self):
        assert sort_of(3) == INT

    def test_sort_of_bool_not_int(self):
        # bool is a subclass of int in Python; the domain keeps them
        # apart.
        assert sort_of(True) == BOOL

    def test_sort_of_float(self):
        assert sort_of(2.5) == FLOAT

    def test_sort_of_vector(self):
        assert sort_of(Vector.of([1.0])) == VECTOR

    def test_sort_of_non_value(self):
        with pytest.raises(EvalError):
            sort_of("hello")

    def test_is_value(self):
        assert is_value(0)
        assert is_value(False)
        assert is_value(0.0)
        assert is_value(Vector.empty(0))
        assert not is_value("x")
        assert not is_value(None)

    def test_check_sort_pass(self):
        assert check_sort(3, INT, "t") == 3

    def test_check_sort_fail(self):
        with pytest.raises(EvalError, match="expected float"):
            check_sort(3, FLOAT, "t")


class TestValuesEqual:
    def test_same_sort_equal(self):
        assert values_equal(3, 3)
        assert values_equal(2.5, 2.5)

    def test_cross_sort_never_equal(self):
        assert not values_equal(1, 1.0)
        assert not values_equal(1, True)
        assert not values_equal(0, False)

    def test_vectors(self):
        assert values_equal(Vector.of([1.0]), Vector.of([1.0]))
        assert not values_equal(Vector.of([1.0]), Vector.of([2.0]))


class TestVector:
    def test_empty_has_holes(self):
        v = Vector.empty(2)
        assert v.size == 2
        with pytest.raises(EvalError, match="unset"):
            v.ref(1)

    def test_negative_size_rejected(self):
        with pytest.raises(EvalError):
            Vector.empty(-1)

    def test_one_based_indexing(self):
        v = Vector.of([10.0, 20.0])
        assert v.ref(1) == 10.0
        assert v.ref(2) == 20.0

    def test_index_bounds(self):
        v = Vector.of([1.0])
        with pytest.raises(EvalError, match="out of range"):
            v.ref(0)
        with pytest.raises(EvalError, match="out of range"):
            v.ref(2)

    def test_bool_index_rejected(self):
        with pytest.raises(EvalError):
            Vector.of([1.0]).ref(True)

    def test_update_is_persistent(self):
        v = Vector.of([1.0, 2.0])
        w = v.update(1, 9.0)
        assert v.ref(1) == 1.0
        assert w.ref(1) == 9.0

    def test_update_fills_hole(self):
        v = Vector.empty(1).update(1, 5.0)
        assert v.ref(1) == 5.0

    def test_str(self):
        assert str(Vector.of([1.0])) == "#(1.0)"
        assert str(Vector.empty(2)) == "#(_ _)"


class TestFormatting:
    def test_ints(self):
        assert format_value(3) == "3"
        assert format_value(-7) == "-7"

    def test_bools(self):
        assert format_value(True) == "true"
        assert format_value(False) == "false"

    def test_floats_roundtrip(self):
        assert format_value(2.5) == "2.5"
        assert format_value(1.0) == "1.0"

    def test_float_without_point_gets_one(self):
        # repr of some floats has no dot (e.g. 1e30); ensure lexer
        # round-trips.
        text = format_value(1e30)
        assert "." in text or "e" in text
