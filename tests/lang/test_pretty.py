"""Pretty-printer unit tests, including parse/print round-trips."""

import pytest

from repro.lang.parser import parse_expr, parse_program
from repro.lang.pretty import (
    pretty, pretty_def, pretty_indented, pretty_program)
from repro.workloads import WORKLOADS


class TestPrettyExpr:
    def test_constants(self):
        assert pretty(parse_expr("42")) == "42"
        assert pretty(parse_expr("true")) == "true"
        assert pretty(parse_expr("2.5")) == "2.5"

    def test_prim(self):
        assert pretty(parse_expr("(+ 1 2)")) == "(+ 1 2)"

    def test_if(self):
        assert pretty(parse_expr("(if true 1 2)")) == "(if true 1 2)"

    def test_let(self):
        assert pretty(parse_expr("(let ((x 1)) x)")) \
            == "(let ((x 1)) x)"

    def test_lambda(self):
        assert pretty(parse_expr("(lambda (x y) x)")) \
            == "(lambda (x y) x)"

    def test_application(self):
        e = parse_expr("(f 1 2)", scope={"f"})
        assert pretty(e) == "(f 1 2)"

    def test_zero_arg_application(self):
        e = parse_expr("(f)", scope={"f"})
        assert pretty(e) == "(f)"


class TestRoundTrips:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workload_roundtrip(self, name):
        program = WORKLOADS[name].program()
        reparsed = parse_program(pretty_program(program))
        assert reparsed == program

    @pytest.mark.parametrize("src", [
        "(+ 1 (* 2 (- 3 4)))",
        "(if (< x 0) (neg x) x)",
        "(let ((a 1) (b 2)) (+ a b))",
        "(lambda (f) (f 1))",
        "((lambda (x) x) 5)",
    ])
    def test_expr_roundtrip(self, src):
        e = parse_expr(src, scope={"x"})
        assert parse_expr(pretty(e), scope={"x"}) == e


class TestLayout:
    def test_short_definitions_stay_on_one_line(self):
        program = parse_program("(define (f x) x)")
        assert pretty_program(program).strip() == "(define (f x) x)"

    def test_long_bodies_indent(self):
        program = WORKLOADS["inner_product"].program()
        text = pretty_def(program.get("dotprod"), width=40)
        assert "\n" in text

    def test_indented_respects_width(self):
        e = parse_expr("(+ 1 2)")
        assert pretty_indented(e, width=72) == "(+ 1 2)"

    def test_program_has_blank_lines_between_defs(self):
        program = WORKLOADS["inner_product"].program()
        assert "\n\n" in pretty_program(program)
