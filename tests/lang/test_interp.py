"""Standard semantics (Figure 1) unit tests."""

import pytest

from repro.lang.errors import EvalError, FuelExhausted
from repro.lang.interp import (
    Closure, Interpreter, run_program, run_with_stats)
from repro.lang.parser import parse_program
from repro.lang.values import Vector


def run(src: str, *args, fuel=100_000):
    return run_program(parse_program(src), *args, fuel=fuel)


class TestBasics:
    def test_identity(self):
        assert run("(define (f x) x)", 5) == 5

    def test_constant_function(self):
        assert run("(define (f x) 42)", 0) == 42

    def test_arithmetic(self):
        assert run("(define (f x) (+ (* x x) 1))", 4) == 17

    def test_conditional_true(self):
        assert run("(define (f x) (if (< x 0) (neg x) x))", -5) == 5

    def test_conditional_false(self):
        assert run("(define (f x) (if (< x 0) (neg x) x))", 5) == 5

    def test_conditional_is_lazy_in_branches(self):
        # The untaken branch would divide by zero.
        assert run("(define (f x) (if (= x 0) 0 (div 10 x)))", 0) == 0

    def test_non_bool_test_rejected(self):
        with pytest.raises(EvalError, match="boolean"):
            run("(define (f x) (if x 1 2))", 3)

    def test_let(self):
        assert run("(define (f x) (let ((y (+ x 1))) (* y y)))", 2) == 9

    def test_let_shadowing(self):
        src = "(define (f x) (let ((x (+ x 1))) (let ((x (* x 2))) x)))"
        assert run(src, 3) == 8

    def test_goal_arity_checked(self):
        with pytest.raises(EvalError, match="expected 1"):
            run("(define (f x) x)", 1, 2)


class TestFunctions:
    def test_call(self):
        src = """
        (define (main x) (double (double x)))
        (define (double y) (* 2 y))
        """
        assert run(src, 3) == 12

    def test_recursion(self):
        src = """
        (define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))
        """
        assert run(src, 6) == 720

    def test_mutual_recursion(self):
        src = """
        (define (even? n) (if (= n 0) true (odd? (- n 1))))
        (define (odd? n) (if (= n 0) false (even? (- n 1))))
        """
        assert run(src, 10) is True

    def test_divergence_hits_fuel(self):
        src = "(define (loop n) (loop n))"
        with pytest.raises(FuelExhausted):
            run(src, 0, fuel=1_000)

    def test_strict_arguments(self):
        # Arguments evaluate before the call: the error in the unused
        # argument still fires (strict semantics).
        src = """
        (define (main x) (const (div 1 x)))
        (define (const y) 0)
        """
        with pytest.raises(EvalError, match="zero"):
            run(src, 0)


class TestVectors:
    def test_inner_product(self, inner_product, vec3, vec3b):
        assert run_program(inner_product, vec3, vec3b) == 32.0

    def test_build_and_sum(self):
        src = """
        (define (main n)
          (let ((v (fill (mkvec n) n)))
            (total v n)))
        (define (fill v i)
          (if (= i 0) v (fill (updvec v i (itof i)) (- i 1))))
        (define (total v i)
          (if (= i 0) 0.0 (+ (vref v i) (total v (- i 1)))))
        """
        assert run(src, 4) == 10.0


class TestHigherOrder:
    def test_lambda_application(self):
        assert run("(define (f x) ((lambda (y) (+ y 1)) x))", 4) == 5

    def test_closure_captures_environment(self):
        src = """
        (define (main x)
          (let ((add-x (lambda (y) (+ x y))))
            (add-x 10)))
        """
        assert run(src, 5) == 15

    def test_function_as_argument(self):
        src = """
        (define (main x) (twice (lambda (y) (* y y)) x))
        (define (twice f v) (f (f v)))
        """
        assert run(src, 2) == 16

    def test_function_returned(self):
        src = """
        (define (main x) ((make-adder 3) x))
        (define (make-adder k) (lambda (y) (+ y k)))
        """
        assert run(src, 4) == 7

    def test_first_class_named_function(self):
        src = """
        (define (main x) (call inc x))
        (define (inc y) (+ y 1))
        (define (call f v) (f v))
        """
        assert run(src, 1) == 2

    def test_applying_non_function_fails(self):
        src = "(define (main x) (x 1))"
        with pytest.raises(EvalError, match="apply"):
            run(src, 3)

    def test_closure_arity_checked(self):
        src = "(define (main x) ((lambda (a b) a) x))"
        with pytest.raises(EvalError, match="expects 2"):
            run(src, 1)

    def test_primitive_rejects_closures(self):
        src = "(define (main x) (+ (lambda (y) y) 1))"
        with pytest.raises(EvalError, match="functional value"):
            run(src, 1)


class TestStats:
    def test_steps_counted(self):
        _, stats = run_with_stats(
            parse_program("(define (f x) (+ x 1))"), 1)
        assert stats.steps > 0
        assert stats.prim_applications == 1
        assert stats.fun_calls == 1

    def test_recursion_counts_calls(self):
        src = "(define (f n) (if (= n 0) 0 (f (- n 1))))"
        _, stats = run_with_stats(parse_program(src), 5)
        assert stats.fun_calls == 6
