"""AST traversal and transformation unit tests."""

import pytest

from repro.lang.ast import (
    App, Call, Const, If, Lam, Let, Prim, Var, alpha_equal,
    called_functions, count_occurrences, expr_size, free_vars,
    fresh_name, map_expr, substitute, used_primitives, walk)
from repro.lang.parser import parse_expr


def expr(src: str, scope=frozenset(), fns=frozenset()):
    return parse_expr(src, function_names=fns, scope=scope)


class TestWalkAndSize:
    def test_walk_yields_all_nodes_preorder(self):
        e = expr("(+ 1 (* 2 3))")
        nodes = list(walk(e))
        assert nodes[0] is e
        assert len(nodes) == 5

    def test_expr_size(self):
        assert expr_size(Const(1)) == 1
        assert expr_size(expr("(+ 1 2)")) == 3
        assert expr_size(expr("(if true 1 (+ 2 3))")) == 6

    def test_size_of_let(self):
        assert expr_size(expr("(let ((x 1)) x)")) == 3


class TestFreeVars:
    def test_constant_has_no_free_vars(self):
        assert free_vars(Const(1)) == frozenset()

    def test_variable_is_free(self):
        assert free_vars(Var("x")) == {"x"}

    def test_let_binds(self):
        e = expr("(let ((x y)) (+ x z))", scope={"y", "z"})
        assert free_vars(e) == {"y", "z"}

    def test_let_bound_expr_not_in_scope_of_binding(self):
        e = Let("x", Var("x"), Var("x"))
        assert free_vars(e) == {"x"}

    def test_lambda_binds_params(self):
        e = expr("(lambda (x y) (+ x z))", scope={"z"})
        assert free_vars(e) == {"z"}

    def test_call_args(self):
        e = expr("(f x y)", scope={"x", "y"}, fns={"f"})
        assert free_vars(e) == {"x", "y"}


class TestOccurrences:
    def test_simple_count(self):
        e = expr("(+ x (* x x))", scope={"x"})
        assert count_occurrences(e, "x") == 3

    def test_shadowed_by_let(self):
        e = Let("x", Var("x"), Var("x"))
        assert count_occurrences(e, "x") == 1  # only the bound expr

    def test_shadowed_by_lambda(self):
        e = expr("(lambda (x) x)")
        assert count_occurrences(e, "x") == 0

    def test_absent(self):
        assert count_occurrences(expr("(+ 1 2)"), "x") == 0


class TestSubstitute:
    def test_simple(self):
        e = substitute(Var("x"), {"x": Const(3)})
        assert e == Const(3)

    def test_parallel(self):
        e = substitute(expr("(+ x y)", scope={"x", "y"}),
                       {"x": Var("y"), "y": Var("x")})
        assert e == Prim("+", (Var("y"), Var("x")))

    def test_let_shadowing_stops_substitution(self):
        e = expr("(let ((x 1)) x)")
        out = substitute(e, {"x": Const(9)})
        assert out == e

    def test_let_capture_avoided(self):
        # Substituting y := x into (let ((x 1)) (+ x y)) must not
        # capture the substituted x.
        e = Let("x", Const(1), Prim("+", (Var("x"), Var("y"))))
        out = substitute(e, {"y": Var("x")})
        assert isinstance(out, Let)
        assert out.name != "x"
        assert out.body == Prim("+", (Var(out.name), Var("x")))

    def test_lambda_capture_avoided(self):
        e = Lam(("x",), Prim("+", (Var("x"), Var("y"))))
        out = substitute(e, {"y": Var("x")})
        assert isinstance(out, Lam)
        assert out.params[0] != "x"
        assert out.body == Prim("+", (Var(out.params[0]), Var("x")))

    def test_empty_bindings_identity(self):
        e = expr("(+ x 1)", scope={"x"})
        assert substitute(e, {}) is e


class TestAlphaEqual:
    def test_identical(self):
        e = expr("(+ x 1)", scope={"x"})
        assert alpha_equal(e, e)

    def test_renamed_let(self):
        a = expr("(let ((x 1)) (+ x 2))")
        b = expr("(let ((y 1)) (+ y 2))")
        assert alpha_equal(a, b)

    def test_renamed_lambda(self):
        a = expr("(lambda (x) x)")
        b = expr("(lambda (z) z)")
        assert alpha_equal(a, b)

    def test_free_vars_must_match(self):
        assert not alpha_equal(Var("x"), Var("y"))

    def test_structure_must_match(self):
        assert not alpha_equal(expr("(+ 1 2)"), expr("(- 1 2)"))

    def test_constants_distinguish_sorts(self):
        assert not alpha_equal(Const(1), Const(1.0))
        assert not alpha_equal(Const(1), Const(True))

    def test_bound_vs_free_not_equal(self):
        a = expr("(let ((x 1)) x)")
        b = Let("y", Const(1), Var("x"))
        assert not alpha_equal(a, b)

    def test_nested_binders(self):
        a = expr("(let ((x 1)) (let ((y 2)) (+ x y)))")
        b = expr("(let ((p 1)) (let ((q 2)) (+ p q)))")
        c = expr("(let ((p 1)) (let ((q 2)) (+ q p)))")
        assert alpha_equal(a, b)
        assert not alpha_equal(a, c)


class TestHelpers:
    def test_called_functions(self):
        e = expr("(+ (f 1) (g (f 2)))", fns={"f", "g"})
        assert called_functions(e) == {"f", "g"}

    def test_used_primitives(self):
        e = expr("(+ 1 (* 2 (- 3 4)))")
        assert used_primitives(e) == {"+", "*", "-"}

    def test_fresh_name(self):
        assert fresh_name("x", {"y"}) == "x"
        assert fresh_name("x", {"x"}) == "x_1"
        assert fresh_name("x", {"x", "x_1"}) == "x_2"

    def test_map_expr_bottom_up(self):
        e = expr("(+ 1 2)")

        def fold(node):
            if isinstance(node, Prim) and all(
                    isinstance(a, Const) for a in node.args):
                return Const(sum(a.value for a in node.args))
            return node

        assert map_expr(e, fold) == Const(3)

    def test_with_children_roundtrip(self):
        e = expr("(if (< x 1) (+ x 1) (f x))", scope={"x"}, fns={"f"})
        rebuilt = e.with_children(e.children())
        assert rebuilt == e
