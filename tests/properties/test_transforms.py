"""Property tests for program transformations and the generator."""

from hypothesis import given, settings

from tests.conftest import scaled_examples
from hypothesis import strategies as st

from repro.lang.errors import EvalError, FuelExhausted
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.program import is_first_order
from repro.lang.values import values_equal
from repro.transform.cleanup import drop_unreachable
from repro.transform.simplify import simplify_program
from repro.workloads.generator import GenConfig, generate_program

SEEDS = st.integers(min_value=0, max_value=10_000)
ARGS = st.integers(min_value=-6, max_value=8)
GEN = GenConfig(functions=3, max_depth=4)
FUEL = 400_000


class TestGenerator:
    @given(SEEDS)
    @settings(max_examples=scaled_examples(100), deadline=None)
    def test_programs_validate(self, seed):
        program = generate_program(seed, GEN)
        program.validate()
        assert is_first_order(program)

    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4))
    @settings(max_examples=scaled_examples(100), deadline=None)
    def test_programs_terminate(self, seed, pool):
        program = generate_program(seed, GEN)
        args = pool[:program.main.arity]
        # Structural recursion: must terminate well within the fuel.
        run_program(program, *args, fuel=FUEL)

    @given(SEEDS)
    @settings(max_examples=scaled_examples(50), deadline=None)
    def test_determinism(self, seed):
        assert generate_program(seed, GEN) == generate_program(seed,
                                                               GEN)


class TestRoundTrip:
    @given(SEEDS)
    @settings(max_examples=scaled_examples(60), deadline=None)
    def test_pretty_parse_identity(self, seed):
        program = generate_program(seed, GEN)
        assert parse_program(pretty_program(program)) == program


class TestSimplifyPreservesSemantics:
    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4))
    @settings(max_examples=scaled_examples(80), deadline=None)
    def test_equivalence(self, seed, pool):
        program = generate_program(seed, GEN)
        args = pool[:program.main.arity]
        simplified = simplify_program(program)
        want = run_program(program, *args, fuel=FUEL)
        got = run_program(simplified, *args, fuel=FUEL)
        assert values_equal(want, got)

    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4))
    @settings(max_examples=scaled_examples(40), deadline=None)
    def test_simplify_never_grows(self, seed, pool):
        program = generate_program(seed, GEN)
        assert simplify_program(program).size() <= program.size()


class TestCleanup:
    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4))
    @settings(max_examples=scaled_examples(40), deadline=None)
    def test_drop_unreachable_preserves_goal(self, seed, pool):
        program = generate_program(seed, GEN)
        args = pool[:program.main.arity]
        cleaned = drop_unreachable(program)
        assert values_equal(
            run_program(program, *args, fuel=FUEL),
            run_program(cleaned, *args, fuel=FUEL))
