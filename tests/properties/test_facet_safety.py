"""Properties 1 and 2, hypothesis-driven.

For random concrete arguments ``d_i`` and random abstract values above
their abstractions, every facet operator must over-approximate the
concrete operator (Property 1); an open operator that answers a
constant must answer *the* constant (Property 2).  This is Definition
2's condition 5 on random inputs rather than the fixed samples of
:mod:`repro.algebra.safety`.
"""

from hypothesis import given, settings

from tests.conftest import scaled_examples
from hypothesis import strategies as st

from repro.algebra.semantic import algebra_of
from repro.facets import (
    IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.library.interval import Interval
from repro.lang.errors import EvalError
from repro.lang.primitives import apply_primitive
from repro.lang.values import Vector
from repro.lattice.pevalue import PEValue

ints = st.integers(min_value=-1000, max_value=1000)
floats = st.floats(min_value=-100, max_value=100, allow_nan=False)


def _check_closed(facet, op_name, sig, concrete, abstract):
    try:
        result = apply_primitive(op_name, concrete)
    except EvalError:
        return  # concrete bottom: vacuously safe
    got = facet.apply_closed(op_name, sig, abstract)
    assert facet.domain.leq(facet.abstract(result), got), \
        (op_name, concrete, abstract, result, got)


def _check_open(facet, op_name, sig, concrete, abstract):
    try:
        result = apply_primitive(op_name, concrete)
    except EvalError:
        return
    got = facet.apply_open(op_name, sig, abstract)
    if got.is_const:
        assert got == PEValue.const(result), \
            (op_name, concrete, abstract, result, got)
    assert not got.is_bottom


def _abstract_args(facet, sig, concrete, blur):
    """Abstract arguments related to the concrete ones: exact
    abstraction or (per the blur mask) the facet top."""
    out = []
    for i, (sort, value) in enumerate(zip(sig.arg_sorts, concrete)):
        if sort == facet.carrier:
            exact = facet.abstract(value)
            out.append(facet.domain.top if blur & (1 << i) else exact)
        else:
            out.append(PEValue.top() if blur & (1 << i)
                       else PEValue.const(value))
    return out


def _run_all_ops(facet, concrete_pair, blur):
    algebra = algebra_of(facet.carrier)
    for op in algebra.operations:
        table = facet.closed_ops if op.is_closed else facet.open_ops
        if op.name not in table:
            continue
        concrete = concrete_pair[:op.arity]
        # Fill non-carrier positions with plausible values.
        args = []
        for sort, value in zip(op.sig.arg_sorts, concrete):
            if sort == "int":
                args.append(int(value) if not isinstance(value, Vector)
                            else 1)
            elif sort == "float":
                args.append(float(value)
                            if not isinstance(value, Vector) else 1.0)
            else:
                args.append(value)
        abstract = _abstract_args(facet, op.sig, args, blur)
        if op.is_closed:
            _check_closed(facet, op.name, op.sig, args, abstract)
        else:
            _check_open(facet, op.name, op.sig, args, abstract)


class TestSignSafety:
    @given(ints, ints, st.integers(min_value=0, max_value=3))
    @settings(max_examples=scaled_examples(300), deadline=None)
    def test_all_ops(self, a, b, blur):
        _run_all_ops(SignFacet(), (a, b), blur)

    @given(floats, floats, st.integers(min_value=0, max_value=3))
    @settings(max_examples=scaled_examples(200), deadline=None)
    def test_float_instance(self, a, b, blur):
        _run_all_ops(SignFacet("float"), (float(a), float(b)), blur)


class TestParitySafety:
    @given(ints, ints, st.integers(min_value=0, max_value=3))
    @settings(max_examples=scaled_examples(300), deadline=None)
    def test_all_ops(self, a, b, blur):
        _run_all_ops(ParityFacet(), (a, b), blur)


class TestIntervalSafety:
    @given(ints, ints, st.integers(min_value=0, max_value=3))
    @settings(max_examples=scaled_examples(300), deadline=None)
    def test_all_ops(self, a, b, blur):
        _run_all_ops(IntervalFacet(), (a, b), blur)

    @given(ints, ints, ints, ints)
    @settings(max_examples=scaled_examples(200), deadline=None)
    def test_widened_abstractions_still_safe(self, a, b, lo_pad,
                                             hi_pad):
        """Safety must hold for ANY abstract value above alpha(d), not
        just alpha(d) itself — here a padded interval."""
        facet = IntervalFacet()
        padded_a = Interval(a - abs(lo_pad), a + abs(hi_pad))
        exact_b = facet.abstract(b)
        sig = algebra_of("int").operation("+").sig
        got = facet.apply_closed("+", sig, [padded_a, exact_b])
        assert facet.domain.leq(facet.abstract(a + b), got)


class TestVectorSizeSafety:
    @given(st.lists(floats, min_size=0, max_size=6),
           st.integers(min_value=0, max_value=1))
    @settings(max_examples=scaled_examples(200), deadline=None)
    def test_vsize(self, items, blur):
        facet = VectorSizeFacet()
        vector = Vector.of(items)
        sig = algebra_of("vector").operation("vsize").sig
        abstract = facet.domain.top if blur else facet.abstract(vector)
        got = facet.apply_open("vsize", sig, [abstract])
        if got.is_const:
            assert got == PEValue.const(vector.size)

    @given(st.lists(floats, min_size=1, max_size=6),
           st.integers(min_value=1, max_value=6), floats)
    @settings(max_examples=scaled_examples(200), deadline=None)
    def test_updvec_preserves_size_abstraction(self, items, index,
                                               value):
        facet = VectorSizeFacet()
        vector = Vector.of(items)
        if index > vector.size:
            return
        sig = algebra_of("vector").operation("updvec").sig
        got = facet.apply_closed(
            "updvec", sig,
            [facet.abstract(vector), PEValue.const(index),
             PEValue.const(float(value))])
        updated = vector.update(index, float(value))
        assert facet.domain.leq(facet.abstract(updated), got)
