"""The paper's correctness statements on randomly generated programs.

:mod:`repro.workloads.generator` emits terminating first-order
programs, so these properties hold without termination caveats:

* **Theorem 1 / subsumption**: specializing on fully concrete inputs
  produces the same constant as standard evaluation;
* **residual correctness** (the golden PE equation): for any
  static/dynamic split, ``residual(d) = source(s, d)``;
* **facet-vector soundness**: with the full facet suite attached, the
  residual still computes the same answers (facet folds never change
  semantics);
* **strategy agreement**: online PPE with the empty suite agrees with
  Figure 2's simple PE;
* **offline agreement**: the analysis-driven specializer computes the
  same function as the online one.
"""

import pytest
from hypothesis import given, settings

from tests.conftest import scaled_examples
from hypothesis import strategies as st

from repro.baselines.simple_pe import DYN, specialize_simple
from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet)
from repro.lang.errors import EvalError, FuelExhausted, PEError
from repro.lang.interp import Interpreter, run_program
from repro.lang.values import INT
from repro.online import PEConfig, UnfoldStrategy, specialize_online
from repro.offline.specializer import specialize_offline
from repro.workloads.generator import GenConfig, generate_program

SEEDS = st.integers(min_value=0, max_value=10_000)
ARGS = st.integers(min_value=-6, max_value=8)
GEN = GenConfig(functions=3, max_depth=3)
# Modest unfolding: generated programs can have exponentially many
# static paths, and unbounded unfolding would explore them all.
PE_CONFIG = PEConfig(unfold_fuel=12, max_variants=4, fuel=2_000_000)
FUEL = 2_000_000


def _tolerated_blowup(error: PEError) -> bool:
    """Specialization may legitimately exhaust its resource bounds on
    adversarial programs (exponential static path space); correctness
    properties only constrain the runs that finish."""
    return "exceeded" in str(error)


def run_source(program, args):
    return run_program(program, *args, fuel=FUEL)


def suites():
    return FacetSuite([SignFacet(), ParityFacet(), IntervalFacet()])


class TestTheorem1:
    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4))
    @settings(max_examples=scaled_examples(60), deadline=None)
    def test_fully_static_pe_equals_evaluation(self, seed, pool):
        program = generate_program(seed, GEN)
        args = pool[:program.main.arity]
        expected = run_source(program, args)
        try:
            result = specialize_online(program, args, suites(),
                                       PE_CONFIG)
        except PEError as error:
            assert _tolerated_blowup(error), error
            return
        body = result.program.main.body
        from repro.lang.ast import Const
        assert isinstance(body, Const), \
            "fully static program must specialize to a constant"
        from repro.lang.values import values_equal
        assert values_equal(body.value, expected)


class TestResidualCorrectness:
    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4),
           st.integers(min_value=0, max_value=15))
    @settings(max_examples=scaled_examples(60), deadline=None)
    def test_golden_equation_plain_pe(self, seed, pool, mask):
        program = generate_program(seed, GEN)
        arity = program.main.arity
        suite = FacetSuite()
        inputs = []
        dynamic_positions = []
        for i in range(arity):
            if mask & (1 << i):
                inputs.append(suite.unknown(INT))
                dynamic_positions.append(i)
            else:
                inputs.append(pool[i])
        try:
            result = specialize_online(program, inputs, suite,
                                       PE_CONFIG)
        except PEError as error:
            assert _tolerated_blowup(error), error
            return
        args = pool[:arity]
        expected = run_source(program, args)
        dynamic_args = [args[i] for i in dynamic_positions]
        got = Interpreter(result.program, fuel=FUEL).run(*dynamic_args)
        from repro.lang.values import values_equal
        assert values_equal(got, expected)

    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4),
           st.integers(min_value=0, max_value=15))
    @settings(max_examples=scaled_examples(60), deadline=None)
    def test_golden_equation_with_facets(self, seed, pool, mask):
        """Facet-driven folds must never change residual semantics.

        Dynamic inputs carry their true sign/parity/range as facet
        values, so every facet has a chance to fire."""
        program = generate_program(seed, GEN)
        arity = program.main.arity
        suite = suites()
        from repro.facets.library.interval import Interval
        inputs = []
        dynamic_positions = []
        for i in range(arity):
            if mask & (1 << i):
                value = pool[i]
                inputs.append(suite.input(
                    INT,
                    sign=suite.facet_named("sign").abstract(value),
                    parity=suite.facet_named("parity").abstract(value),
                    interval=Interval(value - 1, value + 1)))
                dynamic_positions.append(i)
            else:
                inputs.append(pool[i])
        try:
            result = specialize_online(program, inputs, suite,
                                       PE_CONFIG)
        except PEError as error:
            assert _tolerated_blowup(error), error
            return
        args = pool[:arity]
        expected = run_source(program, args)
        dynamic_args = [args[i] for i in dynamic_positions]
        got = Interpreter(result.program, fuel=FUEL).run(*dynamic_args)
        from repro.lang.values import values_equal
        assert values_equal(got, expected)


class TestStrategyAgreement:
    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4),
           st.integers(min_value=0, max_value=15))
    @settings(max_examples=scaled_examples(40), deadline=None)
    def test_empty_suite_matches_simple_pe(self, seed, pool, mask):
        program = generate_program(seed, GEN)
        arity = program.main.arity
        suite = FacetSuite()
        simple_inputs = []
        ppe_inputs = []
        dynamic_positions = []
        for i in range(arity):
            if mask & (1 << i):
                simple_inputs.append(DYN)
                ppe_inputs.append(suite.unknown(INT))
                dynamic_positions.append(i)
            else:
                simple_inputs.append(pool[i])
                ppe_inputs.append(pool[i])
        try:
            simple = specialize_simple(program, simple_inputs,
                                       PE_CONFIG)
            online = specialize_online(program, ppe_inputs, suite,
                                       PE_CONFIG)
        except PEError as error:
            assert _tolerated_blowup(error), error
            return
        args = pool[:arity]
        dynamic_args = [args[i] for i in dynamic_positions]
        a = Interpreter(simple.program, fuel=FUEL).run(*dynamic_args)
        b = Interpreter(online.program, fuel=FUEL).run(*dynamic_args)
        from repro.lang.values import values_equal
        assert values_equal(a, b)


class TestOfflineAgreement:
    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4),
           st.integers(min_value=0, max_value=15))
    @settings(max_examples=scaled_examples(40), deadline=None)
    def test_offline_matches_online_semantics(self, seed, pool, mask):
        program = generate_program(seed, GEN)
        arity = program.main.arity
        suite = FacetSuite([SignFacet(), ParityFacet()])
        inputs = []
        dynamic_positions = []
        for i in range(arity):
            if mask & (1 << i):
                value = pool[i]
                inputs.append(suite.input(
                    INT,
                    sign=suite.facet_named("sign").abstract(value),
                    parity=suite.facet_named("parity").abstract(value)))
                dynamic_positions.append(i)
            else:
                inputs.append(pool[i])
        try:
            offline = specialize_offline(program, inputs, suite,
                                         config=PE_CONFIG)
        except PEError as error:
            # The only tolerated refusal is variant explosion (static
            # data growing under dynamic control).  A "promised Static
            # but residual" error would be a Property 6 violation and
            # must fail the test.
            assert "generalized division" in str(error) \
                or _tolerated_blowup(error), error
            return
        args = pool[:arity]
        expected = run_source(program, args)
        dynamic_args = [args[i] for i in dynamic_positions]
        got = Interpreter(offline.program,
                          fuel=FUEL).run(*dynamic_args)
        from repro.lang.values import values_equal
        assert values_equal(got, expected)


class TestConstraintPropagationCorrectness:
    """The Section 4.4 extension must never change residual semantics:
    refinements are meets over values that provably reach the branch."""

    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4),
           st.integers(min_value=0, max_value=15))
    @settings(max_examples=scaled_examples(50), deadline=None)
    def test_golden_equation_with_constraints(self, seed, pool, mask):
        program = generate_program(seed, GEN)
        arity = program.main.arity
        suite = suites()
        config = PEConfig(unfold_fuel=12, max_variants=4,
                          fuel=2_000_000, propagate_constraints=True)
        inputs = []
        dynamic_positions = []
        for i in range(arity):
            if mask & (1 << i):
                inputs.append(suite.unknown(INT))
                dynamic_positions.append(i)
            else:
                inputs.append(pool[i])
        try:
            result = specialize_online(program, inputs, suite, config)
        except PEError as error:
            assert _tolerated_blowup(error), error
            return
        args = pool[:arity]
        expected = run_source(program, args)
        dynamic_args = [args[i] for i in dynamic_positions]
        got = Interpreter(result.program, fuel=FUEL).run(*dynamic_args)
        from repro.lang.values import values_equal
        assert values_equal(got, expected)


class TestGeneratingExtensionAgreement:
    """Staged (cogen) and unstaged offline specialization must produce
    identical residual programs on random programs and divisions."""

    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4),
           st.integers(min_value=0, max_value=15))
    @settings(max_examples=scaled_examples(40), deadline=None)
    def test_staged_equals_unstaged(self, seed, pool, mask):
        from repro.facets.abstract import AbstractSuite
        from repro.offline.analysis import analyze
        from repro.offline.cogen import make_generating_extension
        from repro.offline.specializer import OfflineSpecializer

        program = generate_program(seed, GEN)
        arity = program.main.arity
        suite = FacetSuite([SignFacet()])
        abstract_suite = AbstractSuite(suite)
        inputs = []
        for i in range(arity):
            if mask & (1 << i):
                value = pool[i]
                inputs.append(suite.input(
                    INT,
                    sign=suite.facet_named("sign").abstract(value)))
            else:
                inputs.append(pool[i])
        pattern = [abstract_suite.abstract_of_online(
            v if not isinstance(v, int) else suite.const_vector(v))
            for v in inputs]
        analysis = analyze(program, pattern, abstract_suite)
        try:
            unstaged = OfflineSpecializer(
                analysis, suite, PE_CONFIG).specialize(inputs)
            staged = make_generating_extension(
                analysis, suite, PE_CONFIG).specialize(inputs)
        except PEError as error:
            assert _tolerated_blowup(error) \
                or "generalized division" in str(error), error
            return
        assert staged.program == unstaged.program
