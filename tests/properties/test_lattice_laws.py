"""Property-based lattice-law checks on the non-enumerable domains."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facets.library.interval import (
    EMPTY, FULL, Interval, IntervalLattice)
from repro.lattice.pevalue import PE_LATTICE, PEValue

# -- strategies -------------------------------------------------------------

values = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.booleans(),
    st.floats(min_value=-8, max_value=8, allow_nan=False,
              width=32).map(float))

pe_values = st.one_of(
    st.just(PEValue.bottom()),
    st.just(PEValue.top()),
    values.map(PEValue.const))


def _interval(lo, width):
    return Interval(lo, None if width is None else lo + width)


intervals = st.one_of(
    st.just(EMPTY),
    st.just(FULL),
    st.builds(_interval,
              st.integers(min_value=-30, max_value=30),
              st.one_of(st.none(),
                        st.integers(min_value=0, max_value=40))),
    st.builds(lambda hi: Interval(None, hi),
              st.integers(min_value=-30, max_value=30)),
)

INTERVALS = IntervalLattice()


class TestPEValueLattice:
    @given(pe_values)
    def test_reflexive(self, a):
        assert PE_LATTICE.leq(a, a)

    @given(pe_values, pe_values)
    def test_antisymmetric(self, a, b):
        if PE_LATTICE.leq(a, b) and PE_LATTICE.leq(b, a):
            assert a == b

    @given(pe_values, pe_values, pe_values)
    def test_transitive(self, a, b, c):
        if PE_LATTICE.leq(a, b) and PE_LATTICE.leq(b, c):
            assert PE_LATTICE.leq(a, c)

    @given(pe_values, pe_values)
    def test_join_is_upper_bound(self, a, b):
        j = PE_LATTICE.join(a, b)
        assert PE_LATTICE.leq(a, j) and PE_LATTICE.leq(b, j)

    @given(pe_values, pe_values, pe_values)
    def test_join_is_least(self, a, b, c):
        if PE_LATTICE.leq(a, c) and PE_LATTICE.leq(b, c):
            assert PE_LATTICE.leq(PE_LATTICE.join(a, b), c)

    @given(pe_values, pe_values)
    def test_join_commutative(self, a, b):
        assert PE_LATTICE.join(a, b) == PE_LATTICE.join(b, a)

    @given(pe_values, pe_values)
    def test_meet_is_lower_bound(self, a, b):
        m = PE_LATTICE.meet(a, b)
        assert PE_LATTICE.leq(m, a) and PE_LATTICE.leq(m, b)


class TestIntervalLattice:
    @given(intervals)
    def test_reflexive(self, a):
        assert INTERVALS.leq(a, a)

    @given(intervals, intervals)
    def test_antisymmetric(self, a, b):
        if INTERVALS.leq(a, b) and INTERVALS.leq(b, a):
            assert a == b

    @given(intervals, intervals, intervals)
    def test_transitive(self, a, b, c):
        if INTERVALS.leq(a, b) and INTERVALS.leq(b, c):
            assert INTERVALS.leq(a, c)

    @given(intervals, intervals)
    def test_join_is_upper_bound(self, a, b):
        j = INTERVALS.join(a, b)
        assert INTERVALS.leq(a, j) and INTERVALS.leq(b, j)

    @given(intervals, intervals, intervals)
    def test_join_is_least(self, a, b, c):
        if INTERVALS.leq(a, c) and INTERVALS.leq(b, c):
            assert INTERVALS.leq(INTERVALS.join(a, b), c)

    @given(intervals, intervals)
    def test_meet_is_greatest_lower_bound(self, a, b):
        m = INTERVALS.meet(a, b)
        assert INTERVALS.leq(m, a) and INTERVALS.leq(m, b)

    @given(intervals, intervals)
    def test_widening_is_an_upper_bound(self, a, b):
        w = INTERVALS.widen(a, b)
        assert INTERVALS.leq(a, w) and INTERVALS.leq(b, w)

    @given(intervals)
    def test_widening_chain_stabilizes_fast(self, start):
        # Widening must reach a fixpoint in a bounded number of steps
        # regardless of the ascending chain fed to it — here we grow
        # the interval by one on both sides each round.
        current = start
        for step in range(6):
            if current == EMPTY:
                grown = Interval(-1, 1)
            else:
                assert isinstance(current, Interval)
                lo = None if current.lo is None else current.lo - 1
                hi = None if current.hi is None else current.hi + 1
                grown = Interval(lo, hi)
            new = INTERVALS.widen(current, grown)
            if new == current:
                break
            current = new
        else:
            raise AssertionError("widening did not stabilize")

    @given(intervals, st.integers(min_value=-40, max_value=40))
    def test_membership_respected_by_join(self, a, point):
        singleton = Interval(point, point)
        j = INTERVALS.join(a, singleton)
        assert INTERVALS.leq(singleton, j)
