"""Corpus-wide residual-correctness integration tests.

Every first-order workload is specialized under several divisions and
the residuals are run against the source on a grid of inputs — the
golden equation ``residual(d) = source(s, d)`` at repository scale.
"""

import pytest

from repro.baselines.simple_pe import DYN, specialize_simple
from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.lang.interp import Interpreter, run_program
from repro.lang.values import INT, VECTOR, Vector
from repro.online import PEConfig, UnfoldStrategy, specialize_online
from repro.offline.specializer import specialize_offline
from repro.workloads import WORKLOADS, vm_program_square_plus


def rich_suite():
    return FacetSuite([SignFacet(), ParityFacet(), IntervalFacet(),
                       VectorSizeFacet()])


def vectors(n, scale=1.0):
    return Vector.of([scale * (i + 1) for i in range(n)])


class TestInnerProductFamily:
    @pytest.mark.parametrize("size", [1, 3, 6])
    def test_all_strategies_agree(self, size):
        program = WORKLOADS["inner_product"].program()
        suite = rich_suite()
        inputs = [suite.input(VECTOR, size=size)] * 2
        online = specialize_online(program, inputs, suite)
        offline = specialize_offline(program, inputs, suite)
        a, b = vectors(size), vectors(size, 0.5)
        want = run_program(program, a, b)
        assert Interpreter(online.program).run(a, b) == want
        assert Interpreter(offline.program).run(a, b) == want


class TestPolyEval:
    @pytest.mark.parametrize("degree", [1, 4])
    def test_static_degree(self, degree):
        program = WORKLOADS["poly_eval"].program()
        suite = rich_suite()
        inputs = [suite.input(VECTOR, size=degree),
                  suite.unknown("float")]
        result = specialize_online(program, inputs, suite)
        coefficients = vectors(degree)
        for x in (0.0, 1.5, -2.0):
            assert Interpreter(result.program).run(coefficients, x) \
                == run_program(program, coefficients, x)


class TestMiniVM:
    def test_futamura_projection(self):
        program = WORKLOADS["mini_vm"].program()
        suite = FacetSuite()
        code = Vector.of(vm_program_square_plus(4.0))
        result = specialize_online(
            program, [code, suite.unknown("float")], suite)
        # All interpretation is gone: no calls, no vrefs.
        text = str(result.program)
        assert "vref" not in text
        for x in (0.0, 2.0, -1.5):
            assert Interpreter(result.program).run(x) \
                == run_program(program, code, x)


class TestGcdAndFib:
    def test_gcd_fully_static(self):
        program = WORKLOADS["gcd"].program()
        result = specialize_simple(program, [252, 105])
        assert str(result.program).strip() == "(define (gcd) 21)"

    def test_fib_static(self):
        program = WORKLOADS["fib"].program()
        result = specialize_simple(program, [12])
        assert str(result.program).strip() == "(define (fib) 144)"

    def test_fib_dynamic_specializes_finitely(self):
        program = WORKLOADS["fib"].program()
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)
        result = specialize_simple(program, [DYN], config)
        assert Interpreter(result.program).run(10) == 55


class TestClampedLookup:
    def test_interval_and_size_facets_together(self):
        program = WORKLOADS["clamped_lookup"].program()
        suite = rich_suite()
        inputs = [suite.input(VECTOR, size=8), suite.unknown(INT),
                  1, 8]
        result = specialize_online(program, inputs, suite)
        table = vectors(8)
        for index in (-2, 1, 5, 8, 99):
            assert Interpreter(result.program).run(table, index) \
                == run_program(program, table, index, 1, 8)


class TestAlternatingSum:
    @pytest.mark.parametrize("size", [2, 5])
    def test_static_size(self, size):
        program = WORKLOADS["alternating_sum"].program()
        suite = rich_suite()
        inputs = [suite.input(VECTOR, size=size)]
        result = specialize_online(program, inputs, suite)
        v = vectors(size)
        assert Interpreter(result.program).run(v) \
            == run_program(program, v)
        # The parity dispatch inside the loop folded away.
        assert "mod" not in str(result.program)


class TestSignPipelineDivisions:
    @pytest.mark.parametrize("sign,samples", [
        ("pos", [(3, 2), (9, 4)]),
        ("neg", [(-3, 2), (-9, 4)]),
        ("zero", [(0, 5)]),
    ])
    def test_each_sign_class(self, sign, samples):
        program = WORKLOADS["sign_pipeline"].program()
        suite = rich_suite()
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)
        inputs = [suite.input(INT, sign=sign),
                  suite.input(INT, sign="pos")]
        result = specialize_online(program, inputs, suite, config)
        for x, scale in samples:
            assert Interpreter(result.program).run(x, scale) \
                == run_program(program, x, scale)


class TestMatVec:
    def test_static_dims_unroll_completely(self):
        from repro.lang.ast import Call, walk
        program = WORKLOADS["matvec"].program()
        suite = rich_suite()
        inputs = [suite.input(VECTOR, size=6),   # 2x3 matrix, flat
                  suite.input(VECTOR, size=3),   # x
                  suite.input(VECTOR, size=2)]   # out
        result = specialize_online(program, inputs, suite)
        assert not any(isinstance(n, Call)
                       for d in result.program.defs
                       for n in walk(d.body)), "loops must unroll"
        m = Vector.of([1, 2, 3, 4, 5, 6])
        x = Vector.of([1.0, 0.5, 2.0])
        out = Vector.empty(2)
        assert Interpreter(result.program).run(m, x, out) \
            == run_program(program, m, x, out)

    def test_offline_agrees(self):
        from repro.offline.specializer import specialize_offline
        program = WORKLOADS["matvec"].program()
        suite = rich_suite()
        inputs = [suite.input(VECTOR, size=4),
                  suite.input(VECTOR, size=2),
                  suite.input(VECTOR, size=2)]
        online = specialize_online(program, inputs, suite)
        offline = specialize_offline(program, inputs, suite)
        m = Vector.of([2.0, 0.0, 0.0, 2.0])
        x = Vector.of([3.0, 4.0])
        out = Vector.empty(2)
        want = run_program(program, m, x, out)
        assert Interpreter(online.program).run(m, x, out) == want
        assert Interpreter(offline.program).run(m, x, out) == want


class TestBinarySearch:
    def test_probe_tree_unrolls_on_static_size(self):
        from repro.lang.ast import Call, walk
        program = WORKLOADS["binary_search"].program()
        suite = rich_suite()
        inputs = [suite.input(VECTOR, size=7), suite.unknown("float")]
        result = specialize_online(program, inputs, suite)
        assert not any(isinstance(n, Call)
                       for d in result.program.defs
                       for n in walk(d.body)), "probe tree must unroll"
        # All residual vrefs use constant (statically known) indices.
        from repro.lang.ast import Const, Prim
        for d in result.program.defs:
            for node in walk(d.body):
                if isinstance(node, Prim) and node.op == "vref":
                    assert isinstance(node.args[1], Const)

    @pytest.mark.parametrize("key,expected", [
        (1.0, 1), (7.0, 4), (13.0, 7), (2.0, 0), (99.0, 0)])
    def test_residual_finds_the_same_answers(self, key, expected):
        program = WORKLOADS["binary_search"].program()
        suite = rich_suite()
        inputs = [suite.input(VECTOR, size=7), suite.unknown("float")]
        result = specialize_online(program, inputs, suite)
        v = Vector.of([1.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0])
        got = Interpreter(result.program).run(v, key)
        assert got == expected == run_program(program, v, key)
