"""Every shipped example must run clean (they assert their own claims).

Examples double as executable documentation; this suite keeps them from
rotting.  Each module exposes ``main()`` and raises on any regression.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_expected_examples_present():
    assert {"quickstart", "inner_product", "sign_specialization",
            "interval_bounds_check", "futamura_vm",
            "higher_order_analysis", "offline_amortization",
            "custom_facet", "constraint_propagation",
            "generating_extension"} <= set(EXAMPLES)
