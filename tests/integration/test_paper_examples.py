"""End-to-end checks of the paper's worked material (Section 6).

These are the repository's ground-truth tests: Figure 7 in, Figure 8
out, Figure 9 in between — for both the online and offline strategies.
"""

import pytest

from repro.baselines.simple_pe import DYN, specialize_simple
from repro.facets import FacetSuite, SignFacet, VectorSizeFacet
from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.lang.ast import Call, Prim, walk
from repro.lang.interp import Interpreter, run_program
from repro.lang.parser import parse_expr, parse_program
from repro.lang.pretty import pretty_program
from repro.lang.values import VECTOR, Vector
from repro.lattice.bt import BT
from repro.offline.analysis import analyze
from repro.offline.specializer import OfflineSpecializer, \
    specialize_offline
from repro.online import specialize_online
from repro.workloads import WORKLOADS

#: Figure 8, transcribed (associativity of + follows the unfolding).
FIGURE_8 = """
(define (iprod A B)
  (+ (* (vref A 3) (vref B 3))
     (+ (* (vref A 2) (vref B 2))
        (* (vref A 1) (vref B 1)))))
"""


@pytest.fixture
def suite():
    return FacetSuite([VectorSizeFacet()])


class TestFigure8:
    def test_online_residual_is_figure_8(self, inner_product, suite):
        inputs = [suite.input(VECTOR, size=3)] * 2
        result = specialize_online(inner_product, inputs, suite)
        expected = parse_program(FIGURE_8)
        assert result.program == expected

    def test_offline_residual_is_figure_8(self, inner_product, suite):
        inputs = [suite.input(VECTOR, size=3)] * 2
        result = specialize_offline(inner_product, inputs, suite)
        assert result.program == parse_program(FIGURE_8)

    def test_residual_is_non_recursive(self, inner_product, suite):
        inputs = [suite.input(VECTOR, size=3)] * 2
        result = specialize_online(inner_product, inputs, suite)
        assert not any(isinstance(n, Call)
                       for d in result.program.defs
                       for n in walk(d.body))

    def test_vref_stays_residual(self, inner_product, suite):
        # "since elements of the vectors are unknown ... Vref cannot be
        # reduced; therefore, both the multiplication and addition
        # operations are residual."
        inputs = [suite.input(VECTOR, size=3)] * 2
        result = specialize_online(inner_product, inputs, suite)
        body = result.program.main.body
        vrefs = [n for n in walk(body)
                 if isinstance(n, Prim) and n.op == "vref"]
        assert len(vrefs) == 6

    @pytest.mark.parametrize("size", [0, 1, 2, 3, 5, 8])
    def test_any_size_residual_agrees_with_source(self, inner_product,
                                                  suite, size):
        inputs = [suite.input(VECTOR, size=size)] * 2
        result = specialize_online(inner_product, inputs, suite)
        a = Vector.of([float(i + 1) for i in range(size)])
        b = Vector.of([float(i * 2 + 1) for i in range(size)])
        assert Interpreter(result.program).run(a, b) \
            == run_program(inner_product, a, b)

    def test_conventional_pe_gets_nothing(self, inner_product):
        # The paper's motivation: without the Size facet there is
        # nothing static about a dynamic vector.
        result = specialize_simple(inner_product, [DYN, DYN])
        assert any(isinstance(n, Call)
                   for d in result.program.defs
                   for n in walk(d.body)), \
            "the recursion should have survived"


class TestFigure9:
    @pytest.fixture
    def analysis(self, inner_product):
        suite = AbstractSuite(FacetSuite([VectorSizeFacet()]))
        inputs = [suite.input(VECTOR, bt=BT.DYNAMIC,
                              size=STATIC_SIZE)] * 2
        return analyze(inner_product, inputs, suite)

    def test_n_is_static(self, analysis):
        assert analysis.signatures["dotprod"].args[2].bt is BT.STATIC

    def test_vectors_stay_dynamic_with_static_size(self, analysis):
        for position in (0, 1):
            arg = analysis.signatures["dotprod"].args[position]
            assert arg.bt is BT.DYNAMIC
            assert arg.user == (STATIC_SIZE,)

    def test_size_needed_only_in_iprod(self, analysis):
        assert analysis.needed_facets["iprod"] == {"size"}
        assert analysis.needed_facets["dotprod"] == frozenset()


class TestOnlineOfflineAgreement:
    """Both strategies produce semantically equal residuals across the
    first-order corpus with facet-informed inputs."""

    def test_alternating_sum(self):
        program = WORKLOADS["alternating_sum"].program()
        suite = FacetSuite([VectorSizeFacet()])
        inputs = [suite.input(VECTOR, size=4)]
        online = specialize_online(program, inputs, suite)
        offline = specialize_offline(program, inputs, suite)
        v = Vector.of([1.0, 2.0, 3.0, 4.0])
        assert Interpreter(online.program).run(v) \
            == Interpreter(offline.program).run(v) \
            == run_program(program, v)

    def test_sign_pipeline(self):
        from repro.online import PEConfig, UnfoldStrategy
        program = WORKLOADS["sign_pipeline"].program()
        suite = FacetSuite([SignFacet()])
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)
        inputs = [suite.input("int", sign="neg"),
                  suite.input("int", sign="pos")]
        online = specialize_online(program, inputs, suite, config)
        offline = specialize_offline(program, inputs, suite,
                                     config=config)
        for x, scale in [(-7, 2), (-1, 5)]:
            want = run_program(program, x, scale)
            assert Interpreter(online.program).run(x, scale) == want
            assert Interpreter(offline.program).run(x, scale) == want


class TestAmortization:
    def test_one_analysis_serves_many_specializations(
            self, inner_product, suite):
        abstract_suite = AbstractSuite(suite)
        pattern = [abstract_suite.input(VECTOR, bt=BT.DYNAMIC,
                                        size=STATIC_SIZE)] * 2
        analysis = analyze(inner_product, pattern, abstract_suite)
        total_offline = 0
        total_online = 0
        for size in (2, 3, 4, 6):
            inputs = [suite.input(VECTOR, size=size)] * 2
            offline = OfflineSpecializer(
                analysis, suite).specialize(inputs)
            online = specialize_online(inner_product, inputs, suite)
            assert offline.program == online.program
            total_offline += offline.stats.facet_evaluations
            total_online += online.stats.facet_evaluations
        assert total_offline < total_online
