"""CLI integration tests (``ppe`` entry point)."""

import pytest

from repro.cli import main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "iprod.ppe"
    path.write_text("""
(define (iprod A B)
  (let ((n (vsize A)))
    (dotprod A B n)))
(define (dotprod A B n)
  (if (= n 0) 0.0
      (+ (* (vref A n) (vref B n)) (dotprod A B (- n 1)))))
""")
    return path


@pytest.fixture
def abs_file(tmp_path):
    path = tmp_path / "abs.ppe"
    path.write_text("(define (f x) (if (< x 0) (neg x) x))")
    return path


class TestRun:
    def test_run_program(self, capsys, program_file):
        code = main(["run", str(program_file), "#(1 2 3)", "#(4 5 6)"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "32.0"

    def test_run_scalar(self, capsys, abs_file):
        main(["run", str(abs_file), "-7"])
        assert capsys.readouterr().out.strip() == "7"


class TestSpecialize:
    def test_size_spec(self, capsys, program_file):
        code = main(["specialize", str(program_file), "size=3",
                     "size=3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(vref A 3)" in out
        assert "dotprod" not in out

    def test_sign_spec(self, capsys, abs_file):
        main(["specialize", str(abs_file), "sign=pos"])
        assert "(define (f x) x)" in capsys.readouterr().out

    def test_literal_spec(self, capsys, abs_file):
        main(["specialize", str(abs_file), "-5"])
        assert "(define (f) 5)" in capsys.readouterr().out

    def test_dyn_spec(self, capsys, abs_file):
        main(["specialize", str(abs_file), "dyn"])
        assert "(if (< x 0)" in capsys.readouterr().out

    def test_interval_spec(self, capsys, abs_file):
        main(["specialize", str(abs_file), "interval=1:9"])
        assert "(define (f x) x)" in capsys.readouterr().out

    def test_unknown_facet_rejected(self, abs_file):
        with pytest.raises(SystemExit):
            main(["specialize", str(abs_file), "flavor=hot"])


class TestAnalyzeAndOffline:
    def test_analyze_prints_figure9_table(self, capsys, program_file):
        code = main(["analyze", str(program_file), "size=3",
                     "size=3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Facet signatures" in out
        assert "iprod" in out and "dotprod" in out

    def test_offline_specializes(self, capsys, program_file):
        code = main(["offline", str(program_file), "size=2",
                     "size=2"])
        assert code == 0
        assert "(vref A 2)" in capsys.readouterr().out


class TestWorkloads:
    def test_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "inner_product" in out
        assert "higher-order" in out


class TestBackends:
    def test_every_backend_prints_the_same_answer(self, capsys,
                                                  program_file):
        outputs = {}
        for backend in ("interp", "compiled", "shadow"):
            code = main(["run", str(program_file),
                         "#(1 2 3)", "#(4 5 6)",
                         "--backend", backend])
            assert code == 0
            outputs[backend] = capsys.readouterr().out
        assert outputs["interp"] == outputs["compiled"] \
            == outputs["shadow"] == "32.0\n"

    def test_shadow_reports_comparisons_on_stderr(self, capsys,
                                                  abs_file):
        main(["run", str(abs_file), "-7", "--backend", "shadow"])
        captured = capsys.readouterr()
        assert captured.out.strip() == "7"
        assert "1 comparison(s), 0 mismatch(es)" in captured.err

    def test_compile_emits_python(self, capsys, program_file):
        code = main(["compile", str(program_file)])
        assert code == 0
        captured = capsys.readouterr()
        assert "def _f_iprod" in captured.out
        assert "; fingerprint: " in captured.err

    def test_compile_to_file(self, capsys, tmp_path, abs_file):
        out_path = tmp_path / "abs.py"
        assert main(["compile", str(abs_file),
                     "--output", str(out_path)]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "def _f_f" in out_path.read_text()

    def test_batch_compiled_backend_attaches_artifacts(
            self, capsys, tmp_path, abs_file):
        import json
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps([
            {"file": "abs.ppe", "specs": ["sign=pos"], "id": "pos"},
        ]))
        (tmp_path / "abs.ppe").write_text(abs_file.read_text())
        assert main(["batch", str(manifest), "--workers", "0",
                     "--backend", "compiled"]) == 0
        results = json.loads(capsys.readouterr().out)
        assert results[0]["compiled"]["fingerprint"]

    def test_batch_interp_backend_output_has_no_compiled_key(
            self, capsys, tmp_path, abs_file):
        import json
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps([
            {"file": "abs.ppe", "specs": ["sign=pos"], "id": "pos"},
        ]))
        (tmp_path / "abs.ppe").write_text(abs_file.read_text())
        assert main(["batch", str(manifest), "--workers", "0"]) == 0
        results = json.loads(capsys.readouterr().out)
        assert "compiled" not in results[0]
