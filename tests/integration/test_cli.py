"""CLI integration tests (``ppe`` entry point)."""

import pytest

from repro.cli import main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "iprod.ppe"
    path.write_text("""
(define (iprod A B)
  (let ((n (vsize A)))
    (dotprod A B n)))
(define (dotprod A B n)
  (if (= n 0) 0.0
      (+ (* (vref A n) (vref B n)) (dotprod A B (- n 1)))))
""")
    return path


@pytest.fixture
def abs_file(tmp_path):
    path = tmp_path / "abs.ppe"
    path.write_text("(define (f x) (if (< x 0) (neg x) x))")
    return path


class TestRun:
    def test_run_program(self, capsys, program_file):
        code = main(["run", str(program_file), "#(1 2 3)", "#(4 5 6)"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "32.0"

    def test_run_scalar(self, capsys, abs_file):
        main(["run", str(abs_file), "-7"])
        assert capsys.readouterr().out.strip() == "7"


class TestSpecialize:
    def test_size_spec(self, capsys, program_file):
        code = main(["specialize", str(program_file), "size=3",
                     "size=3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(vref A 3)" in out
        assert "dotprod" not in out

    def test_sign_spec(self, capsys, abs_file):
        main(["specialize", str(abs_file), "sign=pos"])
        assert "(define (f x) x)" in capsys.readouterr().out

    def test_literal_spec(self, capsys, abs_file):
        main(["specialize", str(abs_file), "-5"])
        assert "(define (f) 5)" in capsys.readouterr().out

    def test_dyn_spec(self, capsys, abs_file):
        main(["specialize", str(abs_file), "dyn"])
        assert "(if (< x 0)" in capsys.readouterr().out

    def test_interval_spec(self, capsys, abs_file):
        main(["specialize", str(abs_file), "interval=1:9"])
        assert "(define (f x) x)" in capsys.readouterr().out

    def test_unknown_facet_rejected(self, abs_file):
        with pytest.raises(SystemExit):
            main(["specialize", str(abs_file), "flavor=hot"])


class TestAnalyzeAndOffline:
    def test_analyze_prints_figure9_table(self, capsys, program_file):
        code = main(["analyze", str(program_file), "size=3",
                     "size=3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Facet signatures" in out
        assert "iprod" in out and "dotprod" in out

    def test_offline_specializes(self, capsys, program_file):
        code = main(["offline", str(program_file), "size=2",
                     "size=2"])
        assert code == 0
        assert "(vref A 2)" in capsys.readouterr().out


class TestWorkloads:
    def test_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "inner_product" in out
        assert "higher-order" in out
