"""Generating-extension tests: staged = unstaged, only faster."""

import pytest

from repro.facets import (
    FacetSuite, IntervalFacet, SignFacet, VectorSizeFacet)
from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.lang.errors import PEError
from repro.lang.interp import Interpreter, run_program
from repro.lang.parser import parse_program
from repro.lang.values import INT, VECTOR, Vector
from repro.lattice.bt import BT
from repro.offline.analysis import analyze
from repro.offline.cogen import make_generating_extension
from repro.offline.specializer import OfflineSpecializer
from repro.online import PEConfig, UnfoldStrategy
from repro.workloads import WORKLOADS


def _pipeline(program, suite, pattern):
    abstract_suite = AbstractSuite(suite)
    analysis = analyze(program, pattern, abstract_suite)
    return (OfflineSpecializer(analysis, suite),
            make_generating_extension(analysis, suite))


class TestAgreement:
    def test_inner_product_residuals_identical(self):
        program = WORKLOADS["inner_product"].program()
        suite = FacetSuite([VectorSizeFacet()])
        abstract_suite = AbstractSuite(suite)
        pattern = [abstract_suite.input(VECTOR, bt=BT.DYNAMIC,
                                        size=STATIC_SIZE)] * 2
        specializer, genext = _pipeline(program, suite, pattern)
        for size in (1, 3, 5):
            inputs = [suite.input(VECTOR, size=size)] * 2
            assert genext.specialize(inputs).program \
                == specializer.specialize(inputs).program

    def test_power_agreement(self):
        program = WORKLOADS["power"].program()
        suite = FacetSuite()
        abstract_suite = AbstractSuite(suite)
        pattern = [abstract_suite.dynamic(INT),
                   abstract_suite.static(INT)]
        specializer, genext = _pipeline(program, suite, pattern)
        for exponent in (0, 3, 12):
            inputs = [suite.unknown(INT), exponent]
            left = genext.specialize(inputs).program
            right = specializer.specialize(inputs).program
            assert left == right
            assert Interpreter(left).run(2) \
                == run_program(program, 2, exponent)

    def test_sign_triggers_staged(self):
        program = WORKLOADS["sign_pipeline"].program()
        suite = FacetSuite([SignFacet()])
        abstract_suite = AbstractSuite(suite)
        pattern = [
            abstract_suite.input(INT, bt=BT.DYNAMIC, sign="pos"),
            abstract_suite.input(INT, bt=BT.DYNAMIC, sign="pos")]
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)
        analysis = analyze(program, pattern, abstract_suite)
        genext = make_generating_extension(analysis, suite, config)
        specializer = OfflineSpecializer(analysis, suite, config)
        inputs = [suite.input(INT, sign="pos"),
                  suite.input(INT, sign="pos")]
        assert genext.specialize(inputs).program \
            == specializer.specialize(inputs).program

    def test_stats_match(self):
        program = WORKLOADS["inner_product"].program()
        suite = FacetSuite([VectorSizeFacet()])
        abstract_suite = AbstractSuite(suite)
        pattern = [abstract_suite.input(VECTOR, bt=BT.DYNAMIC,
                                        size=STATIC_SIZE)] * 2
        specializer, genext = _pipeline(program, suite, pattern)
        inputs = [suite.input(VECTOR, size=4)] * 2
        staged = genext.specialize(inputs).stats
        unstaged = specializer.specialize(inputs).stats
        assert staged.facet_evaluations == unstaged.facet_evaluations
        assert staged.prim_folds == unstaged.prim_folds
        assert staged.if_reductions == unstaged.if_reductions


class TestReuse:
    def test_one_compilation_many_specializations(self):
        program = WORKLOADS["poly_eval"].program()
        suite = FacetSuite([VectorSizeFacet()])
        abstract_suite = AbstractSuite(suite)
        pattern = [abstract_suite.input(VECTOR, bt=BT.DYNAMIC,
                                        size=STATIC_SIZE),
                   abstract_suite.dynamic("float")]
        analysis = analyze(program, pattern, abstract_suite)
        genext = make_generating_extension(analysis, suite)
        for degree in (1, 2, 5):
            inputs = [suite.input(VECTOR, size=degree),
                      suite.unknown("float")]
            result = genext.specialize(inputs)
            coefficients = Vector.of([1.0] * degree)
            assert Interpreter(result.program).run(coefficients, 2.0) \
                == run_program(program, coefficients, 2.0)

    def test_runs_are_independent(self):
        program = parse_program("(define (f x n) (+ x n))")
        suite = FacetSuite()
        abstract_suite = AbstractSuite(suite)
        analysis = analyze(program, [abstract_suite.dynamic(INT),
                                     abstract_suite.static(INT)],
                           abstract_suite)
        genext = make_generating_extension(analysis, suite)
        first = genext.specialize([suite.unknown(INT), 1])
        second = genext.specialize([suite.unknown(INT), 2])
        assert "(+ x 1)" in str(first.program)
        assert "(+ x 2)" in str(second.program)


class TestStrictness:
    def test_pattern_violation_raises(self):
        program = parse_program(
            "(define (f x n) (if (= n 0) x (* x n)))")
        suite = FacetSuite()
        abstract_suite = AbstractSuite(suite)
        analysis = analyze(program, [abstract_suite.dynamic(INT),
                                     abstract_suite.static(INT)],
                           abstract_suite)
        genext = make_generating_extension(analysis, suite)
        with pytest.raises(PEError, match="Static"):
            # n was analyzed Static but is supplied dynamic.
            genext.specialize([suite.unknown(INT),
                               suite.unknown(INT)])

    def test_lenient_mode_residualizes(self):
        program = parse_program(
            "(define (f x n) (if (= n 0) x (* x n)))")
        suite = FacetSuite()
        abstract_suite = AbstractSuite(suite)
        analysis = analyze(program, [abstract_suite.dynamic(INT),
                                     abstract_suite.static(INT)],
                           abstract_suite)
        genext = make_generating_extension(
            analysis, suite, PEConfig(lenient=True))
        result = genext.specialize([suite.unknown(INT),
                                    suite.unknown(INT)])
        for x, n in [(3, 0), (3, 4)]:
            assert Interpreter(result.program).run(x, n) \
                == run_program(program, x, n)
