"""Polyvariant analysis extension tests."""

import pytest

from repro.facets import FacetSuite, SignFacet, VectorSizeFacet
from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.lang.parser import parse_program
from repro.lang.values import INT, VECTOR
from repro.lattice.bt import BT
from repro.offline.analysis import analyze
from repro.offline.polyvariant import analyze_polyvariant

MIXED_SRC = """
(define (main s d) (+ (helper s) (helper d)))
(define (helper v) (+ v 1))
"""


@pytest.fixture
def suite():
    return AbstractSuite(FacetSuite([SignFacet()]))


class TestPrecisionGain:
    def test_monovariant_join_poisons_static_site(self, suite):
        program = parse_program(MIXED_SRC)
        base = analyze(program, [suite.static(INT),
                                 suite.dynamic(INT)], suite)
        assert base.signatures["helper"].result.bt is BT.DYNAMIC

    def test_polyvariant_keeps_both_patterns(self, suite):
        program = parse_program(MIXED_SRC)
        result = analyze_polyvariant(
            program, [suite.static(INT), suite.dynamic(INT)], suite)
        assert result.variant_count("helper") >= 2
        assert result.best_result_bt("helper") is BT.STATIC
        bts = {tuple(a.bt for a in v.args): v.result.bt
               for v in result.variants["helper"]}
        assert bts.get((BT.STATIC,)) is BT.STATIC
        assert bts.get((BT.DYNAMIC,)) is BT.DYNAMIC

    def test_facet_patterns_distinguished(self, suite):
        src = """
        (define (main a b) (+ (test a) (test b)))
        (define (test v) (if (< v 0) 1 2))
        """
        program = parse_program(src)
        result = analyze_polyvariant(
            program,
            [suite.input(INT, bt=BT.DYNAMIC, sign="pos"),
             suite.input(INT, bt=BT.DYNAMIC, sign="neg")],
            suite)
        # Both call patterns are dynamic in BT, but the sign components
        # differ; each variant answers Static (the test folds per
        # sign), while the monovariant join can't decide.
        assert result.best_result_bt("test") is BT.STATIC
        assert result.variant_count("test") >= 2
        mono = result.signatures["test"].result.bt
        assert mono is BT.DYNAMIC

    def test_single_pattern_equals_monovariant(self, suite):
        program = parse_program("""
            (define (main s) (helper s))
            (define (helper v) (+ v 1))
        """)
        result = analyze_polyvariant(program, [suite.static(INT)],
                                     suite)
        assert result.variant_count("helper") == 1
        variant = result.variants["helper"][0]
        assert variant.result.bt \
            is result.signatures["helper"].result.bt


class TestBookkeeping:
    def test_base_result_embedded(self, suite):
        program = parse_program(MIXED_SRC)
        result = analyze_polyvariant(
            program, [suite.static(INT), suite.dynamic(INT)], suite)
        assert result.base.signatures.keys() == {"main", "helper"}
        assert "main" in result.variants

    def test_report_renders(self, suite):
        program = parse_program(MIXED_SRC)
        result = analyze_polyvariant(
            program, [suite.static(INT), suite.dynamic(INT)], suite)
        text = result.report()
        assert "monovariant:" in text
        assert "variant:" in text

    def test_recursive_function_variants(self):
        suite = AbstractSuite(FacetSuite([VectorSizeFacet()]))
        from repro.workloads import WORKLOADS
        program = WORKLOADS["inner_product"].program()
        result = analyze_polyvariant(
            program,
            [suite.input(VECTOR, bt=BT.DYNAMIC, size=STATIC_SIZE)] * 2,
            suite)
        assert result.variant_count("dotprod") >= 1
