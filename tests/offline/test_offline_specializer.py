"""Offline specializer unit tests (Section 5)."""

import pytest

from repro.facets import (
    FacetSuite, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.lang.errors import PEError
from repro.lang.interp import Interpreter, run_program
from repro.lang.parser import parse_program
from repro.lang.values import INT, VECTOR, Vector
from repro.lattice.bt import BT
from repro.offline.analysis import analyze
from repro.offline.specializer import (
    OfflineSpecializer, specialize_offline)
from repro.online import PEConfig, UnfoldStrategy, specialize_online
from repro.workloads import WORKLOADS


class TestAgainstOnline:
    """Offline follows the analysis; online searches.  Same residuals."""

    def test_inner_product_residuals_identical(self, inner_product,
                                               size_suite):
        inputs = [size_suite.input(VECTOR, size=3)] * 2
        online = specialize_online(inner_product, inputs, size_suite)
        offline = specialize_offline(inner_product, inputs, size_suite)
        assert offline.program == online.program

    def test_sign_specialization_identical(self):
        program = WORKLOADS["sign_pipeline"].program()
        suite = FacetSuite([SignFacet()])
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)
        inputs = [suite.input(INT, sign="pos"),
                  suite.input(INT, sign="pos")]
        online = specialize_online(program, inputs, suite, config)
        offline = specialize_offline(program, inputs, suite,
                                     config=config)
        for x, scale in [(5, 2), (9, 4)]:
            assert Interpreter(online.program).run(x, scale) \
                == Interpreter(offline.program).run(x, scale)

    def test_offline_does_less_facet_work(self, inner_product,
                                          size_suite):
        inputs = [size_suite.input(VECTOR, size=5)] * 2
        online = specialize_online(inner_product, inputs, size_suite)
        offline = specialize_offline(inner_product, inputs, size_suite)
        assert offline.stats.facet_evaluations \
            < online.stats.facet_evaluations

    def test_offline_makes_fewer_decisions(self, inner_product,
                                           size_suite):
        inputs = [size_suite.input(VECTOR, size=5)] * 2
        online = specialize_online(inner_product, inputs, size_suite)
        offline = specialize_offline(inner_product, inputs, size_suite)
        assert offline.stats.decisions < online.stats.decisions


class TestAnalysisReuse:
    """The offline selling point: one analysis, many specializations."""

    def test_one_analysis_many_sizes(self, inner_product, size_suite):
        abstract_suite = AbstractSuite(size_suite)
        pattern = [abstract_suite.input(VECTOR, bt=BT.DYNAMIC,
                                        size=STATIC_SIZE)] * 2
        analysis = analyze(inner_product, pattern, abstract_suite)
        for size in (1, 2, 4, 8):
            inputs = [size_suite.input(VECTOR, size=size)] * 2
            result = OfflineSpecializer(
                analysis, size_suite).specialize(inputs)
            a = Vector.of([1.0] * size)
            b = Vector.of([2.0] * size)
            assert Interpreter(result.program).run(a, b) \
                == run_program(inner_product, a, b)

    def test_residual_correctness_power(self):
        program = WORKLOADS["power"].program()
        suite = FacetSuite()
        for exponent in (0, 1, 5, 8):
            result = specialize_offline(
                program, [suite.unknown(INT), exponent], suite)
            assert Interpreter(result.program).run(3) \
                == run_program(program, 3, exponent)


class TestPatternDiscipline:
    def test_mismatched_inputs_rejected(self, inner_product,
                                        size_suite):
        abstract_suite = AbstractSuite(size_suite)
        pattern = [abstract_suite.input(VECTOR, bt=BT.DYNAMIC,
                                        size=STATIC_SIZE)] * 2
        analysis = analyze(inner_product, pattern, abstract_suite)
        bad_inputs = [size_suite.unknown(VECTOR)] * 2  # size unknown
        with pytest.raises(PEError, match="pattern"):
            OfflineSpecializer(analysis, size_suite).specialize(
                bad_inputs)

    def test_more_precise_inputs_accepted(self, size_suite):
        # A concrete vector is below <Dynamic, s>: fine.
        program = WORKLOADS["inner_product"].program()
        abstract_suite = AbstractSuite(size_suite)
        pattern = [abstract_suite.input(VECTOR, bt=BT.DYNAMIC,
                                        size=STATIC_SIZE)] * 2
        analysis = analyze(program, pattern, abstract_suite)
        v = Vector.of([1.0, 2.0])
        result = OfflineSpecializer(analysis, size_suite).specialize(
            [v, size_suite.input(VECTOR, size=2)])
        assert Interpreter(result.program).run(Vector.of([3.0, 4.0])) \
            == run_program(program, v, Vector.of([3.0, 4.0]))


class TestNeededFacetTracking:
    def test_unneeded_components_not_computed(self):
        # parity is registered but never useful here: offline must not
        # pay for it.
        program = parse_program("""
            (define (main V) (walk V (vsize V)))
            (define (walk V n)
              (if (= n 0) 0.0 (+ (vref V n) (walk V (- n 1)))))
        """)
        suite = FacetSuite([ParityFacet(), VectorSizeFacet()])
        inputs = [suite.input(VECTOR, size=3)]
        offline = specialize_offline(program, inputs, suite)
        online = specialize_online(program, inputs, suite)
        assert offline.program == online.program
        assert offline.analysis.needed_facets["walk"] == frozenset()
        assert offline.stats.facet_evaluations \
            < online.stats.facet_evaluations


class TestCacheBehaviour:
    def test_dynamic_recursion_specializes_once(self):
        suite = FacetSuite()
        program = parse_program(
            "(define (loop x) (if (< x 0) 0 (loop (- x 1))))")
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)
        result = specialize_offline(program, [suite.unknown(INT)],
                                    suite, config=config)
        assert result.stats.specializations == 1
        assert Interpreter(result.program).run(2) == 0

    def test_growing_static_data_fails_loudly(self):
        # Classic offline PE diverges on static data growing under
        # dynamic control; we stop with advice instead.
        suite = FacetSuite()
        program = parse_program("""
            (define (main x) (grow 0 x))
            (define (grow k d) (if (< d 0) k (grow (+ k 1) d)))
        """)
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER,
                          max_variants=4)
        with pytest.raises(PEError, match="generalized division"):
            specialize_offline(program, [suite.unknown(INT)], suite,
                               config=config)

    def test_growing_static_data_lenient_terminates(self):
        suite = FacetSuite()
        program = parse_program("""
            (define (main x) (grow 0 x))
            (define (grow k d) (if (< d 0) k (grow (+ k 1) d)))
        """)
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER,
                          max_variants=4, lenient=True)
        result = specialize_offline(program, [suite.unknown(INT)],
                                    suite, config=config)
        assert result.stats.generalizations > 0
        assert Interpreter(result.program).run(-5) == 0
