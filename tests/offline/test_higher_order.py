"""Higher-order facet analysis (Figures 5-6) unit tests."""

import pytest

from repro.facets import FacetSuite, SignFacet, VectorSizeFacet
from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.lang.parser import parse_program
from repro.lang.values import BOOL, INT, VECTOR
from repro.lattice.bt import BT
from repro.offline.higher_order import (
    TC, AbsClosure, HOConfig, JoinFn, analyze_higher_order)
from repro.workloads import WORKLOADS


@pytest.fixture
def suite():
    return AbstractSuite(FacetSuite([SignFacet(), VectorSizeFacet()]))


def ho(src, inputs, suite, config=None):
    return analyze_higher_order(parse_program(src), inputs, suite,
                                config)


class TestFirstOrderFragment:
    """On first-order programs the HO analysis must agree with the
    first-order one on binding times."""

    def test_static_result(self, suite):
        result = ho("(define (f x) (+ x 1))", [suite.static(INT)],
                    suite)
        assert result.bt_of_result() is BT.STATIC

    def test_dynamic_result(self, suite):
        result = ho("(define (f x) (+ x 1))", [suite.dynamic(INT)],
                    suite)
        assert result.bt_of_result() is BT.DYNAMIC

    def test_recursion(self, suite):
        src = "(define (f n) (if (= n 0) 0 (f (- n 1))))"
        result = ho(src, [suite.static(INT)], suite)
        assert result.bt_of_result() is BT.STATIC

    def test_facet_information_used(self, suite):
        src = "(define (f x) (if (< x 0) 1 2))"
        result = ho(src, [suite.input(INT, bt=BT.DYNAMIC,
                                      sign="pos")], suite)
        # pos < 0 folds: result Static even though x is dynamic.
        assert result.bt_of_result() is BT.STATIC


class TestClosures:
    def test_lambda_value_is_closure(self, suite):
        src = "(define (f x) (lambda (y) (+ y x)))"
        result = ho(src, [suite.static(INT)], suite)
        assert isinstance(result.result, AbsClosure)

    def test_application_of_lambda(self, suite):
        src = "(define (f x) ((lambda (y) (+ y 1)) x))"
        result = ho(src, [suite.static(INT)], suite)
        assert result.bt_of_result() is BT.STATIC

    def test_closure_captures_abstract_env(self, suite):
        src = """
        (define (main s d)
          (let ((add-s (lambda (y) (+ y s))))
            (add-s d)))
        """
        result = ho(src, [suite.static(INT), suite.dynamic(INT)],
                    suite)
        assert result.bt_of_result() is BT.DYNAMIC

    def test_function_passed_to_function(self, suite):
        src = """
        (define (main x) (twice (lambda (v) (* v v)) x))
        (define (twice f a) (f (f a)))
        """
        result = ho(src, [suite.static(INT)], suite)
        assert result.bt_of_result() is BT.STATIC
        assert "twice" in result.signatures

    def test_function_returned_from_function(self, suite):
        src = """
        (define (main x) ((make-adder 3) x))
        (define (make-adder k) (lambda (y) (+ y k)))
        """
        result = ho(src, [suite.dynamic(INT)], suite)
        assert result.bt_of_result() is BT.DYNAMIC
        adder_args, adder_result = result.signatures["make-adder"]
        assert isinstance(adder_result, AbsClosure)


class TestTC:
    """The unknown operator and Figure 6's advance application."""

    def test_dynamic_test_selecting_functions_gives_tc(self, suite):
        program = WORKLOADS["ho_select"].program()
        result = analyze_higher_order(
            program, [suite.dynamic(INT),
                      suite.input(BOOL, bt=BT.DYNAMIC)], suite)
        # h is T_C; applying it gives T_C; result is T_C/dynamic.
        assert result.bt_of_result() is BT.DYNAMIC

    def test_static_test_keeps_functions(self, suite):
        program = WORKLOADS["ho_select"].program()
        result = analyze_higher_order(
            program, [suite.static(INT),
                      suite.input(BOOL, bt=BT.STATIC)], suite)
        assert result.bt_of_result() is BT.STATIC

    def test_tc_application_is_tc(self, suite):
        src = """
        (define (main flag x)
          (let ((h (if flag
                       (lambda (a) (lambda (b) a))
                       (lambda (a) (lambda (b) b)))))
            ((h x) x)))
        """
        result = ho(src, [suite.input(BOOL, bt=BT.DYNAMIC),
                          suite.static(INT)], suite)
        assert result.result is TC or result.bt_of_result() \
            is BT.DYNAMIC

    def test_branch_join_of_same_arity_lambdas(self, suite):
        src = """
        (define (main flag x)
          (let ((h (if flag
                       (lambda (a) (+ a 1))
                       (lambda (a) (* a 2)))))
            (h x)))
        """
        result = ho(src, [suite.input(BOOL, bt=BT.STATIC),
                          suite.static(INT)], suite)
        # Static flag: join of two closures, both applied; Static out.
        assert result.bt_of_result() is BT.STATIC


class TestPipeline:
    def test_ho_pipeline_signatures(self, suite):
        program = WORKLOADS["ho_pipeline"].program()
        result = analyze_higher_order(
            program,
            [suite.input(VECTOR, bt=BT.DYNAMIC, size=STATIC_SIZE),
             suite.static(INT)],
            suite)
        assert result.bt_of_result() is BT.DYNAMIC
        assert "fold" in result.signatures
        fold_args, fold_result = result.signatures["fold"]
        assert isinstance(fold_args[0], (AbsClosure, JoinFn))
        # n = vsize of a static-size vector: Static.
        assert fold_args[3].bt is BT.STATIC


class TestTermination:
    def test_apply_depth_bound(self, suite):
        # Unbounded closure towers are cut off at the depth bound with
        # T_C rather than looping (Hudak-Young restriction).
        src = """
        (define (main n x) (spin n x))
        (define (spin n x)
          (if (= n 0) x ((lambda (v) (spin (- n 1) v)) x)))
        """
        config = HOConfig(max_apply_depth=8)
        result = ho(src, [suite.dynamic(INT), suite.dynamic(INT)],
                    suite, config)
        assert result.bt_of_result() is BT.DYNAMIC

    def test_cells_per_closure_bound(self, suite):
        src = """
        (define (main a b c)
          (+ (app (lambda (v) v) a)
             (+ (app (lambda (v) v) b) (app (lambda (v) v) c))))
        (define (app f x) (f x))
        """
        config = HOConfig(max_cells_per_closure=1)
        result = ho(src, [suite.static(INT), suite.static(INT),
                          suite.dynamic(INT)], suite, config)
        # Generalization may coarsen but must not crash or loop.
        assert result.bt_of_result() in (BT.STATIC, BT.DYNAMIC)
