"""Facet analysis (Figure 4) unit tests."""

import pytest

from repro.baselines.bta import bta
from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.facets.library.interval import Interval
from repro.lang.ast import Call, If, Prim, walk
from repro.lang.errors import PEError
from repro.lang.parser import parse_program
from repro.lang.values import INT, VECTOR
from repro.lattice.bt import BT
from repro.offline.analysis import (
    FOLD, FacetAnalyzer, IfAnnotation, PrimAnnotation, RESIDUAL,
    TRIGGER, analyze)
from repro.workloads import WORKLOADS


@pytest.fixture
def size_abs():
    return AbstractSuite(FacetSuite([VectorSizeFacet()]))


@pytest.fixture
def sign_abs():
    return AbstractSuite(FacetSuite([SignFacet()]))


class TestInnerProduct:
    """Figure 9, as assertions."""

    @pytest.fixture
    def analysis(self, inner_product, size_abs):
        inputs = [size_abs.input(VECTOR, bt=BT.DYNAMIC, size=STATIC_SIZE)] * 2
        return analyze(inner_product, inputs, size_abs)

    def test_signatures(self, analysis):
        iprod = analysis.signatures["iprod"]
        assert iprod.args[0].bt is BT.DYNAMIC
        assert iprod.args[0].user == (STATIC_SIZE,)
        assert iprod.result.bt is BT.DYNAMIC
        dotprod = analysis.signatures["dotprod"]
        assert dotprod.args[2].bt is BT.STATIC   # n is Static!
        assert dotprod.result.bt is BT.DYNAMIC

    def test_vsize_triggers_via_size_facet(self, analysis,
                                           inner_product):
        body = inner_product.get("iprod").body
        vsize = next(n for n in walk(body)
                     if isinstance(n, Prim) and n.op == "vsize")
        annotation = analysis.annotation_of(vsize)
        assert isinstance(annotation, PrimAnnotation)
        assert annotation.action == TRIGGER
        assert annotation.producer == "size"

    def test_dotprod_test_is_reducible(self, analysis, inner_product):
        body = inner_product.get("dotprod").body
        conditional = next(n for n in walk(body) if isinstance(n, If))
        annotation = analysis.annotation_of(conditional)
        assert isinstance(annotation, IfAnnotation)
        assert annotation.test_bt.is_static

    def test_vref_residual(self, analysis, inner_product):
        body = inner_product.get("dotprod").body
        vref = next(n for n in walk(body)
                    if isinstance(n, Prim) and n.op == "vref")
        annotation = analysis.annotation_of(vref)
        assert annotation.action == RESIDUAL

    def test_decrement_folds(self, analysis, inner_product):
        body = inner_product.get("dotprod").body
        decrement = next(n for n in walk(body)
                         if isinstance(n, Prim) and n.op == "-")
        assert analysis.annotation_of(decrement).action == FOLD

    def test_needed_facets_match_paper_narrative(self, analysis):
        # "size facet computation is only required for iprod ...
        #  binding time analysis is the only facet computation
        #  performed for dotProd."
        assert analysis.needed_facets["iprod"] == {"size"}
        assert analysis.needed_facets["dotprod"] == frozenset()


class TestSignAnalysis:
    def test_sign_information_propagates(self, sign_abs):
        program = parse_program(
            "(define (f x) (if (< x 0) (neg x) x))")
        inputs = [sign_abs.input(INT, bt=BT.DYNAMIC, sign="pos")]
        analysis = analyze(program, inputs, sign_abs)
        conditional = program.main.body
        annotation = analysis.annotation_of(conditional)
        assert annotation.test_bt.is_static  # pos < 0 decided

    def test_sign_flows_through_closed_ops(self, sign_abs):
        program = parse_program(
            "(define (f x) (if (> (* x x) 0) 1 2))")
        # x pos: x*x pos, pos > 0 is Static.
        inputs = [sign_abs.input(INT, bt=BT.DYNAMIC, sign="pos")]
        analysis = analyze(program, inputs, sign_abs)
        assert analysis.annotation_of(
            program.main.body).test_bt.is_static

    def test_without_facet_info_everything_dynamic(self, sign_abs):
        program = parse_program(
            "(define (f x) (if (< x 0) (neg x) x))")
        inputs = [sign_abs.dynamic(INT)]
        analysis = analyze(program, inputs, sign_abs)
        assert analysis.annotation_of(
            program.main.body).test_bt.is_dynamic


class TestFixpointBehaviour:
    def test_recursive_static_parameter(self, size_abs):
        program = WORKLOADS["poly_eval"].program()
        inputs = [size_abs.input(VECTOR, bt=BT.DYNAMIC,
                                 size=STATIC_SIZE),
                  size_abs.dynamic("float")]
        analysis = analyze(program, inputs, size_abs)
        horner = analysis.signatures["horner"]
        assert horner.args[2].bt is BT.STATIC  # n stays static
        assert horner.args[3].bt is BT.DYNAMIC  # acc is dynamic

    def test_static_and_dynamic_call_sites_join(self):
        suite = AbstractSuite(FacetSuite())
        program = parse_program("""
            (define (main s d) (+ (helper s) (helper d)))
            (define (helper v) (+ v 1))
        """)
        analysis = analyze(program,
                           [suite.static(INT), suite.dynamic(INT)],
                           suite)
        assert analysis.signatures["helper"].args[0].bt is BT.DYNAMIC

    def test_purely_static_function(self):
        suite = AbstractSuite(FacetSuite())
        program = WORKLOADS["gcd"].program()
        analysis = analyze(program,
                           [suite.static(INT), suite.static(INT)],
                           suite)
        assert analysis.signatures["gcd"].result.bt is BT.STATIC

    def test_interval_domain_converges_with_widening(self):
        suite = AbstractSuite(FacetSuite([IntervalFacet()]))
        # k grows without bound: only widening terminates this.
        program = parse_program("""
            (define (main d) (grow 0 d))
            (define (grow k d) (if (< d 0) k (grow (+ k 1) d)))
        """)
        analysis = analyze(program, [suite.dynamic(INT)], suite)
        assert "grow" in analysis.signatures

    def test_agreement_with_bta_when_no_facets(self):
        """Facet analysis with the empty suite IS conventional BTA."""
        program = WORKLOADS["power"].program()
        suite = AbstractSuite(FacetSuite())
        analysis = analyze(program,
                           [suite.dynamic(INT), suite.static(INT)],
                           suite)
        baseline = bta(program, "DS")
        for name, division in baseline.divisions.items():
            signature = analysis.signatures[name]
            assert tuple(a.bt for a in signature.args) \
                == division.args, name
            assert signature.result.bt == division.result, name


class TestValidation:
    def test_arity_checked(self, sign_abs):
        program = parse_program("(define (f x) x)")
        with pytest.raises(PEError, match="expected 1"):
            analyze(program, [], sign_abs)

    def test_higher_order_programs_rejected(self, sign_abs):
        program = WORKLOADS["ho_pipeline"].program()
        with pytest.raises(PEError, match="higher_order"):
            FacetAnalyzer(program, sign_abs)

    def test_concrete_values_accepted_as_inputs(self, sign_abs):
        program = parse_program("(define (f x) (+ x 1))")
        analysis = analyze(program, [5], sign_abs)
        assert analysis.signatures["f"].result.bt is BT.STATIC
        assert analysis.signatures["f"].args[0].user[0] == "pos"
