"""Figure 9 report rendering tests."""

import pytest

from repro.facets import FacetSuite, VectorSizeFacet
from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.lang.values import VECTOR
from repro.lattice.bt import BT
from repro.offline.analysis import analyze
from repro.offline.report import (
    analysis_rows, facet_table, signature_lines)


@pytest.fixture
def analysis(inner_product):
    suite = AbstractSuite(FacetSuite([VectorSizeFacet()]))
    inputs = [suite.input(VECTOR, bt=BT.DYNAMIC, size=STATIC_SIZE)] * 2
    return analyze(inner_product, inputs, suite)


class TestRows:
    def test_params_reported(self, analysis):
        rows = analysis_rows(analysis)
        params = [r for r in rows if r.kind == "param"]
        assert {(r.function, r.code) for r in params} >= {
            ("iprod", "A"), ("iprod", "B"), ("dotprod", "n")}

    def test_figure9_key_values(self, analysis):
        rows = {(r.function, r.code): r for r in analysis_rows(analysis)}
        # A = <Dyn, s>
        assert rows[("iprod", "A")].value == "<Dyn, s>"
        # Vecf(A) = <Stat> (trigger via size)
        vsize_row = rows[("iprod", "(vsize A)")]
        assert vsize_row.value.startswith("<Stat")
        assert "size" in vsize_row.detail
        # n = <Stat>
        assert rows[("dotprod", "n")].value.startswith("<Stat")
        # vref(A, n) = <Dyn>
        assert rows[("dotprod", "(vref A n)")].value == "<Dyn>"

    def test_if_test_row(self, analysis):
        rows = analysis_rows(analysis)
        tests = [r for r in rows if r.kind == "if-test"]
        assert len(tests) == 1
        assert tests[0].detail == "reducible"

    def test_long_code_truncated(self, analysis):
        rows = analysis_rows(analysis, max_code_width=10)
        assert all(len(r.code) <= 10 for r in rows)


class TestTable:
    def test_signature_lines(self, analysis):
        lines = signature_lines(analysis)
        assert any(line.startswith("iprod :") for line in lines)
        assert any("<Stat>" in line for line in lines)

    def test_full_table(self, analysis):
        table = facet_table(analysis, title="Figure 9")
        assert "Figure 9" in table
        assert "iprod" in table and "dotprod" in table
        assert "facet computation needed: size" in table
        assert "binding times only" in table
