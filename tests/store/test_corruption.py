"""Crash/corruption harness for the persistent artifact store.

The contract under test: **no flavour of on-disk damage ever surfaces
as an exception or as wrong data.**  A corrupted entry reads as a miss,
is quarantined, and is counted in ``ServiceStats.store_corrupt``; a
database file SQLite itself rejects is quarantined wholesale and the
store restarts empty.  The property tests simulate the two classic
failure modes — a write killed partway (truncation at a random byte)
and media damage (a random bit flip) — against real stored payloads.
"""

from __future__ import annotations

import json
import sqlite3
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import ServiceStats
from repro.store import ArtifactStore

from tests.conftest import scaled_examples

#: Payloads shaped like the documents the service stores: a residual
#: plus assorted bookkeeping.
payloads = st.fixed_dictionaries({
    "residual": st.text(min_size=1, max_size=200),
    "goal_params": st.lists(st.text(
        alphabet="abcxyz", min_size=1, max_size=4), max_size=4),
    "seconds": st.floats(allow_nan=False, allow_infinity=False,
                         width=32),
    "attempts": st.integers(min_value=0, max_value=9),
})

entries_strategy = st.dictionaries(
    keys=st.text(alphabet="0123456789abcdef", min_size=8, max_size=8),
    values=payloads, min_size=1, max_size=6)


def populate(path: Path, entries: dict) -> None:
    with ArtifactStore(path) as store:
        for key, payload in entries.items():
            assert store.put(key, payload)
    # Closing the last connection checkpoints the WAL into the main
    # file, so corrupting the main file hits the committed data.


def assert_damage_is_absorbed(path: Path, entries: dict) \
        -> ServiceStats:
    """The harness's core assertion: reopening a (possibly damaged)
    store and reading every key never raises, never returns wrong
    data (the key-bound checksum makes cross-row swaps detectable),
    accounts every lookup as a hit or a miss, survives a full
    ``verify`` scan, and stays writable afterwards.

    Deliberately *not* asserted here: that every lost key implies a
    ``store_corrupt`` count.  SQLite has no page checksums, so damage
    below the row level (say, a bit flip in a b-tree cell count, or a
    truncation to zero bytes that reads as a fresh database) can make
    rows vanish without anything detectable remaining — those read as
    plain misses.  Whenever the damage *is* detectable (checksum
    mismatch, undecodable page, unreadable file) the deterministic
    suites below pin that it is counted and quarantined, never
    raised."""
    stats = ServiceStats()
    with ArtifactStore(path, stats=stats) as store:
        for key, original in entries.items():
            got = store.get(key)    # must never raise
            assert got is None or got == original, \
                f"corruption produced wrong data for {key!r}"
        assert stats.store_hits + stats.store_misses == len(entries)
        # A full verify scan over the damaged file must not raise
        # either, and must report in the documented shape.
        outcome = store.verify()
        assert set(outcome) == {"checked", "corrupt"}
        assert outcome["corrupt"] >= 0
        # The store must stay usable after absorbing the damage.
        assert store.put("post-damage", {"ok": True})
        assert store.get("post-damage") == {"ok": True}
    return stats


class TestKillAtRandomByte:
    @given(entries=entries_strategy,
           cut=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=scaled_examples(60), deadline=None)
    def test_truncation_reads_as_misses_never_raises(self, entries,
                                                     cut):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "store.db"
            populate(path, entries)
            size = path.stat().st_size
            with open(path, "r+b") as handle:
                handle.truncate(int(size * cut))
            assert_damage_is_absorbed(path, entries)


class TestBitFlip:
    @given(entries=entries_strategy,
           position=st.floats(min_value=0.0, max_value=1.0),
           bit=st.integers(min_value=0, max_value=7))
    @settings(max_examples=scaled_examples(60), deadline=None)
    def test_bit_flip_reads_as_misses_never_raises(self, entries,
                                                   position, bit):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "store.db"
            populate(path, entries)
            size = path.stat().st_size
            offset = min(int(size * position), size - 1)
            with open(path, "r+b") as handle:
                handle.seek(offset)
                byte = handle.read(1)[0]
                handle.seek(offset)
                handle.write(bytes([byte ^ (1 << bit)]))
            assert_damage_is_absorbed(path, entries)


class TestRowLevelCorruption:
    """Deterministic cases where the damage is *inside* a row, so the
    checksum — not SQLite — is the detector."""

    def _tamper(self, path: Path, sql: str) -> None:
        conn = sqlite3.connect(path)
        conn.execute(sql)
        conn.commit()
        conn.close()

    def test_flipped_payload_is_quarantined_and_counted(self,
                                                        tmp_path):
        path = tmp_path / "s.db"
        populate(path, {"k": {"residual": "(define (f) 1)"}})
        self._tamper(path,
                     "UPDATE artifacts SET payload = 'X' || payload")
        stats = ServiceStats()
        with ArtifactStore(path, stats=stats) as store:
            assert store.get("k") is None
            assert stats.store_corrupt == 1
            assert stats.store_misses == 1
            assert store.quarantined() == 1
            # Quarantined rows never come back.
            assert store.get("k") is None

    def test_tampered_checksum_is_detected(self, tmp_path):
        path = tmp_path / "s.db"
        populate(path, {"k": {"residual": "(define (f) 1)"}})
        self._tamper(path,
                     "UPDATE artifacts SET checksum = 'deadbeef'")
        stats = ServiceStats()
        with ArtifactStore(path, stats=stats) as store:
            assert store.get("k") is None
            assert stats.store_corrupt == 1

    def test_consistent_checksum_over_garbage_fails_decode(
            self, tmp_path):
        """An adversarial row whose checksum matches non-JSON payload
        text still reads as a counted miss (the decode step is the
        second line of defence)."""
        from repro.store import row_checksum
        path = tmp_path / "s.db"
        populate(path, {"k": {"residual": "(define (f) 1)"}})
        garbage = "not json {"
        conn = sqlite3.connect(path)
        conn.execute("UPDATE artifacts SET payload = ?, checksum = ?",
                     (garbage, row_checksum("k", garbage)))
        conn.commit()
        conn.close()
        stats = ServiceStats()
        with ArtifactStore(path, stats=stats) as store:
            assert store.get("k") is None
            assert stats.store_corrupt == 1

    def test_corrupt_rows_do_not_poison_good_ones(self, tmp_path):
        path = tmp_path / "s.db"
        entries = {f"k{i}": {"residual": f"(define (f) {i})"}
                   for i in range(4)}
        populate(path, entries)
        self._tamper(path, "UPDATE artifacts SET checksum = 'bad' "
                           "WHERE key IN ('k1', 'k3')")
        stats = ServiceStats()
        with ArtifactStore(path, stats=stats) as store:
            assert store.get("k0") == entries["k0"]
            assert store.get("k2") == entries["k2"]
            assert store.get("k1") is None
            assert store.get("k3") is None
            assert stats.store_corrupt == 2
            assert stats.store_hits == 2
            assert stats.store_misses == 2


class TestFileLevelCorruption:
    def test_empty_file_restarts_clean(self, tmp_path):
        path = tmp_path / "s.db"
        populate(path, {"k": {"residual": "r"}})
        path.write_bytes(b"")
        with ArtifactStore(path) as store:
            # SQLite treats a zero-byte file as a fresh database: the
            # data is gone but nothing raises and writes work.
            assert store.get("k") is None
            assert store.put("k2", {"ok": 1})

    def test_overwritten_header_quarantines_the_file(self, tmp_path):
        path = tmp_path / "s.db"
        populate(path, {"k": {"residual": "r"}})
        with open(path, "r+b") as handle:
            handle.write(b"this is not a sqlite database at all")
        stats = ServiceStats()
        with ArtifactStore(path, stats=stats) as store:
            assert stats.store_corrupt == 1
            assert store.get("k") is None
            assert store.put("k", {"residual": "r"})
        # The damaged file was preserved for inspection.
        sidecars = list(tmp_path.glob("s.db.corrupt-*"))
        assert len(sidecars) == 1

    def test_quarantine_sidecars_do_not_collide(self, tmp_path):
        path = tmp_path / "s.db"
        for _ in range(2):
            populate(path, {"k": {"residual": "r"}})
            with open(path, "r+b") as handle:
                handle.write(b"garbage garbage garbage garbage!")
            with ArtifactStore(path) as store:
                assert store.get("k") is None
        assert len(list(tmp_path.glob("s.db.corrupt-*"))) == 2


def test_service_payloads_round_trip_through_json(tmp_path):
    """The store's JSON canonicalization keeps service documents
    byte-stable: encode → store → read → encode is a fixed point."""
    from repro.store import encode_payload
    document = {"residual": "(define (f n) (* n 2))",
                "goal_params": ["n"], "engine": "online",
                "stats": {"facet_evaluations": 12}}
    with ArtifactStore(tmp_path / "s.db") as store:
        store.put("k", document)
        got = store.get("k")
    assert json.loads(encode_payload(got)) == document
    assert encode_payload(got) == encode_payload(document)
