"""Eviction under the byte cap, and the ``ppe store`` CLI
(stats / gc / verify) with pinned exit codes."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.cli import main
from repro.store import ArtifactStore, encode_payload


def sized_payload(tag: str, size: int) -> dict:
    """A payload whose canonical encoding is exactly ``size`` bytes."""
    skeleton = encode_payload({"tag": tag, "pad": ""})
    pad = size - len(skeleton.encode("utf-8"))
    assert pad >= 0, f"size {size} too small for the skeleton"
    return {"tag": tag, "pad": "x" * pad}


def test_sized_payload_is_exact():
    payload = sized_payload("a", 100)
    assert len(encode_payload(payload).encode("utf-8")) == 100


class TestEviction:
    def test_size_stays_under_cap(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db", max_bytes=350)
        for index in range(10):
            store.put(f"k{index}", sized_payload(f"k{index}", 100))
            assert store.total_bytes() <= 350
        assert len(store) == 3
        assert store.stats.store_evictions == 7

    def test_lru_order_respected(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db", max_bytes=350)
        for tag in ("a", "b", "c"):
            store.put(tag, sized_payload(tag, 100))
        store.get("a")              # refresh: b is now the LRU entry
        store.put("d", sized_payload("d", 100))
        assert "a" in store
        assert "b" not in store
        assert "c" in store
        assert "d" in store

    def test_touch_on_hit_protects_hot_entries(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db", max_bytes=250)
        store.put("hot", sized_payload("hot", 100))
        for index in range(6):
            store.get("hot")
            store.put(f"cold{index}",
                      sized_payload(f"cold{index}", 100))
        assert "hot" in store
        assert store.get("hot") == sized_payload("hot", 100)

    def test_one_write_can_evict_several(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db", max_bytes=400)
        for tag in ("a", "b", "c", "d"):
            store.put(tag, sized_payload(tag, 100))
        store.put("big", sized_payload("big", 350))
        assert store.total_bytes() <= 400
        assert "big" in store
        assert store.stats.store_evictions >= 3

    def test_eviction_survives_reopen(self, tmp_path):
        """LRU order is persistent state, not process memory."""
        path = tmp_path / "s.db"
        with ArtifactStore(path, max_bytes=350) as store:
            for tag in ("a", "b", "c"):
                store.put(tag, sized_payload(tag, 100))
            store.get("a")
        with ArtifactStore(path, max_bytes=350) as reopened:
            reopened.put("d", sized_payload("d", 100))
            assert "b" not in reopened
            assert "a" in reopened

    def test_uncapped_store_never_evicts(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db")
        for index in range(20):
            store.put(f"k{index}", sized_payload(f"k{index}", 100))
        assert len(store) == 20
        assert store.stats.store_evictions == 0

    def test_gc_enforces_a_new_cap(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db")
        for index in range(5):
            store.put(f"k{index}", sized_payload(f"k{index}", 100))
        outcome = store.gc(max_bytes=250)
        assert outcome["evicted"] == 3
        assert outcome["bytes_after"] <= 250
        assert outcome["freed_bytes"] == 300
        assert store.total_bytes() <= 250

    def test_gc_without_cap_reports_only(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db")
        store.put("k", sized_payload("k", 100))
        outcome = store.gc()
        assert outcome["evicted"] == 0
        assert outcome["entries"] == 1


class TestStoreCLI:
    def _seed(self, path, entries=3):
        with ArtifactStore(path) as store:
            for index in range(entries):
                store.put(f"k{index}",
                          sized_payload(f"k{index}", 100))

    def test_stats_exits_zero_and_prints_json(self, tmp_path, capsys):
        path = tmp_path / "s.db"
        self._seed(path)
        code = main(["store", "stats", "--store-path", str(path)])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["entries"] == 3
        assert snapshot["bytes"] == 300
        assert snapshot["quarantined"] == 0

    def test_gc_exits_zero_and_enforces_cap(self, tmp_path, capsys):
        path = tmp_path / "s.db"
        self._seed(path, entries=5)
        code = main(["store", "gc", "--store-path", str(path),
                     "--store-max-bytes", "250"])
        assert code == 0
        outcome = json.loads(capsys.readouterr().out)
        assert outcome["evicted"] == 3
        assert outcome["bytes_after"] <= 250
        with ArtifactStore(path) as store:
            assert store.total_bytes() <= 250

    def test_verify_clean_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "s.db"
        self._seed(path)
        code = main(["store", "verify", "--store-path", str(path)])
        assert code == 0
        outcome = json.loads(capsys.readouterr().out)
        assert outcome == {"checked": 3, "corrupt": 0}

    def test_verify_corrupt_exits_one_then_zero(self, tmp_path,
                                                capsys):
        """First verify finds and quarantines the bad row (exit 1);
        the second finds a clean store again (exit 0)."""
        path = tmp_path / "s.db"
        self._seed(path)
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE artifacts SET checksum='bad' WHERE key='k1'")
        conn.commit()
        conn.close()
        assert main(["store", "verify",
                     "--store-path", str(path)]) == 1
        outcome = json.loads(capsys.readouterr().out)
        assert outcome["corrupt"] == 1
        assert main(["store", "verify",
                     "--store-path", str(path)]) == 0
        outcome = json.loads(capsys.readouterr().out)
        assert outcome == {"checked": 2, "corrupt": 0}

    def test_verify_unreadable_file_exits_one(self, tmp_path, capsys):
        """File-level damage (quarantined at open) also fails the
        health check."""
        path = tmp_path / "s.db"
        self._seed(path)
        with open(path, "r+b") as handle:
            handle.write(b"not a sqlite file, not even close!!")
        assert main(["store", "verify",
                     "--store-path", str(path)]) == 1
        outcome = json.loads(capsys.readouterr().out)
        assert outcome["corrupt"] == 1

    def test_batch_cli_store_warm_restart(self, tmp_path, capsys):
        """The CLI surface end to end: two ``ppe batch`` runs sharing
        ``--store-path`` produce identical results, the second from
        the store."""
        from repro.workloads import WORKLOADS
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps({"requests": [
            {"id": "g", "source": WORKLOADS["gcd"].source,
             "specs": ["48", "18"]}]}))
        store_path = tmp_path / "store.db"
        profile = tmp_path / "profile.json"

        assert main(["batch", str(manifest), "--workers", "0",
                     "--store-path", str(store_path)]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(["batch", str(manifest), "--workers", "0",
                     "--store-path", str(store_path),
                     "--profile", str(profile)]) == 0
        warm = json.loads(capsys.readouterr().out)

        assert [r["residual"] for r in warm] \
            == [r["residual"] for r in cold]
        assert warm[0]["cached"] is True
        report = json.loads(profile.read_text())
        assert report["service"]["store"]["hits"] == 1
        assert report["service"]["store"]["corrupt"] == 0

    def test_missing_store_path_flag_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["store", "stats"])
