"""Multi-process hammering of one store file.

WAL mode plus ``BEGIN IMMEDIATE`` transactions and a generous busy
timeout are what stand between N concurrent services and a
``database is locked`` exception; these tests drive a reader/writer
mix from several real processes against a single database and assert

* no exception of any kind escapes a store operation,
* no lost updates: every key ends up with exactly the deterministic
  payload its writers wrote (writers of the same key write the same
  bytes, so any interleaving must converge),
* the final table is byte-identical (keys, payload text, checksums)
  to a single-process run of the same operations,
* no corruption events were recorded — contention is not corruption.
"""

from __future__ import annotations

import multiprocessing
import sqlite3
from concurrent.futures import ProcessPoolExecutor

from repro.store import ArtifactStore

WORKERS = 4
OPS_PER_WORKER = 40
KEYS = [f"key-{i:02d}" for i in range(8)]


def deterministic_payload(key: str) -> dict:
    """Same key → same payload, in every process."""
    return {"residual": f"(define (f) {key!r})",
            "goal_params": [key], "weight": len(key) * 7}


def hammer(args: tuple[str, int]) -> dict:
    """One worker process: interleaved puts and gets over the shared
    key space.  Returns its observations for the parent to assert on
    (asserting in the child would just surface as a pickled
    exception)."""
    path, worker_id = args
    wrong: list[str] = []
    raised: list[str] = []
    store = ArtifactStore(path, busy_timeout=60.0)
    for step in range(OPS_PER_WORKER):
        key = KEYS[(worker_id + step) % len(KEYS)]
        try:
            if step % 3 == 2:
                got = store.get(key)
                if got is not None \
                        and got != deterministic_payload(key):
                    wrong.append(key)
            else:
                store.put(key, deterministic_payload(key))
        except Exception as error:  # noqa: BLE001 — the contract
            raised.append(f"{type(error).__name__}: {error}")
    snapshot = {"wrong": wrong, "raised": raised,
                "errors": store.stats.store_errors,
                "corrupt": store.stats.store_corrupt}
    store.close()
    return snapshot


def table_image(path) -> dict[str, tuple[str, str]]:
    """Key → (payload text, checksum): the byte-level content that
    must match a single-process run."""
    conn = sqlite3.connect(path)
    rows = conn.execute(
        "SELECT key, payload, checksum FROM artifacts").fetchall()
    conn.close()
    return {key: (payload, checksum)
            for key, payload, checksum in rows}


def test_n_processes_one_store(tmp_path):
    path = tmp_path / "shared.db"
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=WORKERS,
                             mp_context=context) as pool:
        outcomes = list(pool.map(
            hammer, [(str(path), worker) for worker in range(WORKERS)]))

    for outcome in outcomes:
        assert outcome["raised"] == [], \
            f"store operation raised under contention: " \
            f"{outcome['raised']}"
        assert outcome["wrong"] == [], \
            f"lost/duplicated update observed: {outcome['wrong']}"
        assert outcome["corrupt"] == 0, \
            "contention was misdiagnosed as corruption"
        assert outcome["errors"] == 0, \
            "lock contention escaped the busy timeout"

    # Single-process reference: the same operations, serially.
    reference_path = tmp_path / "reference.db"
    for worker in range(WORKERS):
        hammer((str(reference_path), worker))

    parallel = table_image(path)
    serial = table_image(reference_path)
    assert parallel == serial, \
        "parallel run's table diverges from the single-process run"
    # Every hammered key was written at least once by someone.
    assert set(parallel) == set(KEYS)


def test_reader_during_writer_transaction(tmp_path):
    """WAL's reason for existing: a reader sees the last committed
    state while another connection holds the write lock — no blocking
    and no torn read."""
    path = tmp_path / "s.db"
    writer = ArtifactStore(path)
    writer.put("k", deterministic_payload("k"))
    reader = ArtifactStore(path)

    # Open a write transaction on the writer's connection and leave it
    # uncommitted while the reader looks.
    conn = writer._connection()
    conn.execute("BEGIN IMMEDIATE")
    conn.execute("UPDATE artifacts SET payload = 'torn'")
    assert reader.get("k") == deterministic_payload("k")
    conn.execute("ROLLBACK")
    writer.close()
    reader.close()


def test_fork_reopens_the_connection(tmp_path):
    """A forked child must not reuse the parent's SQLite handle; the
    PID guard gives it a fresh one transparently."""
    path = tmp_path / "s.db"
    store = ArtifactStore(path)
    store.put("parent", deterministic_payload("parent"))

    context = multiprocessing.get_context("fork")

    def child(queue) -> None:
        try:
            got = store.get("parent")
            store.put("child", deterministic_payload("child"))
            queue.put(("ok", got))
        except Exception as error:  # noqa: BLE001
            queue.put(("raised", repr(error)))

    queue = context.Queue()
    process = context.Process(target=child, args=(queue,))
    process.start()
    status, value = queue.get(timeout=30)
    process.join(timeout=30)
    assert status == "ok"
    assert value == deterministic_payload("parent")
    # The child's write is visible to the parent.
    assert store.get("child") == deterministic_payload("child")
    store.close()
