"""Restart warm-start: a batch re-run against a warm store performs
zero specializations and reproduces the cold run byte for byte."""

from __future__ import annotations

import json

import pytest

from repro.service import SpecializationService, SpecRequest
from repro.workloads import WORKLOADS


def requests() -> list[SpecRequest]:
    return [
        SpecRequest.create(source=WORKLOADS["gcd"].source,
                           specs=["48", "18"], id="gcd"),
        SpecRequest.create(source=WORKLOADS["power"].source,
                           specs=["dyn", "5"], id="power"),
        SpecRequest.create(source=WORKLOADS["power"].source,
                           specs=["dyn", "7"], engine="offline",
                           id="power-off"),
        SpecRequest.create(source=WORKLOADS["inner_product"].source,
                           specs=["size=3", "dyn"], id="iprod"),
    ]


def forbid_specialization(monkeypatch):
    """After this, any attempt to actually run a specialization fails
    the test — the warm path must be pure store/cache hits."""
    def boom(payload):
        raise AssertionError(
            f"specialization executed on the warm path for "
            f"id={payload.get('id')!r}")
    monkeypatch.setattr("repro.service.scheduler.execute_request",
                        boom)


class TestWarmRestart:
    def test_zero_specializations_and_identical_residuals(
            self, tmp_path, monkeypatch):
        path = tmp_path / "store.db"
        batch = requests()
        with SpecializationService(workers=0,
                                   store_path=path) as cold_service:
            cold = cold_service.run_batch(batch)
            assert not any(result.degraded for result in cold)
            assert cold_service.stats.store_writes == len(batch)

        # "Kill" the service (close() above) and start a fresh one on
        # the same store file: the restart.
        forbid_specialization(monkeypatch)
        with SpecializationService(workers=0,
                                   store_path=path) as warm_service:
            warm = warm_service.run_batch(batch)
            stats = warm_service.stats

        assert [r.residual for r in warm] \
            == [r.residual for r in cold]
        assert [r.goal_params for r in warm] \
            == [r.goal_params for r in cold]
        assert all(result.cached for result in warm)
        assert stats.store_hits == len(batch)
        assert stats.degraded == 0
        assert stats.completed == len(batch)

    def test_warm_hits_promote_into_memory_tier(self, tmp_path,
                                                monkeypatch):
        path = tmp_path / "store.db"
        [request] = requests()[:1]
        with SpecializationService(workers=0, store_path=path) as s:
            s.run_one(request)
        forbid_specialization(monkeypatch)
        with SpecializationService(workers=0, store_path=path) as s:
            s.run_one(request)      # disk hit, promoted
            s.run_one(request)      # must now be a memory hit
            assert s.stats.store_hits == 1
            assert s.stats.cache_hits == 1

    def test_pooled_restart_is_warm_too(self, tmp_path):
        """The store is read in the scheduler process, so pool workers
        never even start on a warm manifest."""
        path = tmp_path / "store.db"
        batch = requests()
        with SpecializationService(workers=0, store_path=path) as s:
            cold = s.run_batch(batch)
        with SpecializationService(workers=2, store_path=path) as s:
            warm = s.run_batch(batch)
            assert s.stats.store_hits == len(batch)
            assert s._pool is None, \
                "a worker pool was spun up for an all-warm batch"
        assert [r.residual for r in warm] \
            == [r.residual for r in cold]

    def test_degraded_results_are_not_persisted(self, tmp_path):
        request = SpecRequest.create(source="(define (f x",  # no parse
                                     specs=["dyn"], id="bad")
        path = tmp_path / "store.db"
        with SpecializationService(workers=0, store_path=path) as s:
            result = s.run_one(request)
            assert result.degraded
            assert s.stats.store_writes == 0
        with SpecializationService(workers=0, store_path=path) as s:
            assert s.store is not None and len(s.store) == 0

    def test_engine_degraded_results_are_not_persisted(self, tmp_path):
        """In-engine budget degradations are timing-dependent; they
        stay out of the persistent tier exactly as they stay out of
        the LRU."""
        source = WORKLOADS["power"].source
        request = SpecRequest.create(
            source=source, specs=["dyn", "30"],
            config={"max_unfold_depth": 2}, id="tight")
        path = tmp_path / "store.db"
        with SpecializationService(workers=0, store_path=path) as s:
            result = s.run_one(request)
            assert not result.degraded
            if s.stats.engine_degradations:
                assert s.stats.store_writes == 0
            else:  # pragma: no cover — budget did not bite
                pytest.skip("budget did not trigger a degradation")

    def test_unreadable_store_payload_is_a_miss_not_a_crash(
            self, tmp_path):
        """A store payload the current build cannot rehydrate (schema
        drift, hand-edited row) falls back to specializing."""
        import sqlite3
        path = tmp_path / "store.db"
        [request] = requests()[:1]
        with SpecializationService(workers=0, store_path=path) as s:
            cold = s.run_one(request)
        # Replace the payload with valid-JSON-but-not-a-result and a
        # matching checksum: the store layer accepts it, the service
        # layer must reject it as corrupt.
        from repro.store import row_checksum
        key = request.fingerprint()
        text = json.dumps({"not": "a result"})
        conn = sqlite3.connect(path)
        conn.execute("UPDATE artifacts SET payload=?, checksum=?",
                     (text, row_checksum(key, text)))
        conn.commit()
        conn.close()
        with SpecializationService(workers=0, store_path=path) as s:
            warm = s.run_one(request)
            assert s.stats.store_corrupt == 1
            assert not warm.degraded
        assert warm.residual == cold.residual

    def test_compiled_artifacts_survive_the_restart(self, tmp_path):
        path = tmp_path / "store.db"
        [request] = requests()[:1]
        with SpecializationService(workers=0, store_path=path,
                                   backend="compiled") as s:
            cold = s.run_one(request)
            assert cold.compiled is not None
        with SpecializationService(workers=0, store_path=path,
                                   backend="compiled") as s:
            warm = s.run_one(request)
            assert warm.compiled == cold.compiled
            assert s.backend_stats.compiles == 0
            assert s.backend_stats.artifact_reuses == 1
