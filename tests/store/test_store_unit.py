"""Unit tests for :class:`repro.store.ArtifactStore`: round trips,
persistence across reopen, the byte cap, and the stats contract."""

from __future__ import annotations

import pytest

from repro.observability import ServiceStats
from repro.store import ArtifactStore, checksum_text, encode_payload


def payload(tag: str, pad: int = 0) -> dict:
    return {"residual": f"(define (f) {tag})", "tag": tag,
            "pad": "x" * pad}


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db")
        assert store.put("a", payload("a"))
        assert store.get("a") == payload("a")
        assert store.stats.store_hits == 1
        assert store.stats.store_writes == 1

    def test_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db")
        assert store.get("absent") is None
        assert store.stats.store_misses == 1
        assert store.stats.store_hits == 0

    def test_overwrite_replaces(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db")
        store.put("a", payload("old"))
        store.put("a", payload("new"))
        assert store.get("a") == payload("new")
        assert len(store) == 1

    def test_non_string_values_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db")
        rich = {"ints": [1, 2, 3], "nested": {"f": 0.5, "none": None},
                "flags": [True, False]}
        store.put("a", rich)
        assert store.get("a") == rich

    def test_delete(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db")
        store.put("a", payload("a"))
        assert store.delete("a") is True
        assert store.delete("a") is False
        assert store.get("a") is None

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "s.db"
        with ArtifactStore(path) as store:
            store.put("a", payload("a"))
        with ArtifactStore(path) as reopened:
            assert reopened.get("a") == payload("a")
            assert reopened.stats.store_corrupt == 0

    def test_shared_stats_instance(self, tmp_path):
        stats = ServiceStats()
        store = ArtifactStore(tmp_path / "s.db", stats=stats)
        store.put("a", payload("a"))
        store.get("a")
        assert stats.store_writes == 1
        assert stats.store_hits == 1


class TestByteCap:
    def test_oversized_payload_is_refused(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db", max_bytes=16)
        assert store.put("a", payload("a", pad=100)) is False
        assert len(store) == 0

    def test_negative_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path / "s.db", max_bytes=-1)

    def test_total_bytes_meters_payload_text(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db")
        store.put("a", payload("a"))
        expected = len(encode_payload(payload("a")).encode("utf-8"))
        assert store.total_bytes() == expected


class TestIntrospection:
    def test_snapshot_shape(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db", max_bytes=1024)
        store.put("a", payload("a"))
        snapshot = store.snapshot()
        assert set(snapshot) == {"path", "entries", "bytes",
                                 "max_bytes", "quarantined", "kinds"}
        assert snapshot["entries"] == 1
        assert snapshot["kinds"] == {"result": 1}
        assert snapshot["max_bytes"] == 1024
        assert snapshot["bytes"] > 0

    def test_keys_in_lru_order(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db")
        for tag in "abc":
            store.put(tag, payload(tag))
        store.get("a")          # refresh: a becomes most recent
        assert list(store.keys()) == ["b", "c", "a"]

    def test_contains(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db")
        store.put("a", payload("a"))
        assert "a" in store
        assert "b" not in store


def test_row_checksum_binds_the_key():
    """Two keys never share a checksum for the same payload — a
    cross-row payload swap is detectable corruption, not a valid
    read."""
    from repro.store import row_checksum
    text = encode_payload({"k": 1})
    assert row_checksum("a", text) != row_checksum("b", text)
    import hashlib
    assert checksum_text(text) \
        == hashlib.sha256(text.encode()).hexdigest()


def test_cross_row_payload_swap_is_detected(tmp_path):
    import sqlite3
    store = ArtifactStore(tmp_path / "s.db")
    store.put("a", payload("a"))
    store.put("b", payload("b"))
    store.close()
    conn = sqlite3.connect(tmp_path / "s.db")
    (text_a, sum_a), = conn.execute(
        "SELECT payload, checksum FROM artifacts WHERE key='a'")
    conn.execute("UPDATE artifacts SET payload=?, checksum=? "
                 "WHERE key='b'", (text_a, sum_a))
    conn.commit()
    conn.close()
    store = ArtifactStore(tmp_path / "s.db")
    assert store.get("b") is None       # not a's payload
    assert store.stats.store_corrupt == 1
