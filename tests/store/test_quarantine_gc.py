"""``ppe store gc --max-quarantine``: the quarantine table is bounded
evidence, not an append-only log.

Satellite regression: before this knob existed, gc never touched the
quarantine table — every corrupt row ever seen stayed on disk forever,
so a store under sustained corruption (or fault injection) grew
without bound even with a byte cap in force.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.store import ArtifactStore


def _quarantine_rows(path, count: int) -> None:
    """Store ``count`` entries, damage their payloads in place, then
    read them back so each is quarantined through the real read path."""
    with ArtifactStore(path) as store:
        keys = [f"key-{index:04d}" for index in range(count)]
        for key in keys:
            assert store.put(key, {"residual": f"(r {key})"})
        conn = store._connection()
        conn.execute("UPDATE artifacts SET payload = payload || 'X'")
        for key in keys:
            assert store.get(key) is None
        assert store.quarantined() == count


class TestPruneQuarantine:
    def test_prune_keeps_most_recent(self, tmp_path):
        path = tmp_path / "store.sqlite"
        _quarantine_rows(path, 5)
        with ArtifactStore(path) as store:
            pruned = store.prune_quarantine(2)
            assert pruned == 3
            assert store.quarantined() == 2
            rows = store._connection().execute(
                "SELECT key FROM quarantine ORDER BY key").fetchall()
        assert [key for (key,) in rows] == ["key-0003", "key-0004"], \
            "the oldest quarantined rows must go first"

    def test_prune_to_zero_and_idempotence(self, tmp_path):
        path = tmp_path / "store.sqlite"
        _quarantine_rows(path, 3)
        with ArtifactStore(path) as store:
            assert store.prune_quarantine(0) == 3
            assert store.quarantined() == 0
            assert store.prune_quarantine(0) == 0

    def test_prune_validates(self, tmp_path):
        with ArtifactStore(tmp_path / "store.sqlite") as store:
            with pytest.raises(ValueError):
                store.prune_quarantine(-1)

    def test_gc_takes_max_quarantine(self, tmp_path):
        path = tmp_path / "store.sqlite"
        _quarantine_rows(path, 4)
        with ArtifactStore(path) as store:
            outcome = store.gc(max_quarantine=1)
            assert outcome["quarantine_pruned"] == 3
            assert outcome["quarantined"] == 1
            # Without the knob the table is left alone.
            outcome = store.gc()
            assert outcome["quarantine_pruned"] == 0
            assert outcome["quarantined"] == 1

    def test_cli_store_gc_max_quarantine(self, tmp_path, capsys):
        path = tmp_path / "store.sqlite"
        _quarantine_rows(path, 3)
        code = main(["store", "gc", "--store-path", str(path),
                     "--max-quarantine", "1"])
        assert code == 0
        outcome = json.loads(capsys.readouterr().out)
        assert outcome["quarantine_pruned"] == 2
        assert outcome["quarantined"] == 1
        with ArtifactStore(path) as store:
            assert store.quarantined() == 1
