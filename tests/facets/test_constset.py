"""ConstSet facet unit tests (the user-defined-facet demonstration)."""

import pytest

from repro.algebra.safety import (
    check_facet_monotonicity, check_facet_safety)
from repro.facets import FacetSuite
from repro.facets.library.constset import ConstSetFacet, \
    ConstSetLattice
from repro.lang.primitives import get_primitive
from repro.lang.values import INT
from repro.lattice.pevalue import PEValue


@pytest.fixture
def facet():
    return ConstSetFacet(limit=4)


def closed(facet, op, *args):
    sig = get_primitive(op).resolve([INT] * len(args))
    return facet.apply_closed(op, sig, list(args))


def open_(facet, op, *args):
    sig = get_primitive(op).resolve([INT] * len(args))
    return facet.apply_open(op, sig, list(args))


class TestLattice:
    def test_inclusion_order(self):
        lattice = ConstSetLattice(4)
        assert lattice.leq(frozenset((1,)), frozenset((1, 2)))
        assert not lattice.leq(frozenset((1, 3)), frozenset((1, 2)))
        assert lattice.leq(frozenset((1, 2)), lattice.top)

    def test_join_caps_at_limit(self):
        lattice = ConstSetLattice(2)
        joined = lattice.join(frozenset((1, 2)), frozenset((3,)))
        assert joined == lattice.top

    def test_meet(self):
        lattice = ConstSetLattice(4)
        assert lattice.meet(frozenset((1, 2)), frozenset((2, 3))) \
            == frozenset((2,))
        assert lattice.meet(lattice.top, frozenset((5,))) \
            == frozenset((5,))

    def test_height(self):
        assert ConstSetLattice(3).height() == 4

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            ConstSetLattice(0)


class TestClosedOps:
    def test_elementwise_addition(self, facet):
        out = closed(facet, "+", frozenset((1, 2)), frozenset((10,)))
        assert out == frozenset((11, 12))

    def test_product_growth_caps(self, facet):
        out = closed(facet, "*", frozenset((1, 2, 3)),
                     frozenset((1, 5)))
        # 6 distinct products > limit 4: widen to top.
        assert out == facet.domain.top

    def test_erroring_combinations_skipped(self, facet):
        out = closed(facet, "div", frozenset((6,)), frozenset((0, 2)))
        # 6 div 0 errors (bottom concretization), 6 div 2 = 3.
        assert out == frozenset((3,))

    def test_all_erroring_is_top(self, facet):
        out = closed(facet, "div", frozenset((6,)), frozenset((0,)))
        assert out == facet.domain.top

    def test_top_argument(self, facet):
        out = closed(facet, "+", facet.domain.top, frozenset((1,)))
        assert out == facet.domain.top


class TestOpenOps:
    def test_comparison_folds_when_all_agree(self, facet):
        out = open_(facet, "<", frozenset((1, 2)), frozenset((7, 9)))
        assert out == PEValue.const(True)

    def test_comparison_mixed_is_top(self, facet):
        out = open_(facet, "<", frozenset((1, 8)), frozenset((5,)))
        assert out == PEValue.top()

    def test_equality_on_disjoint_sets(self, facet):
        out = open_(facet, "=", frozenset((1, 2)), frozenset((3, 4)))
        assert out == PEValue.const(False)

    def test_equality_same_singleton(self, facet):
        out = open_(facet, "=", frozenset((5,)), frozenset((5,)))
        assert out == PEValue.const(True)


class TestObligations:
    def test_safety(self, facet):
        assert check_facet_safety(facet) == []

    def test_monotonicity(self, facet):
        assert check_facet_monotonicity(facet) == []


class TestInSuite:
    def test_specialization_with_constset(self):
        from repro.lang.parser import parse_program
        from repro.online import specialize_online
        program = parse_program(
            "(define (f x) (if (< x 10) (+ x 1) 0))")
        suite = FacetSuite([ConstSetFacet()])
        inputs = [suite.input(INT, constset=frozenset((3, 5)))]
        result = specialize_online(program, inputs, suite)
        # x in {3, 5}: both < 10, so the test folds; x+1 in {4, 6}
        # stays residual (not a single constant).
        assert str(result.program).strip() == "(define (f x) (+ x 1))"

    def test_singleton_sets_decide_downstream_tests(self):
        # Figure 3 folds closed results only through the PE component,
        # so `(* x x)` itself stays residual — but the singleton set
        # {49} it carries decides the downstream open comparison.
        from repro.lang.parser import parse_program
        from repro.online import specialize_online
        program = parse_program(
            "(define (f x) (if (= (* x x) 49) 1 0))")
        suite = FacetSuite([ConstSetFacet()])
        inputs = [suite.input(INT, constset=frozenset((7,)))]
        result = specialize_online(program, inputs, suite)
        assert str(result.program).strip() == "(define (f x) 1)"