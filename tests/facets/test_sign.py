"""Sign facet unit tests — Example 1 of the paper."""

import pytest

from repro.algebra.safety import (
    check_facet_monotonicity, check_facet_safety)
from repro.facets.library.sign import NEG, POS, ZERO, SignFacet
from repro.lang.primitives import get_primitive
from repro.lang.values import FLOAT, INT
from repro.lattice.pevalue import PEValue


@pytest.fixture
def sign():
    return SignFacet()


def closed(facet, op, *args):
    sig = get_primitive(op).resolve([facet.carrier] * len(args))
    return facet.apply_closed(op, sig, list(args))


def open_(facet, op, *args):
    sig = get_primitive(op).resolve([facet.carrier] * len(args))
    return facet.apply_open(op, sig, list(args))


class TestAbstraction:
    def test_alpha(self, sign):
        assert sign.abstract(5) == POS
        assert sign.abstract(0) == ZERO
        assert sign.abstract(-3) == NEG

    def test_concretizes(self, sign):
        assert sign.concretizes(5, POS)
        assert sign.concretizes(5, sign.domain.top)
        assert not sign.concretizes(5, NEG)
        assert not sign.concretizes(5, sign.domain.bottom)

    def test_float_instance(self):
        facet = SignFacet(FLOAT)
        assert facet.carrier == FLOAT
        assert facet.abstract(-0.5) == NEG
        assert facet.name == "sign_float"

    def test_bad_carrier_rejected(self):
        with pytest.raises(ValueError):
            SignFacet("vector")


class TestAddition:
    """The paper's +^ definition, Example 1 item 4."""

    def test_zero_is_unit(self, sign):
        assert closed(sign, "+", ZERO, POS) == POS
        assert closed(sign, "+", NEG, ZERO) == NEG
        assert closed(sign, "+", ZERO, ZERO) == ZERO

    def test_same_signs_persist(self, sign):
        assert closed(sign, "+", POS, POS) == POS
        assert closed(sign, "+", NEG, NEG) == NEG

    def test_mixed_signs_lose(self, sign):
        assert closed(sign, "+", POS, NEG) == sign.domain.top

    def test_bottom_strict(self, sign):
        assert closed(sign, "+", sign.domain.bottom, POS) \
            == sign.domain.bottom

    def test_top_absorbs(self, sign):
        assert closed(sign, "+", sign.domain.top, POS) \
            == sign.domain.top


class TestOtherClosedOps:
    def test_multiplication_sign_rules(self, sign):
        assert closed(sign, "*", POS, POS) == POS
        assert closed(sign, "*", POS, NEG) == NEG
        assert closed(sign, "*", NEG, NEG) == POS

    def test_zero_annihilates_even_top(self, sign):
        assert closed(sign, "*", ZERO, sign.domain.top) == ZERO

    def test_negation(self, sign):
        assert closed(sign, "neg", POS) == NEG
        assert closed(sign, "neg", ZERO) == ZERO
        assert closed(sign, "neg", sign.domain.top) == sign.domain.top

    def test_abs(self, sign):
        assert closed(sign, "abs", NEG) == POS
        assert closed(sign, "abs", ZERO) == ZERO

    def test_subtraction(self, sign):
        assert closed(sign, "-", POS, NEG) == POS
        assert closed(sign, "-", ZERO, POS) == NEG
        assert closed(sign, "-", POS, POS) == sign.domain.top

    def test_max_min(self, sign):
        assert closed(sign, "max", POS, NEG) == POS
        assert closed(sign, "max", NEG, NEG) == NEG
        assert closed(sign, "min", NEG, POS) == NEG
        assert closed(sign, "min", POS, POS) == POS

    def test_int_division_is_coarse(self, sign):
        # 1 div 2 = 0: pos div pos is NOT pos.
        assert closed(sign, "div", POS, POS) == sign.domain.top
        assert closed(sign, "div", ZERO, POS) == ZERO

    def test_float_multiplication_is_coarse(self):
        # IEEE underflow: tiny*tiny = 0.0, so float sign rules for *
        # and / are unsound except on a zero operand.
        facet = SignFacet(FLOAT)
        assert closed(facet, "*", POS, POS) == facet.domain.top
        assert closed(facet, "*", ZERO, POS) == ZERO
        assert closed(facet, "/", POS, NEG) == facet.domain.top
        assert closed(facet, "/", ZERO, NEG) == ZERO


class TestOpenOps:
    """The paper's <^ (Example 1), extended to all comparisons."""

    def test_paper_cases(self, sign):
        assert open_(sign, "<", POS, NEG) == PEValue.const(False)
        assert open_(sign, "<", POS, ZERO) == PEValue.const(False)
        assert open_(sign, "<", ZERO, POS) == PEValue.const(True)
        assert open_(sign, "<", ZERO, ZERO) == PEValue.const(False)
        assert open_(sign, "<", ZERO, NEG) == PEValue.const(False)
        assert open_(sign, "<", NEG, POS) == PEValue.const(True)
        assert open_(sign, "<", NEG, ZERO) == PEValue.const(True)

    def test_undecidable_cases_are_top(self, sign):
        assert open_(sign, "<", POS, POS) == PEValue.top()
        assert open_(sign, "<", NEG, NEG) == PEValue.top()
        assert open_(sign, "<", sign.domain.top, POS) == PEValue.top()

    def test_equality(self, sign):
        assert open_(sign, "=", ZERO, ZERO) == PEValue.const(True)
        assert open_(sign, "=", POS, NEG) == PEValue.const(False)
        assert open_(sign, "=", POS, POS) == PEValue.top()

    def test_inequality(self, sign):
        assert open_(sign, "!=", POS, NEG) == PEValue.const(True)
        assert open_(sign, "!=", ZERO, ZERO) == PEValue.const(False)

    def test_le_ge(self, sign):
        assert open_(sign, "<=", ZERO, ZERO) == PEValue.const(True)
        assert open_(sign, "<=", NEG, POS) == PEValue.const(True)
        assert open_(sign, ">=", POS, ZERO) == PEValue.const(True)
        assert open_(sign, ">", POS, NEG) == PEValue.const(True)
        assert open_(sign, ">", POS, POS) == PEValue.top()

    def test_bottom_strict(self, sign):
        assert open_(sign, "<", sign.domain.bottom, POS) \
            == PEValue.bottom()


class TestObligations:
    def test_safety(self, sign):
        assert check_facet_safety(sign) == []

    def test_monotonicity(self, sign):
        assert check_facet_monotonicity(sign) == []

    def test_float_instance_obligations(self):
        facet = SignFacet(FLOAT)
        assert check_facet_safety(facet) == []
        assert check_facet_monotonicity(facet) == []
