"""Size facet unit tests — Section 6.1 of the paper, verbatim cases."""

import pytest

from repro.algebra.safety import (
    check_facet_monotonicity, check_facet_safety)
from repro.facets.library.vector_size import VectorSizeFacet
from repro.lang.primitives import get_primitive
from repro.lang.values import Vector
from repro.lattice.pevalue import PEValue


@pytest.fixture
def size():
    return VectorSizeFacet()


def sig(op):
    return get_primitive(op).sigs[0]


class TestAbstraction:
    def test_alpha_is_size(self, size):
        assert size.abstract(Vector.of([1.0, 2.0, 3.0])) == 3
        assert size.abstract(Vector.empty(0)) == 0

    def test_concretizes(self, size):
        v = Vector.of([1.0, 2.0])
        assert size.concretizes(v, 2)
        assert size.concretizes(v, size.domain.top)
        assert not size.concretizes(v, 3)


class TestClosedOps:
    def test_mkvec_with_constant_size(self, size):
        assert size.apply_closed("mkvec", sig("mkvec"),
                                 [PEValue.const(5)]) == 5

    def test_mkvec_with_dynamic_size(self, size):
        assert size.apply_closed("mkvec", sig("mkvec"),
                                 [PEValue.top()]) == size.domain.top

    def test_mkvec_bottom_strict(self, size):
        assert size.apply_closed("mkvec", sig("mkvec"),
                                 [PEValue.bottom()]) \
            == size.domain.bottom

    def test_updvec_preserves_size(self, size):
        out = size.apply_closed(
            "updvec", sig("updvec"),
            [3, PEValue.top(), PEValue.top()])
        assert out == 3

    def test_updvec_bottom_argument(self, size):
        out = size.apply_closed(
            "updvec", sig("updvec"),
            [3, PEValue.bottom(), PEValue.top()])
        assert out == size.domain.bottom


class TestOpenOps:
    def test_vsize_of_known_size_is_the_constant(self, size):
        # The operator that makes Section 6 work.
        assert size.apply_open("vsize", sig("vsize"), [3]) \
            == PEValue.const(3)

    def test_vsize_of_unknown_size(self, size):
        assert size.apply_open("vsize", sig("vsize"),
                               [size.domain.top]) == PEValue.top()

    def test_vref_never_folds(self, size):
        assert size.apply_open("vref", sig("vref"),
                               [3, PEValue.const(1)]) == PEValue.top()

    def test_vref_bottom_strict(self, size):
        assert size.apply_open("vref", sig("vref"),
                               [size.domain.bottom, PEValue.const(1)]) \
            == PEValue.bottom()


class TestObligations:
    def test_safety(self, size):
        assert check_facet_safety(size) == []

    def test_monotonicity(self, size):
        assert check_facet_monotonicity(size) == []
