"""Abstract facets: Definitions 8-10, Example 2, Section 6.2."""

import pytest

from repro.algebra.abstraction import bt_of_args, tau_offline
from repro.algebra.safety import check_abstract_facet_safety
from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.abstract import (
    AbstractSuite, BT_FACET, DYNAMIC_SIZE, STATIC_SIZE,
    AbstractVectorSizeFacet, IdentityAbstractFacet, derive_abstract)
from repro.facets.abstract.derive import sig_for
from repro.lang.primitives import get_primitive
from repro.lang.values import BOOL, INT, VECTOR, Vector
from repro.lattice.bt import BT
from repro.lattice.pevalue import PEValue


class TestBindingTimeFacet:
    """Definition 10."""

    def test_all_static_gives_static(self):
        sig = get_primitive("+").resolve([INT, INT])
        assert BT_FACET.apply("+", sig, [BT.STATIC, BT.STATIC]) \
            is BT.STATIC

    def test_any_dynamic_gives_dynamic(self):
        sig = get_primitive("+").resolve([INT, INT])
        assert BT_FACET.apply("+", sig, [BT.STATIC, BT.DYNAMIC]) \
            is BT.DYNAMIC

    def test_bottom_strict(self):
        sig = get_primitive("+").resolve([INT, INT])
        assert BT_FACET.apply("+", sig, [BT.BOT, BT.STATIC]) is BT.BOT

    def test_alpha_is_tau_offline(self):
        assert BT_FACET.abstract_of_pe(PEValue.const(3)) is BT.STATIC
        assert BT_FACET.abstract_of_pe(PEValue.top()) is BT.DYNAMIC
        assert BT_FACET.abstract_of_pe(PEValue.bottom()) is BT.BOT

    def test_bt_of_args_helper(self):
        assert bt_of_args([]) is BT.STATIC
        assert bt_of_args([BT.STATIC, BT.DYNAMIC]) is BT.DYNAMIC


class TestIdentityDerivation:
    """Example 2: the abstract Sign facet is tau~ . sign ops."""

    def test_sign_derives_identically(self):
        sign = SignFacet()
        abstract = derive_abstract(sign)
        assert isinstance(abstract, IdentityAbstractFacet)
        assert abstract.domain is sign.domain

    def test_example_2_open_operator(self):
        abstract = derive_abstract(SignFacet())
        sig = get_primitive("<").resolve([INT, INT])
        # pos < {neg, zero}: Static (paper's Example 2, first clause).
        assert abstract.apply_open("<", sig, ["pos", "neg"]) \
            is BT.STATIC
        assert abstract.apply_open("<", sig, ["pos", "zero"]) \
            is BT.STATIC
        assert abstract.apply_open("<", sig, ["zero", "pos"]) \
            is BT.STATIC
        # pos < pos: Dynamic.
        assert abstract.apply_open("<", sig, ["pos", "pos"]) \
            is BT.DYNAMIC

    def test_closed_operators_reused(self):
        sign = SignFacet()
        abstract = derive_abstract(sign)
        sig = get_primitive("+").resolve([INT, INT])
        assert abstract.apply_closed("+", sig, ["pos", "pos"]) == "pos"

    def test_gamma_composition(self):
        abstract = derive_abstract(SignFacet())
        assert abstract.abstract(5) == "pos"

    def test_foreign_position_ops_not_derived(self):
        # ``mkvec``/``updvec`` read Values-typed positions; the
        # identity derivation must skip them (a hand-written companion
        # exists instead).  ``vsize``'s argument IS the carrier, so it
        # derives fine.
        size = VectorSizeFacet()
        identity = IdentityAbstractFacet(size)
        assert "mkvec" not in identity.closed_ops
        assert "updvec" not in identity.closed_ops
        assert "vsize" in identity.open_ops

    def test_sig_for(self):
        assert sig_for("+", INT).carrier == INT
        assert sig_for("vsize", VECTOR).is_open
        assert sig_for("nonsense", INT) is None


class TestAbstractSizeFacet:
    """Section 6.2, verbatim."""

    @pytest.fixture
    def abstract(self):
        return derive_abstract(VectorSizeFacet())

    def test_hand_written_companion_selected(self, abstract):
        assert isinstance(abstract, AbstractVectorSizeFacet)

    def test_alpha(self, abstract):
        online = abstract.online
        assert abstract.abstract_of_facet(3) == STATIC_SIZE
        assert abstract.abstract_of_facet(online.domain.top) \
            == DYNAMIC_SIZE
        assert abstract.abstract_of_facet(online.domain.bottom) \
            == abstract.domain.bottom

    def test_mkvec(self, abstract):
        sig = get_primitive("mkvec").sigs[0]
        assert abstract.apply_closed("mkvec", sig, [BT.STATIC]) \
            == STATIC_SIZE
        assert abstract.apply_closed("mkvec", sig, [BT.DYNAMIC]) \
            == DYNAMIC_SIZE

    def test_updvec_preserves(self, abstract):
        sig = get_primitive("updvec").sigs[0]
        assert abstract.apply_closed(
            "updvec", sig, [STATIC_SIZE, BT.DYNAMIC, BT.DYNAMIC]) \
            == STATIC_SIZE

    def test_vsize_static_size_is_static(self, abstract):
        sig = get_primitive("vsize").sigs[0]
        assert abstract.apply_open("vsize", sig, [STATIC_SIZE]) \
            is BT.STATIC
        assert abstract.apply_open("vsize", sig, [DYNAMIC_SIZE]) \
            is BT.DYNAMIC

    def test_vref_always_dynamic(self, abstract):
        sig = get_primitive("vref").sigs[0]
        assert abstract.apply_open("vref", sig,
                                   [STATIC_SIZE, BT.STATIC]) \
            is BT.DYNAMIC


class TestAbstractSuite:
    """Definition 9 products and Figure 4's K~ rules."""

    @pytest.fixture
    def suite(self):
        return AbstractSuite(FacetSuite(
            [SignFacet(), ParityFacet(), VectorSizeFacet()]))

    def test_const_vector_is_static_with_gammas(self, suite):
        v = suite.const_vector(6)
        assert v.bt is BT.STATIC
        assert v.user == ("pos", "even")

    def test_input(self, suite):
        v = suite.input(VECTOR, bt=BT.DYNAMIC, size=STATIC_SIZE)
        assert v.bt is BT.DYNAMIC
        assert v.user == (STATIC_SIZE,)

    def test_abstract_of_online(self, suite):
        online = suite.online
        v = online.input(INT, sign="pos")
        abstract = suite.abstract_of_online(v)
        assert abstract.bt is BT.DYNAMIC
        assert abstract.user[0] == "pos"

    def test_abstract_of_online_const(self, suite):
        abstract = suite.abstract_of_online(
            suite.online.const_vector(4))
        assert abstract.bt is BT.STATIC
        assert abstract.user == ("pos", "even")

    def test_open_product_static_via_facet(self, suite):
        v = suite.input(VECTOR, bt=BT.DYNAMIC, size=STATIC_SIZE)
        out = suite.apply_prim("vsize", [v])
        assert out.static
        assert out.producer == "size"
        assert out.vector.bt is BT.STATIC

    def test_open_product_static_via_bt(self, suite):
        out = suite.apply_prim("<", [suite.static(INT),
                                     suite.static(INT)])
        assert out.static
        assert out.producer == "bt"

    def test_open_product_dynamic(self, suite):
        out = suite.apply_prim("vref",
                               [suite.input(VECTOR, bt=BT.DYNAMIC,
                                            size=STATIC_SIZE),
                                suite.static(INT)])
        assert not out.static
        assert out.vector.bt is BT.DYNAMIC

    def test_closed_product(self, suite):
        pos = suite.input(INT, bt=BT.DYNAMIC, sign="pos")
        out = suite.apply_prim("+", [pos, pos])
        assert out.vector.bt is BT.DYNAMIC
        assert out.vector.user[0] == "pos"

    def test_bottom_strict(self, suite):
        out = suite.apply_prim("+", [suite.bottom(INT),
                                     suite.static(INT)])
        assert suite.is_bottom(out.vector)

    def test_join_and_leq(self, suite):
        s = suite.static(INT)
        d = suite.dynamic(INT)
        assert suite.leq(s, d)
        assert suite.join(s, d).bt is BT.DYNAMIC

    def test_needs_widening_with_interval(self):
        plain = AbstractSuite(FacetSuite([SignFacet()]))
        assert not plain.needs_widening()
        with_interval = AbstractSuite(FacetSuite([IntervalFacet()]))
        assert with_interval.needs_widening()


class TestAbstractObligations:
    """Property 6 and Definition 8 safety for every shipped facet."""

    @pytest.mark.parametrize("facet_cls", [
        SignFacet, ParityFacet, IntervalFacet, VectorSizeFacet])
    def test_abstract_safety(self, facet_cls):
        abstract = derive_abstract(facet_cls())
        assert check_abstract_facet_safety(abstract) == []
