"""Parity facet unit tests."""

import pytest

from repro.algebra.safety import (
    check_facet_monotonicity, check_facet_safety)
from repro.facets.library.parity import EVEN, ODD, ParityFacet
from repro.lang.primitives import get_primitive
from repro.lang.values import INT
from repro.lattice.pevalue import PEValue


@pytest.fixture
def parity():
    return ParityFacet()


def closed(facet, op, *args):
    sig = get_primitive(op).resolve([INT] * len(args))
    return facet.apply_closed(op, sig, list(args))


def open_(facet, op, *args):
    sig = get_primitive(op).resolve([INT] * len(args))
    return facet.apply_open(op, sig, list(args))


class TestAbstraction:
    def test_alpha(self, parity):
        assert parity.abstract(4) == EVEN
        assert parity.abstract(7) == ODD
        assert parity.abstract(0) == EVEN
        assert parity.abstract(-3) == ODD


class TestClosedOps:
    def test_addition_table(self, parity):
        assert closed(parity, "+", EVEN, EVEN) == EVEN
        assert closed(parity, "+", ODD, ODD) == EVEN
        assert closed(parity, "+", EVEN, ODD) == ODD

    def test_subtraction_same_table(self, parity):
        assert closed(parity, "-", ODD, EVEN) == ODD
        assert closed(parity, "-", ODD, ODD) == EVEN

    def test_multiplication(self, parity):
        assert closed(parity, "*", EVEN, ODD) == EVEN
        assert closed(parity, "*", ODD, ODD) == ODD
        # even * anything is even, even unknown.
        assert closed(parity, "*", EVEN, parity.domain.top) == EVEN

    def test_neg_abs_preserve(self, parity):
        assert closed(parity, "neg", ODD) == ODD
        assert closed(parity, "abs", EVEN) == EVEN

    def test_mod_by_even(self, parity):
        assert closed(parity, "mod", ODD, EVEN) == ODD
        assert closed(parity, "mod", EVEN, EVEN) == EVEN
        assert closed(parity, "mod", ODD, ODD) == parity.domain.top

    def test_min_max_same_parity(self, parity):
        assert closed(parity, "min", ODD, ODD) == ODD
        assert closed(parity, "max", EVEN, ODD) == parity.domain.top


class TestOpenOps:
    def test_distinct_parity_not_equal(self, parity):
        assert open_(parity, "=", EVEN, ODD) == PEValue.const(False)
        assert open_(parity, "!=", ODD, EVEN) == PEValue.const(True)

    def test_same_parity_unknown(self, parity):
        assert open_(parity, "=", EVEN, EVEN) == PEValue.top()
        assert open_(parity, "!=", ODD, ODD) == PEValue.top()

    def test_top_unknown(self, parity):
        assert open_(parity, "=", parity.domain.top, ODD) \
            == PEValue.top()

    def test_comparisons_not_defined_default_top(self, parity):
        assert open_(parity, "<", EVEN, ODD) == PEValue.top()


class TestObligations:
    def test_safety(self, parity):
        assert check_facet_safety(parity) == []

    def test_monotonicity(self, parity):
        assert check_facet_monotonicity(parity) == []
