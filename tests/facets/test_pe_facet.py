"""Partial-evaluation facet unit tests — Definition 7."""

import pytest

from repro.facets.pe import PE_FACET
from repro.lang.primitives import get_primitive
from repro.lang.values import FLOAT, INT, Vector
from repro.lattice.pevalue import PEValue


def sig(op, sorts):
    return get_primitive(op).resolve(sorts)


class TestUniformOperator:
    def test_all_constants_fold(self):
        out = PE_FACET.apply("+", sig("+", [INT, INT]),
                             [PEValue.const(2), PEValue.const(3)])
        assert out == PEValue.const(5)

    def test_open_operator_folds_too(self):
        # Definition 7 covers open and closed operators uniformly.
        out = PE_FACET.apply("<", sig("<", [INT, INT]),
                             [PEValue.const(2), PEValue.const(3)])
        assert out == PEValue.const(True)

    def test_any_bottom_gives_bottom(self):
        out = PE_FACET.apply("+", sig("+", [INT, INT]),
                             [PEValue.bottom(), PEValue.const(3)])
        assert out == PEValue.bottom()

    def test_any_top_gives_top(self):
        out = PE_FACET.apply("+", sig("+", [INT, INT]),
                             [PEValue.top(), PEValue.const(3)])
        assert out == PEValue.top()

    def test_vector_ops(self):
        v = Vector.of([1.0, 2.0])
        out = PE_FACET.apply("vsize", get_primitive("vsize").sigs[0],
                             [PEValue.const(v)])
        assert out == PEValue.const(2)

    def test_runtime_error_residualizes(self):
        # Folding a division by zero would change observable
        # behaviour; the facet answers top instead (see module doc).
        out = PE_FACET.apply("div", sig("div", [INT, INT]),
                             [PEValue.const(1), PEValue.const(0)])
        assert out == PEValue.top()

    def test_sort_error_residualizes(self):
        out = PE_FACET.apply("+", sig("+", [INT, INT]),
                             [PEValue.const(1), PEValue.const(2.0)])
        assert out == PEValue.top()


class TestAbstraction:
    def test_alpha_is_tau(self):
        assert PE_FACET.abstract(7) == PEValue.const(7)
        assert PE_FACET.abstract(True) == PEValue.const(True)

    def test_describe(self):
        assert "Def. 7" in PE_FACET.describe()
