"""Products of facets: Definitions 5-6, Lemma 3, the ``K^`` rules."""

import pytest

from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.library.interval import Interval
from repro.lang.errors import ConsistencyError
from repro.lang.values import BOOL, FLOAT, INT, VECTOR, Vector
from repro.lattice.pevalue import PEValue


@pytest.fixture
def suite():
    return FacetSuite([SignFacet(), ParityFacet(), VectorSizeFacet()])


class TestConstruction:
    def test_const_vector_abstracts_into_all_facets(self, suite):
        v = suite.const_vector(5)
        assert v.sort == INT
        assert v.pe == PEValue.const(5)
        assert v.user == ("pos", "odd")

    def test_const_vector_other_algebra(self, suite):
        v = suite.const_vector(Vector.of([1.0, 2.0]))
        assert v.sort == VECTOR
        assert v.user == (2,)

    def test_unknown(self, suite):
        v = suite.unknown(INT)
        assert v.pe.is_top
        assert all(c == facet.domain.top for facet, c in
                   zip(suite.facets_for(INT), v.user))

    def test_unknown_sortless(self, suite):
        v = suite.unknown(None)
        assert v.user == ()

    def test_input_by_facet_name(self, suite):
        v = suite.input(INT, sign="pos")
        assert v.user[0] == "pos"
        assert v.user[1] == suite.facet_named("parity").domain.top

    def test_input_unknown_facet_rejected(self, suite):
        with pytest.raises(KeyError):
            suite.input(INT, flavor="spicy")

    def test_input_smashes_bottom(self, suite):
        sign = suite.facet_named("sign")
        v = suite.input(INT, sign=sign.domain.bottom)
        assert suite.is_bottom(v)

    def test_duplicate_facet_names_rejected(self):
        with pytest.raises(ValueError):
            FacetSuite([SignFacet(), SignFacet()])


class TestLatticeStructure:
    def test_join_same_sort(self, suite):
        a = suite.const_vector(1)
        b = suite.const_vector(3)
        j = suite.join(a, b)
        assert j.pe.is_top          # 1 != 3
        assert j.user == ("pos", "odd")  # both positive, both odd

    def test_join_across_sorts_loses_everything(self, suite):
        j = suite.join(suite.const_vector(1),
                       suite.const_vector(True))
        assert j.sort is None
        assert j.pe.is_top

    def test_join_with_bottom(self, suite):
        a = suite.const_vector(1)
        assert suite.join(suite.bottom(INT), a) == a

    def test_leq(self, suite):
        c = suite.const_vector(2)
        assert suite.leq(c, suite.unknown(INT))
        assert suite.leq(suite.bottom(INT), c)
        assert not suite.leq(suite.unknown(INT), c)

    def test_leq_across_sorts(self, suite):
        assert suite.leq(suite.const_vector(1), suite.unknown(None))
        assert not suite.leq(suite.const_vector(1),
                             suite.unknown(BOOL))

    def test_component_projection(self, suite):
        sign = suite.facet_named("sign")
        assert suite.component(suite.const_vector(-2), sign) == "neg"
        # Foreign sort projects to top.
        assert suite.component(suite.const_vector(True), sign) \
            == sign.domain.top


class TestClosedProducts:
    """Definition 5 clause (a) + Figure 3's K^_P for closed p."""

    def test_all_facets_run_in_lockstep(self, suite):
        pos_odd = suite.input(INT, sign="pos", parity="odd")
        out = suite.apply_prim("+", [pos_odd, pos_odd])
        assert out.vector.user == ("pos", "even")
        assert not out.folded

    def test_constant_folding_beats_facets(self, suite):
        out = suite.apply_prim("+", [suite.const_vector(2),
                                     suite.const_vector(3)])
        assert out.folded
        assert out.producer == "pe"
        # The constant is re-abstracted into every facet (K^).
        assert out.vector.user == ("pos", "odd")

    def test_facet_evaluation_count(self, suite):
        out = suite.apply_prim("+", [suite.unknown(INT),
                                     suite.unknown(INT)])
        # PE facet + sign + parity (size is another algebra).
        assert out.facet_evaluations == 3

    def test_bottom_propagates(self, suite):
        out = suite.apply_prim("+", [suite.bottom(INT),
                                     suite.const_vector(1)])
        assert suite.is_bottom(out.vector)

    def test_mkvec_closed_product(self, suite):
        out = suite.apply_prim("mkvec", [suite.const_vector(4)])
        # Result is a *vector* of statically known size but dynamic
        # content: not folded, size component = 4.
        assert out.folded is False or out.vector.pe.is_const
        # mkvec with a constant argument folds via PE facet (the empty
        # vector is itself a value).
        assert out.vector.sort == VECTOR


class TestOpenProducts:
    """Definition 5 clause (b), Lemma 3, Figure 3's K^_P for open p."""

    def test_any_facet_may_produce_the_constant(self, suite):
        zero = suite.input(INT, sign="zero")
        pos = suite.input(INT, sign="pos")
        out = suite.apply_prim("<", [zero, pos])
        assert out.folded
        assert out.producer == "sign"
        assert out.vector.pe == PEValue.const(True)

    def test_constant_reabstracted_into_all_facets(self, suite):
        out = suite.apply_prim("vsize",
                               [suite.input(VECTOR, size=6)])
        assert out.folded
        assert out.producer == "size"
        # 6 flows into the int facets: positive and even.
        assert out.vector.user == ("pos", "even")

    def test_no_facet_decides_gives_top(self, suite):
        out = suite.apply_prim("<", [suite.unknown(INT),
                                     suite.unknown(INT)])
        assert not out.folded
        assert out.vector.pe.is_top
        # Figure 3: residual open result carries all-top facets.
        assert all(c == facet.domain.top for facet, c in
                   zip(suite.facets_for(BOOL), out.vector.user))

    def test_disagreeing_facets_raise_consistency_error(self, suite):
        # sign says zero = zero is true; feed an inconsistent product
        # where parity claims the values differ.  Build it manually:
        # <pe=1, sign=zero, parity=odd> is consistent, but
        # <pe=const 1, sign=zero> is already contradictory; instead use
        # two facets that decide differently: zero=zero (sign: true)
        # with parities even/odd (parity: false).
        left = suite.input(INT, sign="zero", parity="even")
        right = suite.input(INT, sign="zero", parity="odd")
        with pytest.raises(ConsistencyError):
            suite.apply_prim("=", [left, right])

    def test_unresolvable_overload_residualizes(self, suite):
        out = suite.apply_prim("+", [suite.unknown(None),
                                     suite.unknown(None)])
        assert out.sig is None
        assert not out.folded


class TestConsistency:
    """Definition 6."""

    def test_consistent_product(self, suite):
        v = suite.input(INT, sign="pos", parity="odd")
        assert suite.is_consistent(v, range(-10, 11))

    def test_inconsistent_product(self, suite):
        sign = suite.facet_named("sign")
        # positive AND exactly zero: empty concretization.
        v = suite.input(INT, sign="pos")
        v = type(v)(v.sort, PEValue.const(0), v.user)
        assert not suite.is_consistent(v, range(-10, 11))

    def test_describes(self, suite):
        v = suite.input(INT, sign="pos", parity="even")
        assert suite.describes(v, 4)
        assert not suite.describes(v, 3)   # odd
        assert not suite.describes(v, -4)  # negative
        assert not suite.describes(v, 2.0)  # wrong sort

    def test_bottom_is_inconsistent(self, suite):
        assert not suite.is_consistent(suite.bottom(INT),
                                       range(-5, 5))


class TestWithInterval:
    def test_interval_joins_product(self):
        suite = FacetSuite([SignFacet(), IntervalFacet()])
        v = suite.const_vector(4)
        assert v.user == ("pos", Interval(4, 4))
        out = suite.apply_prim("+", [v, suite.input(
            INT, interval=Interval(0, 10))])
        assert out.vector.user[1] == Interval(4, 14)
