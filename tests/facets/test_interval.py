"""Interval facet unit tests (ranges + widening, footnote 1)."""

import pytest

from repro.algebra.safety import (
    check_facet_monotonicity, check_facet_safety)
from repro.facets.library.interval import (
    EMPTY, FULL, Interval, IntervalFacet, IntervalLattice)
from repro.lang.primitives import get_primitive
from repro.lang.values import INT
from repro.lattice.pevalue import PEValue


@pytest.fixture
def facet():
    return IntervalFacet()


@pytest.fixture
def lattice():
    return IntervalLattice()


def closed(facet, op, *args):
    sig = get_primitive(op).resolve([INT] * len(args))
    return facet.apply_closed(op, sig, list(args))


def open_(facet, op, *args):
    sig = get_primitive(op).resolve([INT] * len(args))
    return facet.apply_open(op, sig, list(args))


class TestLattice:
    def test_inclusion_order(self, lattice):
        assert lattice.leq(Interval(1, 2), Interval(0, 5))
        assert not lattice.leq(Interval(0, 5), Interval(1, 2))
        assert lattice.leq(EMPTY, Interval(0, 0))
        assert lattice.leq(Interval(0, 0), FULL)

    def test_unbounded_sides(self, lattice):
        assert lattice.leq(Interval(0, None), FULL)
        assert lattice.leq(Interval(3, None), Interval(0, None))
        assert not lattice.leq(Interval(None, 0), Interval(0, None))

    def test_join_is_hull(self, lattice):
        assert lattice.join(Interval(0, 1), Interval(5, 6)) \
            == Interval(0, 6)
        assert lattice.join(EMPTY, Interval(1, 2)) == Interval(1, 2)

    def test_meet_is_intersection(self, lattice):
        assert lattice.meet(Interval(0, 5), Interval(3, 9)) \
            == Interval(3, 5)
        assert lattice.meet(Interval(0, 1), Interval(5, 6)) == EMPTY

    def test_widening_blows_unstable_bounds(self, lattice):
        assert lattice.widen(Interval(0, 3), Interval(0, 5)) \
            == Interval(0, None)
        assert lattice.widen(Interval(0, 3), Interval(-1, 3)) \
            == Interval(None, 3)
        assert lattice.widen(Interval(0, 3), Interval(0, 3)) \
            == Interval(0, 3)

    def test_infinite_height_reported(self, lattice):
        with pytest.raises(NotImplementedError):
            lattice.height()

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 2)


class TestClosedOps:
    def test_addition(self, facet):
        assert closed(facet, "+", Interval(1, 2), Interval(10, 20)) \
            == Interval(11, 22)

    def test_addition_unbounded(self, facet):
        assert closed(facet, "+", Interval(1, None), Interval(0, 0)) \
            == Interval(1, None)

    def test_subtraction(self, facet):
        assert closed(facet, "-", Interval(5, 6), Interval(1, 2)) \
            == Interval(3, 5)

    def test_multiplication_corners(self, facet):
        assert closed(facet, "*", Interval(-2, 3), Interval(-1, 4)) \
            == Interval(-8, 12)

    def test_negation(self, facet):
        assert closed(facet, "neg", Interval(1, 5)) == Interval(-5, -1)
        assert closed(facet, "neg", Interval(0, None)) \
            == Interval(None, 0)

    def test_abs(self, facet):
        assert closed(facet, "abs", Interval(-3, 2)) == Interval(0, 3)
        assert closed(facet, "abs", Interval(2, 5)) == Interval(2, 5)
        assert closed(facet, "abs", Interval(-5, -2)) == Interval(2, 5)

    def test_min_max(self, facet):
        assert closed(facet, "min", Interval(0, 9), Interval(4, 5)) \
            == Interval(0, 5)
        assert closed(facet, "max", Interval(0, 9), Interval(4, 5)) \
            == Interval(4, 9)

    def test_mod_bound(self, facet):
        result = closed(facet, "mod", Interval(0, 100), Interval(1, 5))
        assert facet.domain.leq(result, Interval(0, 4))

    def test_mod_by_zero_only_is_bottom(self, facet):
        assert closed(facet, "mod", Interval(1, 2), Interval(0, 0)) \
            == EMPTY


class TestOpenOps:
    def test_disjoint_less_than(self, facet):
        assert open_(facet, "<", Interval(0, 3), Interval(5, 9)) \
            == PEValue.const(True)
        assert open_(facet, "<", Interval(5, 9), Interval(0, 3)) \
            == PEValue.const(False)

    def test_touching_boundaries(self, facet):
        assert open_(facet, "<", Interval(0, 3), Interval(3, 9)) \
            == PEValue.top()
        assert open_(facet, "<=", Interval(0, 3), Interval(3, 9)) \
            == PEValue.const(True)
        assert open_(facet, "<", Interval(3, 9), Interval(0, 3)) \
            == PEValue.const(False)

    def test_singleton_equality(self, facet):
        assert open_(facet, "=", Interval(4, 4), Interval(4, 4)) \
            == PEValue.const(True)
        assert open_(facet, "=", Interval(4, 4), Interval(5, 5)) \
            == PEValue.const(False)

    def test_disjoint_equality_false(self, facet):
        assert open_(facet, "=", Interval(0, 2), Interval(5, 9)) \
            == PEValue.const(False)

    def test_overlap_unknown(self, facet):
        assert open_(facet, "=", Interval(0, 5), Interval(3, 9)) \
            == PEValue.top()

    def test_ge_gt(self, facet):
        assert open_(facet, ">=", Interval(5, 9), Interval(0, 5)) \
            == PEValue.const(True)
        assert open_(facet, ">", Interval(6, 9), Interval(0, 5)) \
            == PEValue.const(True)


class TestObligations:
    def test_safety(self, facet):
        assert check_facet_safety(facet) == []

    def test_monotonicity(self, facet):
        assert check_facet_monotonicity(facet) == []

    def test_abstract_is_singleton(self, facet):
        assert facet.abstract(7) == Interval(7, 7)
