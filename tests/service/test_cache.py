"""Unit tests for the cross-request residual LRU and request
fingerprints."""

from __future__ import annotations

import pytest

from repro.observability import ServiceStats
from repro.service import ResidualCache, SpecRequest, SpecResult

SRC = "(define (f x) (+ x 1))"


def result(tag: str) -> SpecResult:
    return SpecResult(residual=f"; {tag}", goal_params=("x",))


class TestLRU:
    def test_miss_then_hit(self):
        cache = ResidualCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", result("a"))
        assert cache.get("a").residual == "; a"
        assert cache.stats.cache_misses == 1
        assert cache.stats.cache_hits == 1

    def test_eviction_is_least_recently_used(self):
        cache = ResidualCache(capacity=2)
        cache.put("a", result("a"))
        cache.put("b", result("b"))
        cache.get("a")             # refresh a: b is now the LRU entry
        cache.put("c", result("c"))
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.cache_evictions == 1

    def test_eviction_counter_accumulates(self):
        cache = ResidualCache(capacity=1)
        for tag in "abcd":
            cache.put(tag, result(tag))
        assert len(cache) == 1
        assert cache.stats.cache_evictions == 3

    def test_capacity_zero_disables(self):
        cache = ResidualCache(capacity=0)
        cache.put("a", result("a"))
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_capacity_zero_skips_stats_entirely(self):
        """A disabled cache short-circuits before the counters: no
        miss churn per lookup, so the raw-throughput benchmark
        configuration reports no cache traffic at all."""
        stats = ServiceStats()
        cache = ResidualCache(capacity=0, stats=stats)
        for index in range(50):
            assert cache.get(f"k{index}") is None
        cache.put("a", result("a"))
        assert cache.get("a") is None
        assert stats.cache_misses == 0
        assert stats.cache_hits == 0
        assert stats.cache_evictions == 0
        assert stats.cache_hit_rate == 0.0

    def test_degraded_results_are_never_cached(self):
        cache = ResidualCache(capacity=4)
        degraded = SpecResult(residual=SRC, degraded=True,
                              reason="deadline")
        cache.put("a", degraded)
        assert "a" not in cache

    def test_peek_does_not_count_or_refresh(self):
        stats = ServiceStats()
        cache = ResidualCache(capacity=2, stats=stats)
        cache.put("a", result("a"))
        cache.put("b", result("b"))
        cache.peek("a")            # no recency refresh: a stays LRU
        cache.put("c", result("c"))
        assert "a" not in cache
        assert stats.cache_hits == 0
        assert stats.cache_misses == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResidualCache(capacity=-1)


class TestFingerprint:
    def test_identical_requests_collide(self):
        a = SpecRequest.create(source=SRC, specs=["dyn"])
        b = SpecRequest.create(source=SRC, specs=["dyn"])
        assert a.fingerprint() == b.fingerprint()

    def test_id_deadline_and_fault_do_not_matter(self):
        plain = SpecRequest.create(source=SRC, specs=["dyn"])
        decorated = SpecRequest.create(
            source=SRC, specs=["dyn"], id="r7", deadline=1.5,
            fault={"kind": "hang", "seconds": 0.1})
        assert plain.fingerprint() == decorated.fingerprint()

    @pytest.mark.parametrize("other", [
        dict(source=SRC + " "),
        dict(specs=["3"]),
        dict(engine="simple"),
        dict(config={"unfold_fuel": 7}),
    ])
    def test_semantic_fields_matter(self, other):
        base = dict(source=SRC, specs=["dyn"], engine="online")
        changed = {**base, **other}
        assert SpecRequest.create(**base).fingerprint() \
            != SpecRequest.create(**changed).fingerprint()

    def test_config_order_is_canonical(self):
        a = SpecRequest.create(
            source=SRC, config={"unfold_fuel": 9, "max_variants": 3})
        b = SpecRequest.create(
            source=SRC, config={"max_variants": 3, "unfold_fuel": 9})
        assert a.fingerprint() == b.fingerprint()


class TestResultRoundTrip:
    """``SpecResult.to_dict`` → ``from_dict`` is the persistent
    store's wire format; it must be a fixed point."""

    def test_full_round_trip(self):
        original = SpecResult(
            residual="(define (f n) (* n 2))", goal_params=("n",),
            engine="offline", id="r1", attempts=2,
            stats={"facet_evaluations": 5}, seconds=0.125,
            compiled={"fingerprint": "abc", "python": "pass",
                      "goal": "f", "entries": {"f": ["_f", 1]}})
        rebuilt = SpecResult.from_dict(original.to_dict())
        assert rebuilt == original
        assert rebuilt.to_dict() == original.to_dict()

    def test_defaults_fill_missing_bookkeeping(self):
        rebuilt = SpecResult.from_dict({"residual": "(define (f) 1)"})
        assert rebuilt.residual == "(define (f) 1)"
        assert rebuilt.goal_params == ()
        assert rebuilt.attempts == 1
        assert rebuilt.compiled is None

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},
        {"residual": 7},
        {"residual": "r", "goal_params": "xy"},
        {"residual": "r", "compiled": "zip"},
        {"residual": "r", "stats": [1, 2]},
    ])
    def test_malformed_payloads_raise_value_error(self, payload):
        with pytest.raises(ValueError):
            SpecResult.from_dict(payload)


class TestRequestValidation:
    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SpecRequest.create(source=SRC, engine="quantum")

    def test_unknown_config_key(self):
        with pytest.raises(ValueError, match="unknown PEConfig"):
            SpecRequest.create(source=SRC, config={"warp": 9})

    def test_unfold_strategy_decodes_from_string(self):
        request = SpecRequest.create(
            source=SRC, config={"unfold_strategy": "never"})
        from repro.online.config import UnfoldStrategy
        assert request.pe_config().unfold_strategy \
            is UnfoldStrategy.NEVER

    def test_bad_unfold_strategy(self):
        with pytest.raises(ValueError, match="unfold_strategy"):
            SpecRequest.create(source=SRC,
                               config={"unfold_strategy": "sometimes"})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown request field"):
            SpecRequest.from_dict({"source": SRC, "sauce": "secret"})

    def test_from_dict_needs_source_or_file(self):
        with pytest.raises(ValueError, match="exactly one"):
            SpecRequest.from_dict({"specs": ["dyn"]})

    def test_from_dict_reads_file(self, tmp_path):
        path = tmp_path / "f.ppe"
        path.write_text(SRC)
        request = SpecRequest.from_dict({"file": "f.ppe"},
                                        base_dir=tmp_path)
        assert request.source == SRC
