"""Unit tests for the cross-request residual LRU and request
fingerprints."""

from __future__ import annotations

import pytest

from repro.observability import ServiceStats
from repro.service import ResidualCache, SpecRequest, SpecResult

SRC = "(define (f x) (+ x 1))"


def result(tag: str) -> SpecResult:
    return SpecResult(residual=f"; {tag}", goal_params=("x",))


class TestLRU:
    def test_miss_then_hit(self):
        cache = ResidualCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", result("a"))
        assert cache.get("a").residual == "; a"
        assert cache.stats.cache_misses == 1
        assert cache.stats.cache_hits == 1

    def test_eviction_is_least_recently_used(self):
        cache = ResidualCache(capacity=2)
        cache.put("a", result("a"))
        cache.put("b", result("b"))
        cache.get("a")             # refresh a: b is now the LRU entry
        cache.put("c", result("c"))
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.cache_evictions == 1

    def test_eviction_counter_accumulates(self):
        cache = ResidualCache(capacity=1)
        for tag in "abcd":
            cache.put(tag, result(tag))
        assert len(cache) == 1
        assert cache.stats.cache_evictions == 3

    def test_capacity_zero_disables(self):
        cache = ResidualCache(capacity=0)
        cache.put("a", result("a"))
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_degraded_results_are_never_cached(self):
        cache = ResidualCache(capacity=4)
        degraded = SpecResult(residual=SRC, degraded=True,
                              reason="deadline")
        cache.put("a", degraded)
        assert "a" not in cache

    def test_peek_does_not_count_or_refresh(self):
        stats = ServiceStats()
        cache = ResidualCache(capacity=2, stats=stats)
        cache.put("a", result("a"))
        cache.put("b", result("b"))
        cache.peek("a")            # no recency refresh: a stays LRU
        cache.put("c", result("c"))
        assert "a" not in cache
        assert stats.cache_hits == 0
        assert stats.cache_misses == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResidualCache(capacity=-1)


class TestFingerprint:
    def test_identical_requests_collide(self):
        a = SpecRequest.create(source=SRC, specs=["dyn"])
        b = SpecRequest.create(source=SRC, specs=["dyn"])
        assert a.fingerprint() == b.fingerprint()

    def test_id_deadline_and_fault_do_not_matter(self):
        plain = SpecRequest.create(source=SRC, specs=["dyn"])
        decorated = SpecRequest.create(
            source=SRC, specs=["dyn"], id="r7", deadline=1.5,
            fault={"kind": "hang", "seconds": 0.1})
        assert plain.fingerprint() == decorated.fingerprint()

    @pytest.mark.parametrize("other", [
        dict(source=SRC + " "),
        dict(specs=["3"]),
        dict(engine="simple"),
        dict(config={"unfold_fuel": 7}),
    ])
    def test_semantic_fields_matter(self, other):
        base = dict(source=SRC, specs=["dyn"], engine="online")
        changed = {**base, **other}
        assert SpecRequest.create(**base).fingerprint() \
            != SpecRequest.create(**changed).fingerprint()

    def test_config_order_is_canonical(self):
        a = SpecRequest.create(
            source=SRC, config={"unfold_fuel": 9, "max_variants": 3})
        b = SpecRequest.create(
            source=SRC, config={"max_variants": 3, "unfold_fuel": 9})
        assert a.fingerprint() == b.fingerprint()


class TestRequestValidation:
    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SpecRequest.create(source=SRC, engine="quantum")

    def test_unknown_config_key(self):
        with pytest.raises(ValueError, match="unknown PEConfig"):
            SpecRequest.create(source=SRC, config={"warp": 9})

    def test_unfold_strategy_decodes_from_string(self):
        request = SpecRequest.create(
            source=SRC, config={"unfold_strategy": "never"})
        from repro.online.config import UnfoldStrategy
        assert request.pe_config().unfold_strategy \
            is UnfoldStrategy.NEVER

    def test_bad_unfold_strategy(self):
        with pytest.raises(ValueError, match="unfold_strategy"):
            SpecRequest.create(source=SRC,
                               config={"unfold_strategy": "sometimes"})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown request field"):
            SpecRequest.from_dict({"source": SRC, "sauce": "secret"})

    def test_from_dict_needs_source_or_file(self):
        with pytest.raises(ValueError, match="exactly one"):
            SpecRequest.from_dict({"specs": ["dyn"]})

    def test_from_dict_reads_file(self, tmp_path):
        path = tmp_path / "f.ppe"
        path.write_text(SRC)
        request = SpecRequest.from_dict({"file": "f.ppe"},
                                        base_dir=tmp_path)
        assert request.source == SRC
