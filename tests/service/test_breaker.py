"""CircuitBreaker state machine (unit, injected clock) and its
integration into the service's store/compile paths via FaultPlan
triggers."""

import pytest

from repro.service.breaker import (
    CLOSED, HALF_OPEN, OPEN, CircuitBreaker)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def _breaker(clock, threshold=3, cooldown=10.0, half_open_max=1):
    return CircuitBreaker("test", failure_threshold=threshold,
                          cooldown_seconds=cooldown,
                          half_open_max=half_open_max, clock=clock)


class TestStateWalk:
    def test_starts_closed_and_allows(self, clock):
        breaker = _breaker(clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_consecutive_failures_trip_open(self, clock):
        breaker = _breaker(clock, threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1
        assert not breaker.allow()
        assert breaker.short_circuits == 1

    def test_success_resets_the_streak(self, clock):
        breaker = _breaker(clock, threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED, \
            "non-consecutive failures must not trip"

    def test_cooldown_goes_half_open_then_closes_on_success(self, clock):
        breaker = _breaker(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        assert breaker.allow(), "the probe must pass"
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens(self, clock):
        breaker = _breaker(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2
        assert not breaker.allow()

    def test_half_open_probe_budget(self, clock):
        breaker = _breaker(clock, threshold=1, cooldown=1.0,
                           half_open_max=2)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow(), "third probe exceeds the budget"

    def test_snapshot_shape(self, clock):
        breaker = _breaker(clock)
        snapshot = breaker.snapshot()
        assert set(snapshot) == {"state", "failures", "successes",
                                 "opens", "short_circuits"}

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown_seconds=-1)
        with pytest.raises(ValueError):
            CircuitBreaker("x", half_open_max=0)


class TestServiceIntegration:
    """The store breaker, driven end-to-end by a FaultPlan: every
    store read errors (as a locked database), so `breaker_threshold`
    consecutive request-level store failures open the breaker and
    later requests skip the store outright."""

    def _request(self, tag):
        from repro.service import SpecRequest
        return SpecRequest.create(
            f"(define (f x y) (+ (* x {tag}) y))", ["2", "dyn"],
            id=f"r{tag}")

    def test_store_breaker_opens_and_recovers(self, clock, tmp_path):
        from repro.service import SpecializationService

        plan = {"seed": 5, "seams": {
            "store.read": {"kinds": ["error"], "every": 1},
            "store.write": {"kinds": ["error"], "every": 1}}}
        with SpecializationService(
                workers=0, store_path=tmp_path / "store.sqlite",
                fault_plan=plan, breaker_threshold=2,
                breaker_cooldown=60.0, clock=clock) as service:
            breaker = service.breakers["store"]
            service.run_one(self._request(1))
            assert breaker.failures >= 1
            service.run_one(self._request(2))
            assert breaker.state == OPEN
            assert service.stats.breaker_opens >= 1
            before = service.stats.store_errors
            service.run_one(self._request(3))
            assert service.stats.store_errors == before, \
                "an open breaker must skip the store entirely"
            assert breaker.short_circuits >= 1
            # Cooldown passes; the half-open probe still fails (the
            # plan errors every store hit), so the breaker re-opens.
            clock.advance(60.0)
            service.run_one(self._request(4))
            assert breaker.state == OPEN
            assert breaker.opens >= 2
            # None of this ever surfaced to callers.
            assert service.stats.degraded == 0

    def test_store_breaker_closes_after_faults_stop(self, clock,
                                                    tmp_path):
        from repro.faults import uninstall
        from repro.service import SpecializationService

        plan = {"seed": 5, "seams": {
            "store.read": {"kinds": ["error"], "every": 1}}}
        with SpecializationService(
                workers=0, store_path=tmp_path / "store.sqlite",
                fault_plan=plan, breaker_threshold=1,
                breaker_cooldown=30.0, clock=clock) as service:
            breaker = service.breakers["store"]
            service.run_one(self._request(1))
            assert breaker.state == OPEN
            uninstall()          # the fault clears
            service.fault_plan = None
            clock.advance(30.0)
            service.run_one(self._request(2))
            assert breaker.state == CLOSED, \
                "a clean half-open probe must close the breaker"
            health = service.health()
            assert health["breakers"]["store"]["state"] == CLOSED
