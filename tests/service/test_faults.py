"""Service-layer fault tests: crashes, deadlines, deterministic
failures.

Faults are injected through the ``_crashy`` worker hook (a ``fault``
mapping on the request).  The contract under test: the caller *never*
sees an exception; every fault path ends in either a successful retry
or a ``degraded=True`` fallback, and :class:`ServiceStats` accounts
for what happened.
"""

from __future__ import annotations

import pytest

from repro.service import SpecRequest, SpecializationService
from repro.workloads import WORKLOADS

SRC = WORKLOADS["gcd"].source


def crashy_request(tmp_path, times: int, tag: str = "t",
                   **kwargs) -> SpecRequest:
    """A request whose worker dies ``times`` times, then behaves.

    Its division (49, 18) is deliberately unlike any healthy request
    in these tests: the fault hook is not part of the fingerprint, so
    sharing a division with a healthy request would let the crashy one
    be (correctly!) served from the cross-request cache.
    """
    token = tmp_path / f"crash-{tag}.count"
    return SpecRequest.create(
        source=SRC, specs=["49", "18"], id=f"crashy-{tag}",
        fault={"kind": "crash", "times": times, "token": str(token)},
        **kwargs)


@pytest.fixture
def recorded_sleep():
    """Replace real backoff sleeps with a recorder: fault tests assert
    the backoff *accounting*, not wall-clock."""
    slept: list[float] = []
    return slept, slept.append


class TestCrashRetry:
    def test_crash_once_then_retry_succeeds(self, tmp_path,
                                            recorded_sleep):
        slept, sleep = recorded_sleep
        request = crashy_request(tmp_path, times=1)
        with SpecializationService(workers=1, max_attempts=3,
                                   backoff_base=0.01,
                                   sleep=sleep) as service:
            result = service.run_one(request)
        assert not result.degraded
        assert result.residual.strip() == "(define (gcd) 1)"
        assert result.attempts == 2
        assert service.stats.worker_crashes == 1
        assert service.stats.retries == 1
        assert service.stats.pool_restarts == 1
        assert service.stats.backoff_seconds == pytest.approx(sum(slept))
        assert service.stats.backoff_seconds > 0

    def test_backoff_grows_exponentially(self, tmp_path,
                                         recorded_sleep):
        slept, sleep = recorded_sleep
        request = crashy_request(tmp_path, times=2)
        with SpecializationService(workers=1, max_attempts=4,
                                   backoff_base=0.01,
                                   sleep=sleep) as service:
            result = service.run_one(request)
        assert not result.degraded
        assert slept == [pytest.approx(0.01), pytest.approx(0.02)]
        assert service.stats.retries == 2

    def test_persistent_crash_degrades_without_raising(
            self, tmp_path, recorded_sleep):
        _, sleep = recorded_sleep
        request = crashy_request(tmp_path, times=99)
        with SpecializationService(workers=1, max_attempts=3,
                                   backoff_base=0.01,
                                   sleep=sleep) as service:
            result = service.run_one(request)
        assert result.degraded
        assert result.reason == "worker-crash"
        assert result.attempts == 3
        assert service.stats.worker_crashes == 3
        assert service.stats.retries == 2
        assert service.stats.degraded == 1
        # The fallback is still a runnable copy of the source program.
        assert "(define (gcd" in result.residual

    def test_inline_mode_has_the_same_crash_semantics(
            self, tmp_path, recorded_sleep):
        _, sleep = recorded_sleep
        request = crashy_request(tmp_path, times=1)
        with SpecializationService(workers=0, max_attempts=3,
                                   backoff_base=0.01,
                                   sleep=sleep) as service:
            result = service.run_one(request)
        assert not result.degraded
        assert result.attempts == 2
        assert service.stats.retries == 1

    def test_crash_does_not_sink_the_rest_of_the_batch(
            self, tmp_path, recorded_sleep):
        _, sleep = recorded_sleep
        healthy = [SpecRequest.create(source=SRC, specs=["48", str(k)],
                                      id=f"ok-{k}")
                   for k in (18, 30, 36)]
        batch = healthy[:1] + [crashy_request(tmp_path, times=99)] \
            + healthy[1:]
        with SpecializationService(workers=2, max_attempts=2,
                                   backoff_base=0.01,
                                   sleep=sleep) as service:
            results = service.run_batch(batch)
        by_id = {result.id: result for result in results}
        assert by_id["crashy-t"].degraded
        for request in healthy:
            assert not by_id[request.id].degraded


class TestWaveMateIsolation:
    def test_wave_mates_keep_their_retry_budgets(self, tmp_path,
                                                 recorded_sleep):
        """Regression: when one request keeps breaking the pool, its
        wave-mates must not burn their own retry budgets as collateral.

        Wave 1 breaks the pool, so every wave-mate may lose at most
        that one attempt to the wreckage; serial-after-break isolation
        then runs the culprit alone, and each healthy request must
        finish on its second attempt — never reach max_attempts, never
        degrade.
        """
        _, sleep = recorded_sleep
        healthy = [SpecRequest.create(source=SRC, specs=["48", str(k)],
                                      id=f"ok-{k}")
                   for k in (18, 30, 36)]
        batch = [crashy_request(tmp_path, times=99)] + healthy
        with SpecializationService(workers=2, max_attempts=3,
                                   backoff_base=0.01,
                                   sleep=sleep) as service:
            results = service.run_batch(batch)
        by_id = {result.id: result for result in results}
        assert by_id["crashy-t"].degraded
        assert by_id["crashy-t"].attempts == 3
        for request in healthy:
            result = by_id[request.id]
            assert not result.degraded
            assert result.attempts <= 2, \
                f"{result.id} burned {result.attempts} attempts as " \
                f"collateral of the crashy wave-mate"
        # The healthy requests' collateral crashes cleared on their
        # successful completion: none of them is anywhere near the
        # poison-pill quarantine.
        for request in healthy:
            assert not service.quarantine.is_quarantined(
                request.fingerprint())


class TestDeadlines:
    def test_hang_past_deadline_degrades(self, tmp_path):
        request = SpecRequest.create(
            source=SRC, specs=["48", "18"], id="sleepy",
            deadline=0.2, fault={"kind": "hang", "seconds": 5.0})
        with SpecializationService(workers=1) as service:
            result = service.run_one(request)
        assert result.degraded
        assert result.reason == "deadline"
        assert service.stats.timeouts == 1
        assert service.stats.degraded == 1
        assert service.stats.retries == 0   # timeouts are not retried
        assert service.stats.pool_restarts == 1

    def test_deadline_only_hits_the_slow_request(self, tmp_path):
        fast = SpecRequest.create(source=SRC, specs=["48", "18"],
                                  id="fast")
        slow = SpecRequest.create(
            source=SRC, specs=["48", "18"], id="slow", deadline=0.2,
            fault={"kind": "hang", "seconds": 5.0})
        with SpecializationService(workers=2) as service:
            results = service.run_batch([fast, slow])
        by_id = {result.id: result for result in results}
        assert not by_id["fast"].degraded
        assert by_id["slow"].degraded
        assert by_id["slow"].reason == "deadline"

    def test_service_default_deadline_applies(self, tmp_path):
        request = SpecRequest.create(
            source=SRC, specs=["48", "18"],
            fault={"kind": "hang", "seconds": 5.0})
        with SpecializationService(workers=1,
                                   default_deadline=0.2) as service:
            result = service.run_one(request)
        assert result.degraded
        assert result.reason == "deadline"


class TestDeterministicFailures:
    def test_injected_error_degrades_without_retry(self, recorded_sleep):
        slept, sleep = recorded_sleep
        request = SpecRequest.create(
            source=SRC, specs=["48", "18"],
            fault={"kind": "error", "message": "boom"})
        with SpecializationService(workers=1, sleep=sleep) as service:
            result = service.run_one(request)
        assert result.degraded
        assert "boom" in result.reason
        assert service.stats.errors == 1
        assert service.stats.retries == 0
        assert slept == []

    def test_parse_error_degrades_to_raw_source(self):
        request = SpecRequest.create(source="(define (f x) (oops",
                                     specs=["dyn"])
        with SpecializationService(workers=0) as service:
            result = service.run_one(request)
        assert result.degraded
        assert "ParseError" in result.reason
        assert result.residual == "(define (f x) (oops"

    def test_degraded_results_never_enter_the_cache(self, tmp_path):
        request = crashy_request(tmp_path, times=99)
        with SpecializationService(workers=0, max_attempts=1,
                                   sleep=lambda _s: None) as service:
            first = service.run_one(request)
            # The crash budget is unlimited, so a cached degradation
            # would be the only way the second call could degrade
            # without counting a new crash.
            second = service.run_one(request)
        assert first.degraded and second.degraded
        assert not second.cached
        assert service.stats.cache_hits == 0
