"""The JSONL serve loop and the ``ppe batch`` / ``ppe serve`` CLI."""

from __future__ import annotations

import io
import json

from repro.cli import main
from repro.service import SpecializationService, serve
from repro.workloads import WORKLOADS

GCD = WORKLOADS["gcd"].source


def pump(*lines: object) -> list[dict]:
    """Run the loop over JSON lines; return the decoded responses."""
    text = "\n".join(
        line if isinstance(line, str) else json.dumps(line)
        for line in lines) + "\n"
    out = io.StringIO()
    with SpecializationService(workers=0) as service:
        serve(service, io.StringIO(text), out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestServeLoop:
    def test_request_response(self):
        [response] = pump(
            {"id": "g", "source": GCD, "specs": ["48", "18"]})
        assert response["id"] == "g"
        assert not response["degraded"]
        assert "(define (gcd) 6)" in response["residual"]

    def test_one_response_per_line_in_order(self):
        responses = pump(
            {"id": "a", "source": GCD, "specs": ["48", "18"]},
            {"id": "b", "source": GCD, "specs": ["50", "15"]})
        assert [r["id"] for r in responses] == ["a", "b"]

    def test_stats_op(self):
        responses = pump(
            {"id": "a", "source": GCD, "specs": ["48", "18"]},
            {"op": "stats"})
        stats = responses[-1]
        assert stats["ok"] is True
        assert stats["stats"]["submitted"] == 1
        assert stats["stats"]["completed"] == 1

    def test_shutdown_op_acknowledges_and_stops(self):
        responses = pump(
            {"op": "shutdown"},
            {"id": "after", "source": GCD, "specs": ["48", "18"]})
        assert responses == [{"ok": True, "op": "shutdown"}]

    def test_malformed_lines_do_not_kill_the_loop(self):
        responses = pump(
            "this is not json",
            "[1, 2, 3]",
            {"op": "teleport"},
            {"specs": ["dyn"]},              # no source and no file
            {"id": "ok", "source": GCD, "specs": ["48", "18"]})
        assert [r.get("ok", "absent") for r in responses[:4]] \
            == [False, False, False, False]
        assert responses[-1]["id"] == "ok"
        assert not responses[-1]["degraded"]

    def test_blank_lines_are_skipped(self):
        responses = pump(
            "", "   ",
            {"id": "ok", "source": GCD, "specs": ["48", "18"]})
        assert len(responses) == 1

    def test_bad_program_degrades_in_band(self):
        [response] = pump({"id": "bad", "source": "(define (f x",
                           "specs": ["dyn"]})
        assert response["degraded"] is True
        assert "ParseError" in response["reason"]


class TestServeLoopRobustness:
    """Satellite regression: wrongly-*typed* fields used to pass
    ``from_dict`` validation and detonate later (``{"source": 42}``
    reached ``fingerprint()`` and killed the loop with an
    ``AttributeError``).  Every shape here must be answered with a
    structured error line, and the loop must keep serving."""

    BAD_LINES = [
        {"source": 42},                               # non-string source
        {"source": GCD, "specs": "not-a-list-item", "id": 7},
        {"source": GCD, "config": "fast"},            # non-object config
        {"source": GCD, "config": ["max_steps", 1]},
        {"source": GCD, "fault": "boom"},             # non-object fault
        {"source": GCD, "deadline": "soon"},          # non-number deadline
        {"source": GCD, "deadline": True},
        {"source": GCD, "specs": [1, 2]},             # non-string specs
        {"file": 42},                                 # non-string path
        {"source": None},
    ]

    def test_wrongly_typed_fields_answered_not_fatal(self):
        survivor = {"id": "ok", "source": GCD, "specs": ["48", "18"]}
        responses = pump(*self.BAD_LINES, survivor)
        assert len(responses) == len(self.BAD_LINES) + 1
        for response in responses[:-1]:
            assert response["ok"] is False
            assert response["error"]
        assert responses[-1]["id"] == "ok"
        assert not responses[-1]["degraded"]

    def test_error_lines_echo_the_id_when_stringy(self):
        [response, _] = pump(
            {"id": "who", "source": 42},
            {"op": "shutdown"})
        assert response["ok"] is False
        assert response["id"] == "who"

    def test_health_op(self):
        responses = pump(
            {"id": "a", "source": GCD, "specs": ["48", "18"]},
            {"op": "health"})
        health = responses[-1]
        assert health["ok"] is True and health["op"] == "health"
        assert health["health"]["breakers"]["store"]["state"] \
            == "closed"
        assert health["health"]["quarantine"]["size"] == 0
        assert health["health"]["watchdog"]["recycles"] == 0

    def test_stats_op_carries_hardening_sections(self):
        responses = pump(
            {"id": "a", "source": GCD, "specs": ["48", "18"]},
            {"op": "stats"})
        stats = responses[-1]["stats"]
        assert stats["faults"] == {}
        assert stats["breaker"]["opens"] == 0
        assert stats["quarantine"]["pills"] == 0
        assert stats["watchdog"]["recycles"] == 0

    def test_injected_serve_fault_is_answered_in_band(self):
        plan = {"seed": 21, "seams": {
            "serve.request": {"kinds": ["error"], "at": [1]}}}
        text = "\n".join([
            json.dumps({"id": "a", "source": GCD,
                        "specs": ["48", "18"]}),
            json.dumps({"id": "b", "source": GCD,
                        "specs": ["48", "18"]})]) + "\n"
        out = io.StringIO()
        with SpecializationService(workers=0,
                                   fault_plan=plan) as service:
            serve(service, io.StringIO(text), out)
        first, second = [json.loads(line)
                         for line in out.getvalue().splitlines()]
        assert first["ok"] is False
        assert "injected fault at serve.request" in first["error"]
        assert second["id"] == "b" and not second["degraded"]


class TestBatchCLI:
    def _manifest(self, tmp_path, entries):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"requests": entries}))
        return path

    def test_batch_writes_results_and_profile(self, tmp_path, capsys):
        manifest = self._manifest(tmp_path, [
            {"id": "g", "source": GCD, "specs": ["48", "18"]},
            {"id": "p", "source": WORKLOADS["power"].source,
             "specs": ["dyn", "5"], "engine": "offline"},
        ])
        out = tmp_path / "results.json"
        profile = tmp_path / "profile.json"
        code = main(["batch", str(manifest), "--workers", "2",
                     "--output", str(out), "--profile", str(profile)])
        assert code == 0
        results = json.loads(out.read_text())
        assert [r["id"] for r in results] == ["g", "p"]
        assert not any(r["degraded"] for r in results)
        report = json.loads(profile.read_text())
        assert report["version"] == 1
        assert report["service"]["submitted"] == 2
        assert report["service"]["completed"] == 2
        assert "batch" in report["phases"]

    def test_batch_stdout_and_stderr_summary(self, tmp_path, capsys):
        manifest = self._manifest(tmp_path, [
            {"id": "g", "source": GCD, "specs": ["48", "18"]}])
        code = main(["batch", str(manifest), "--workers", "0"])
        assert code == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)[0]["id"] == "g"
        assert "1 requests, 0 degraded" in captured.err

    def test_batch_file_references_resolve_against_manifest(
            self, tmp_path, capsys):
        (tmp_path / "prog.ppe").write_text(GCD)
        manifest = self._manifest(tmp_path, [
            {"id": "f", "file": "prog.ppe", "specs": ["48", "18"]}])
        code = main(["batch", str(manifest), "--workers", "0"])
        assert code == 0
        [result] = json.loads(capsys.readouterr().out)
        assert "(define (gcd) 6)" in result["residual"]

    def test_bad_manifest_exits_nonzero(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{\"requests\": 7}")
        import pytest
        with pytest.raises(SystemExit):
            main(["batch", str(path)])


class TestServeCLI:
    def test_serve_reads_stdin_writes_stdout(self, tmp_path,
                                             monkeypatch, capsys):
        lines = json.dumps(
            {"id": "g", "source": GCD, "specs": ["48", "18"]}) + "\n" \
            + json.dumps({"op": "shutdown"}) + "\n"
        import sys
        monkeypatch.setattr(sys, "stdin", io.StringIO(lines))
        code = main(["serve", "--workers", "0"])
        assert code == 0
        out_lines = capsys.readouterr().out.splitlines()
        assert json.loads(out_lines[0])["id"] == "g"
        assert json.loads(out_lines[-1]) == {"ok": True,
                                             "op": "shutdown"}

    def test_serve_survives_undecodable_bytes_on_stdin(
            self, monkeypatch, capsys):
        # Raw binary junk would raise UnicodeDecodeError in the line
        # iterator before the loop ever saw the line; the CLI re-wraps
        # stdin with errors="replace" so it is answered as bad JSON.
        raw = b"\xff\xfe\x00garbage\n" \
            + json.dumps({"op": "shutdown"}).encode() + b"\n"

        class FakeStdin:
            buffer = io.BytesIO(raw)

        import sys
        monkeypatch.setattr(sys, "stdin", FakeStdin())
        code = main(["serve", "--workers", "0"])
        assert code == 0
        out_lines = capsys.readouterr().out.splitlines()
        first = json.loads(out_lines[0])
        assert first["ok"] is False and "bad JSON" in first["error"]
        assert json.loads(out_lines[-1]) == {"ok": True,
                                             "op": "shutdown"}

    def test_serve_health_flag_and_fault_plan(self, tmp_path,
                                              monkeypatch, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"seed": 4, "seams": {
            "serve.request": {"kinds": ["latency"], "at": [1],
                              "latency_seconds": 0.0}}}))
        health_path = tmp_path / "health.json"
        lines = json.dumps(
            {"id": "g", "source": GCD, "specs": ["48", "18"]}) + "\n" \
            + json.dumps({"op": "shutdown"}) + "\n"
        import sys
        monkeypatch.setattr(sys, "stdin", io.StringIO(lines))
        code = main(["serve", "--workers", "0",
                     "--fault-plan", str(plan),
                     "--health", str(health_path)])
        assert code == 0
        health = json.loads(health_path.read_text())
        assert health["faults"] == {"serve.request:latency": 1}
        assert health["quarantine"]["pills"] == 0

    def test_serve_rejects_bad_fault_plan(self, monkeypatch):
        import pytest
        with pytest.raises(SystemExit, match="bad fault plan"):
            main(["serve", "--workers", "0",
                  "--fault-plan", "{broken"])
