"""The hung-worker watchdog, driven deterministically by FaultPlan
hang triggers.

These tests use a real pool (``workers=1``): the watchdog exists
precisely to bound futures whose worker process is stuck, which
cannot be simulated inline.  The hang itself is injected (the worker
sleeps ``hang_seconds``), the watchdog bound is tight, and the
recycle terminates the sleeping process — so the tests are fast and
leave no grinding processes behind."""

import pytest

from repro.service import SpecRequest, SpecializationService

SOURCE = "(define (f x y) (+ (* x x) y))"
OTHER = "(define (g x y) (- (* x y) 1))"

#: Every worker.execute hit hangs for far longer than any test waits;
#: the watchdog must terminate the worker, not wait this out.
HANG_PLAN = {"seed": 3, "seams": {
    "worker.execute": {"kinds": ["hang"], "every": 1,
                       "hang_seconds": 60.0}}}


def test_watchdog_bounds_deadline_less_requests():
    with SpecializationService(workers=1, fault_plan=HANG_PLAN,
                               watchdog_timeout=0.4) as service:
        result = service.run_one(
            SpecRequest.create(SOURCE, ["3", "dyn"], id="stuck"))
        assert result.degraded and result.reason == "watchdog"
        assert service.stats.watchdog_recycles == 1
        assert service.stats.pool_restarts == 1
        assert service.stats.timeouts == 0, \
            "the backstop is not a deadline timeout"


def test_watchdog_recovery_after_fault_clears():
    from repro.faults import uninstall

    with SpecializationService(workers=1, fault_plan=HANG_PLAN,
                               watchdog_timeout=0.4) as service:
        first = service.run_one(
            SpecRequest.create(SOURCE, ["3", "dyn"]))
        assert first.degraded and first.reason == "watchdog"
        # The fault clears; the recycled pool serves normally again.
        uninstall()
        service.fault_plan = None
        second = service.run_one(
            SpecRequest.create(OTHER, ["dyn", "5"]))
        assert not second.degraded
        assert service.stats.watchdog_recycles == 1
        health = service.health()
        assert health["watchdog"]["recycles"] == 1
        assert health["watchdog"]["timeout"] == 0.4


def test_deadline_hang_terminates_the_stuck_member():
    # A request deadline (not the backstop): reason stays "deadline"
    # and counts a timeout, exactly as before the watchdog existed —
    # but the stuck member is now terminated and counted.
    with SpecializationService(workers=1,
                               fault_plan=HANG_PLAN) as service:
        result = service.run_one(
            SpecRequest.create(SOURCE, ["3", "dyn"], deadline=0.4))
        assert result.degraded and result.reason == "deadline"
        assert service.stats.timeouts == 1
        assert service.stats.watchdog_recycles == 1
        assert service.stats.pool_restarts == 1


def test_no_watchdog_by_default_config():
    service = SpecializationService(workers=1)
    try:
        assert service.watchdog_timeout is None
    finally:
        service.close()
    with pytest.raises(ValueError):
        SpecializationService(workers=1, watchdog_timeout=0.0)
