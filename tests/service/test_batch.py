"""Batch semantics: determinism, caching, engine routing, manifests.

The acceptance bar for the service layer: a 32-request manifest served
by a 4-worker pool must return **byte-identical** residuals to
sequential single-request runs of the same requests — parallelism, the
scheduler and the cross-request cache must be invisible in the output.
"""

from __future__ import annotations

import json

import pytest

from repro.service import (
    SpecRequest, SpecializationService, execute_request, load_manifest)
from repro.workloads import WORKLOADS

#: (workload, specs, engine) rows that exercise every engine and most
#: of the first-order corpus; repeated with distinct configs below to
#: reach 32 requests.
_ROWS = [
    ("inner_product", ["size=3", "size=3"], "online"),
    ("inner_product", ["size=5", "size=5"], "online"),
    ("inner_product", ["size=3", "size=3"], "offline"),
    ("power", ["dyn", "10"], "online"),
    ("power", ["dyn", "7"], "offline"),
    ("power", ["dyn", "6"], "simple"),
    ("sign_pipeline", ["sign=pos", "dyn"], "online"),
    ("sign_pipeline", ["sign=neg", "dyn"], "online"),
    ("clamped_lookup", ["size=4", "dyn", "1", "4"], "online"),
    ("clamped_lookup", ["dyn", "interval=2:3", "1", "4"], "online"),
    ("alternating_sum", ["size=4"], "online"),
    ("alternating_sum", ["size=4"], "offline"),
    ("poly_eval", ["size=3", "dyn"], "online"),
    ("gcd", ["48", "18"], "online"),
    ("gcd", ["48", "18"], "simple"),
    ("binary_search", ["size=7", "dyn"], "online"),
]


def make_requests() -> list[SpecRequest]:
    """32 distinct requests: each row once as authored and once with a
    config override (so config participates in identity too)."""
    requests = []
    for index, (name, specs, engine) in enumerate(_ROWS):
        source = WORKLOADS[name].source
        requests.append(SpecRequest.create(
            source=source, specs=specs, engine=engine,
            id=f"{name}-{index}"))
        requests.append(SpecRequest.create(
            source=source, specs=specs, engine=engine,
            config={"unfold_fuel": 64},
            id=f"{name}-{index}-fuel64"))
    assert len(requests) == 32
    return requests


def sequential_residuals(requests) -> list[str]:
    """The reference: each request run alone, in this process."""
    return [execute_request(request.to_payload())["residual"]
            for request in requests]


class TestByteIdenticalResiduals:
    def test_pool_of_4_matches_sequential(self):
        requests = make_requests()
        expected = sequential_residuals(requests)
        with SpecializationService(workers=4) as service:
            results = service.run_batch(requests)
        assert not any(result.degraded for result in results)
        got = [result.residual for result in results]
        assert got == expected  # byte-identical, in request order
        assert service.stats.completed == 32
        assert service.stats.submitted == 32

    def test_inline_mode_matches_sequential(self):
        requests = make_requests()[:8]
        expected = sequential_residuals(requests)
        with SpecializationService(workers=0) as service:
            got = [r.residual for r in service.run_batch(requests)]
        assert got == expected


class TestCacheAcrossBatches:
    def test_second_batch_is_served_from_cache(self):
        requests = make_requests()[:6]
        with SpecializationService(workers=2) as service:
            first = service.run_batch(requests)
            second = service.run_batch(requests)
        assert [r.residual for r in first] \
            == [r.residual for r in second]
        assert not any(r.cached for r in first)
        assert all(r.cached for r in second)
        assert service.stats.cache_hits == len(requests)

    def test_cache_capacity_zero_never_hits(self):
        request = SpecRequest.create(
            source=WORKLOADS["gcd"].source, specs=["8", "6"])
        with SpecializationService(workers=0,
                                   cache_capacity=0) as service:
            service.run_one(request)
            result = service.run_one(request)
        assert not result.cached
        assert service.stats.cache_hits == 0

    def test_eviction_counters_surface(self):
        requests = make_requests()[:6]
        with SpecializationService(workers=0,
                                   cache_capacity=2) as service:
            service.run_batch(requests)
        assert service.stats.cache_evictions == 4
        assert service.stats.as_dict()["cache"]["evictions"] == 4


class TestEngineRouting:
    def test_simple_engine_ignores_facet_specs(self):
        """Facet specs carry information Figure 2 cannot represent;
        the simple engine must treat them as dynamic, not crash."""
        request = SpecRequest.create(
            source=WORKLOADS["inner_product"].source,
            specs=["size=3", "size=3"], engine="simple")
        with SpecializationService(workers=0) as service:
            result = service.run_one(request)
        assert not result.degraded
        assert "dotprod" in result.residual  # nothing unrolled

    def test_online_vs_offline_goal_params_agree(self):
        online = SpecRequest.create(
            source=WORKLOADS["inner_product"].source,
            specs=["size=3", "size=3"], engine="online")
        offline = SpecRequest.create(
            source=WORKLOADS["inner_product"].source,
            specs=["size=3", "size=3"], engine="offline")
        with SpecializationService(workers=0) as service:
            results = service.run_batch([online, offline])
        assert results[0].goal_params == results[1].goal_params \
            == ("A", "B")

    def test_stats_snapshot_travels_with_result(self):
        request = SpecRequest.create(
            source=WORKLOADS["power"].source, specs=["dyn", "9"])
        with SpecializationService(workers=0) as service:
            result = service.run_one(request)
        assert result.stats["facet_evaluations"] > 0
        assert result.seconds > 0


class TestManifest:
    def test_load_manifest_array_and_object_forms(self, tmp_path):
        entry = {"source": WORKLOADS["gcd"].source, "specs": ["8", "6"]}
        assert len(load_manifest(json.dumps([entry]))) == 1
        assert len(load_manifest(
            json.dumps({"requests": [entry, entry]}))) == 2

    def test_manifest_file_references(self, tmp_path):
        (tmp_path / "prog.ppe").write_text(WORKLOADS["gcd"].source)
        manifest = json.dumps([{"file": "prog.ppe", "specs": ["8", "6"]}])
        [request] = load_manifest(manifest, tmp_path)
        assert request.source == WORKLOADS["gcd"].source

    def test_manifest_rejects_non_array(self):
        with pytest.raises(ValueError, match="array"):
            load_manifest(json.dumps({"nope": 1}))
        with pytest.raises(ValueError, match="JSON"):
            load_manifest("not json")
