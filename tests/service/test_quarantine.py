"""Poison-pill quarantine: unit state walk (injected clock) and the
service-level behavior driven by FaultPlan crash triggers."""

import pytest

from repro.service.quarantine import PoisonQuarantine


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestUnit:
    def test_threshold_crashes_quarantine(self, clock):
        box = PoisonQuarantine(threshold=3, ttl_seconds=100.0,
                               clock=clock)
        assert not box.record_crash("fp")
        assert not box.record_crash("fp")
        assert box.record_crash("fp"), "third crash tips it in"
        assert box.is_quarantined("fp")
        assert box.pills == 1
        assert len(box) == 1

    def test_success_clears_the_streak(self, clock):
        box = PoisonQuarantine(threshold=2, clock=clock)
        box.record_crash("fp")
        box.record_success("fp")
        assert not box.record_crash("fp"), \
            "the streak restarted after a success"

    def test_ttl_expiry_releases(self, clock):
        box = PoisonQuarantine(threshold=1, ttl_seconds=50.0,
                               clock=clock)
        box.record_crash("fp")
        assert box.short_circuit("fp")
        clock.advance(50.0)
        assert not box.is_quarantined("fp")
        assert box.expiries == 1
        assert len(box) == 0

    def test_short_circuit_counts(self, clock):
        box = PoisonQuarantine(threshold=1, clock=clock)
        box.record_crash("fp")
        assert box.short_circuit("fp")
        assert box.short_circuit("fp")
        assert not box.short_circuit("other")
        assert box.short_circuits == 2

    def test_table_is_capped(self, clock):
        box = PoisonQuarantine(threshold=1, ttl_seconds=100.0,
                               max_entries=2, clock=clock)
        box.record_crash("a")
        clock.advance(1.0)
        box.record_crash("b")
        clock.advance(1.0)
        box.record_crash("c")
        assert len(box) == 2
        assert not box.is_quarantined("a"), \
            "the entry closest to release is evicted for the new pill"
        assert box.is_quarantined("b") and box.is_quarantined("c")

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            PoisonQuarantine(threshold=0)
        with pytest.raises(ValueError):
            PoisonQuarantine(ttl_seconds=-1)
        with pytest.raises(ValueError):
            PoisonQuarantine(max_entries=0)

    def test_snapshot_shape(self, clock):
        box = PoisonQuarantine(clock=clock)
        assert set(box.snapshot()) == {
            "size", "threshold", "ttl_seconds", "pills",
            "short_circuits", "expiries"}


SOURCE = "(define (f x y) (+ (* x x) y))"


def _request(id="pill"):
    from repro.service import SpecRequest
    return SpecRequest.create(SOURCE, ["3", "dyn"], id=id)


class TestServiceIntegration:
    """Inline service + a FaultPlan that crashes every worker.execute
    hit: deterministic poison-pill behavior end to end."""

    def _service(self, clock, **kwargs):
        from repro.service import SpecializationService
        plan = {"seed": 11, "seams": {
            "worker.execute": {"kinds": ["crash"], "every": 1}}}
        defaults = dict(workers=0, max_attempts=2, backoff_base=0.0,
                        fault_plan=plan, quarantine_threshold=2,
                        quarantine_ttl=120.0, clock=clock)
        defaults.update(kwargs)
        return SpecializationService(**defaults)

    def test_pill_is_quarantined_then_released(self, clock):
        from repro.faults import uninstall

        with self._service(clock) as service:
            # Run 1: both attempts crash -> degraded "worker-crash",
            # and the second crash reaches quarantine_threshold.
            first = service.run_one(_request())
            assert first.degraded and first.reason == "worker-crash"
            assert first.attempts == 2
            assert service.stats.worker_crashes == 2
            assert service.quarantine.is_quarantined(
                _request().fingerprint())
            assert service.stats.poison_pills == 1
            # Run 2: short-circuited without touching the worker.
            crashes_before = service.stats.worker_crashes
            second = service.run_one(_request())
            assert second.degraded and second.reason == "quarantined"
            assert second.attempts == 0
            assert service.stats.worker_crashes == crashes_before
            assert service.stats.quarantined == 1
            # TTL passes and the fault clears: the pill recovers.
            clock.advance(120.0)
            uninstall()
            service.fault_plan = None
            third = service.run_one(_request())
            assert not third.degraded
            assert third.residual
            health = service.health()
            assert health["quarantine"]["size"] == 0
            assert health["quarantine"]["expiries"] == 1

    def test_quarantine_hits_profile_sections(self, clock):
        with self._service(clock) as service:
            service.run_one(_request())
            report = service.stats_dict()
            assert report["quarantine"]["pills"] == 1
            assert report["faults"].get("worker.execute:crash") == 2

    def test_early_stop_when_threshold_below_attempts(self, clock):
        # threshold 1 < max_attempts 3: the first crash quarantines,
        # and the request degrades without burning further retries.
        with self._service(clock, max_attempts=3,
                           quarantine_threshold=1) as service:
            result = service.run_one(_request())
            assert result.degraded and result.reason == "quarantined"
            assert result.attempts == 1
            assert service.stats.retries == 0
