"""The ``Values`` lattice (PE values) unit tests."""

import pytest

from repro.lattice.laws import check_lattice
from repro.lattice.pevalue import PE_LATTICE, PEValue


class TestConstruction:
    def test_bottom_top_singletons(self):
        assert PEValue.bottom() is PEValue.bottom()
        assert PEValue.top() is PEValue.top()

    def test_const(self):
        c = PEValue.const(3)
        assert c.is_const
        assert c.constant() == 3

    def test_const_rejects_non_values(self):
        with pytest.raises(TypeError):
            PEValue.const("hello")

    def test_constant_of_non_const_raises(self):
        with pytest.raises(ValueError):
            PEValue.top().constant()

    def test_sort(self):
        assert PEValue.const(3).sort == "int"
        assert PEValue.const(True).sort == "bool"
        assert PEValue.top().sort is None


class TestEquality:
    def test_same_constant(self):
        assert PEValue.const(3) == PEValue.const(3)

    def test_sorts_distinguished(self):
        # Python would say 1 == 1.0 == True; the lattice must not.
        assert PEValue.const(1) != PEValue.const(1.0)
        assert PEValue.const(1) != PEValue.const(True)
        assert PEValue.const(0) != PEValue.const(False)

    def test_hash_consistent_with_eq(self):
        values = {PEValue.const(1), PEValue.const(1.0),
                  PEValue.const(True)}
        assert len(values) == 3

    def test_str(self):
        assert str(PEValue.const(2)) == "2"
        assert str(PEValue.bottom()) == "⊥"
        assert str(PEValue.top()) == "⊤"


class TestLattice:
    def test_laws_on_sample(self):
        sample = list(PE_LATTICE.sample_elements())
        assert check_lattice(PE_LATTICE, sample) == []

    def test_flat_order(self):
        bot, top = PEValue.bottom(), PEValue.top()
        c1, c2 = PEValue.const(1), PEValue.const(2)
        assert PE_LATTICE.leq(bot, c1)
        assert PE_LATTICE.leq(c1, top)
        assert not PE_LATTICE.leq(c1, c2)
        assert not PE_LATTICE.leq(top, c1)

    def test_join(self):
        c1, c2 = PEValue.const(1), PEValue.const(2)
        assert PE_LATTICE.join(c1, c1) == c1
        assert PE_LATTICE.join(c1, c2) == PEValue.top()
        assert PE_LATTICE.join(PEValue.bottom(), c1) == c1

    def test_meet(self):
        c1, c2 = PEValue.const(1), PEValue.const(2)
        assert PE_LATTICE.meet(c1, c2) == PEValue.bottom()
        assert PE_LATTICE.meet(PEValue.top(), c1) == c1

    def test_height(self):
        assert PE_LATTICE.height() == 2

    def test_join_all(self):
        assert PE_LATTICE.join_all([]) == PEValue.bottom()
        assert PE_LATTICE.join_all(
            [PEValue.const(1), PEValue.const(1)]) == PEValue.const(1)
