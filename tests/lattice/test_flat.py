"""Flat and chain lattice unit tests."""

import pytest

from repro.lattice.flat import ChainLattice, FlatLattice
from repro.lattice.laws import check_lattice


class TestFlatEnumerable:
    @pytest.fixture
    def lattice(self):
        return FlatLattice("signs", ["pos", "zero", "neg"])

    def test_laws(self, lattice):
        assert check_lattice(lattice) == []

    def test_bounds(self, lattice):
        assert lattice.leq(lattice.bottom, "pos")
        assert lattice.leq("pos", lattice.top)
        assert not lattice.leq(lattice.top, "pos")

    def test_points_incomparable(self, lattice):
        assert not lattice.leq("pos", "neg")
        assert not lattice.leq("neg", "pos")

    def test_join_of_distinct_points_is_top(self, lattice):
        assert lattice.join("pos", "neg") == lattice.top

    def test_join_identity(self, lattice):
        assert lattice.join(lattice.bottom, "zero") == "zero"
        assert lattice.join("zero", "zero") == "zero"

    def test_meet_of_distinct_points_is_bottom(self, lattice):
        assert lattice.meet("pos", "neg") == lattice.bottom

    def test_height_is_two(self, lattice):
        assert lattice.height() == 2

    def test_contains(self, lattice):
        assert lattice.contains("pos")
        assert lattice.contains(lattice.top)
        assert not lattice.contains("maybe")

    def test_is_point(self, lattice):
        assert lattice.is_point("pos")
        assert not lattice.is_point(lattice.top)
        assert not lattice.is_point(lattice.bottom)

    def test_distinct_lattices_have_distinct_extremes(self):
        a = FlatLattice("a", ["x"])
        b = FlatLattice("b", ["x"])
        assert a.top != b.top
        assert a.bottom != b.bottom


class TestFlatInfinite:
    @pytest.fixture
    def lattice(self):
        return FlatLattice("sizes", points=None)

    def test_not_enumerable(self, lattice):
        assert not lattice.is_enumerable()
        with pytest.raises(NotImplementedError):
            list(lattice.elements())

    def test_any_point_accepted(self, lattice):
        assert lattice.contains(42)
        assert lattice.leq(42, 42)
        assert lattice.join(42, 43) == lattice.top

    def test_height_still_finite(self, lattice):
        assert lattice.height() == 2


class TestChain:
    @pytest.fixture
    def chain(self):
        return ChainLattice("bt", ["bot", "static", "dynamic"])

    def test_laws(self, chain):
        assert check_lattice(chain) == []

    def test_total_order(self, chain):
        assert chain.leq("bot", "static")
        assert chain.leq("static", "dynamic")
        assert not chain.leq("dynamic", "static")

    def test_join_meet(self, chain):
        assert chain.join("static", "dynamic") == "dynamic"
        assert chain.meet("static", "dynamic") == "static"

    def test_height(self, chain):
        assert chain.height() == 2

    def test_unknown_element_rejected(self, chain):
        with pytest.raises(ValueError):
            chain.leq("bot", "nonsense")

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            ChainLattice("bad", ["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChainLattice("bad", [])
