"""Binding-time chain unit tests (Section 3.2's ``Values~``)."""

from repro.lattice.bt import BT, BT_LATTICE
from repro.lattice.laws import check_lattice


class TestBT:
    def test_chain_order(self):
        assert BT.BOT <= BT.STATIC <= BT.DYNAMIC
        assert BT.BOT < BT.DYNAMIC
        assert not BT.DYNAMIC <= BT.STATIC

    def test_predicates(self):
        assert BT.STATIC.is_static
        assert BT.DYNAMIC.is_dynamic
        assert BT.BOT.is_bottom
        assert not BT.STATIC.is_dynamic

    def test_join(self):
        assert BT.STATIC.join(BT.DYNAMIC) is BT.DYNAMIC
        assert BT.BOT.join(BT.STATIC) is BT.STATIC
        assert BT.STATIC.join(BT.STATIC) is BT.STATIC

    def test_str(self):
        assert str(BT.STATIC) == "Static"
        assert str(BT.DYNAMIC) == "Dynamic"
        assert str(BT.BOT) == "⊥"


class TestBTLattice:
    def test_laws(self):
        assert check_lattice(BT_LATTICE) == []

    def test_bounds(self):
        assert BT_LATTICE.bottom is BT.BOT
        assert BT_LATTICE.top is BT.DYNAMIC

    def test_height_matches_paper(self):
        # The paper calls Values~ "an algebraic lattice of height 3"
        # counting elements; our convention counts edges.
        assert BT_LATTICE.height() == 2
        assert len(list(BT_LATTICE.elements())) == 3
