"""Core lattice machinery: FiniteLattice, monotonicity checking."""

import pytest

from repro.lattice.core import FiniteLattice, is_monotonic, \
    pointwise_leq
from repro.lattice.flat import ChainLattice, FlatLattice
from repro.lattice.laws import (
    check_finite_height, check_join, check_lattice)


class TestFiniteLattice:
    @pytest.fixture
    def diamond(self):
        # bot <= {l, r} <= top
        return FiniteLattice(
            "diamond", ["bot", "l", "r", "top"],
            [("bot", "l"), ("bot", "r"), ("l", "top"), ("r", "top")])

    def test_laws(self, diamond):
        assert check_lattice(diamond) == []

    def test_bounds_found(self, diamond):
        assert diamond.bottom == "bot"
        assert diamond.top == "top"

    def test_transitive_closure(self, diamond):
        assert diamond.leq("bot", "top")

    def test_join(self, diamond):
        assert diamond.join("l", "r") == "top"
        assert diamond.join("bot", "l") == "l"

    def test_meet(self, diamond):
        assert diamond.meet("l", "r") == "bot"

    def test_height(self, diamond):
        assert diamond.height() == 2

    def test_unbounded_poset_rejected(self):
        with pytest.raises(ValueError, match="not a bounded lattice"):
            FiniteLattice("bad", ["a", "b"], [])


class TestMonotonicity:
    def test_monotone_unary(self):
        chain = ChainLattice("c", [0, 1, 2])
        assert is_monotonic(chain, chain, lambda x: min(x + 1, 2), 1)

    def test_non_monotone_unary_detected(self):
        chain = ChainLattice("c", [0, 1, 2])
        assert not is_monotonic(chain, chain, lambda x: 2 - x, 1)

    def test_monotone_binary(self):
        chain = ChainLattice("c", [0, 1, 2])
        assert is_monotonic(chain, chain,
                            lambda a, b: min(2, max(a, b)), 2)

    def test_non_monotone_binary_detected(self):
        chain = ChainLattice("c", [0, 1, 2])
        assert not is_monotonic(chain, chain,
                                lambda a, b: (a + b) % 3, 2)

    def test_arity_limit(self):
        chain = ChainLattice("c", [0, 1])
        with pytest.raises(NotImplementedError):
            is_monotonic(chain, chain, lambda a, b, c: a, 3)


class TestHelpers:
    def test_pointwise_leq(self):
        chain = ChainLattice("c", [0, 1, 2])
        assert pointwise_leq(chain, [0, 1], [1, 1])
        assert not pointwise_leq(chain, [2, 0], [1, 1])
        assert not pointwise_leq(chain, [0], [0, 0])

    def test_finite_height_check(self):
        flat = FlatLattice("f", ["a", "b"])
        assert check_finite_height(flat) == []
        assert check_finite_height(flat, bound=1) != []

    def test_generic_meet_via_enumeration(self):
        flat = FlatLattice("f", ["a", "b"])
        # Lattice.meet generic fallback (FlatLattice overrides; use the
        # base implementation explicitly).
        from repro.lattice.core import Lattice
        assert Lattice.meet(flat, "a", "b") == flat.bottom
        assert Lattice.meet(flat, "a", flat.top) == "a"
