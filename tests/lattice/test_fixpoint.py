"""Fixpoint engine unit tests."""

import pytest

from repro.lattice.flat import ChainLattice
from repro.lattice.fixpoint import (
    FixpointStats, WorklistSolver, lfp_table)


@pytest.fixture
def chain():
    return ChainLattice("c", [0, 1, 2, 3, 4])


class TestLfpTable:
    def test_constant_transformer(self, chain):
        result = lfp_table({"a": 0}, lambda t: {"a": 2}, chain)
        assert result["a"] == 2

    def test_dependent_entries(self, chain):
        # b follows a, capped by the chain top.
        def transformer(table):
            return {"a": 3, "b": table.get("a", 0)}

        result = lfp_table({"a": 0, "b": 0}, transformer, chain)
        assert result == {"a": 3, "b": 3}

    def test_monotone_growth_joins(self, chain):
        # The transformer proposes a *smaller* value; the join keeps
        # the old one, so iteration stabilizes.
        def transformer(table):
            return {"a": 1 if table["a"] >= 1 else 2}

        result = lfp_table({"a": 2}, transformer, chain)
        assert result["a"] == 2

    def test_iteration_bound(self, chain):
        calls = {"n": 0}

        def diverging(table):
            calls["n"] += 1
            return {"a": min(4, table["a"] + 1)}

        # converges at 4, well within the bound
        result = lfp_table({"a": 0}, diverging, chain,
                           max_iterations=100)
        assert result["a"] == 4

    def test_stats_recorded(self, chain):
        stats = FixpointStats()
        lfp_table({"a": 0}, lambda t: {"a": 4}, chain, stats=stats)
        assert stats.iterations >= 2


class TestWorklistSolver:
    def test_single_cell(self, chain):
        solver = WorklistSolver(chain, lambda s, cell: 3)
        assert solver.solve("x") == 3

    def test_dependency_chain(self, chain):
        def equation(solver, cell):
            if cell == "a":
                return 2
            return solver.ask("a")

        solver = WorklistSolver(chain, equation)
        assert solver.solve("b") == 2

    def test_mutual_recursion_reaches_fixpoint(self, chain):
        # a = max(1, b), b = a: both settle at 1.
        def equation(solver, cell):
            if cell == "a":
                return max(1, solver.ask("b"))
            return solver.ask("a")

        solver = WorklistSolver(chain, equation)
        assert solver.solve("a") == 1
        assert solver.values["b"] == 1

    def test_increasing_cycle_hits_top(self, chain):
        # a = min(top, b + 1), b = a: climbs to the chain top and
        # stops.
        def equation(solver, cell):
            if cell == "a":
                return min(4, solver.ask("b") + 1)
            return solver.ask("a")

        solver = WorklistSolver(chain, equation)
        assert solver.solve("a") == 4

    def test_drain_returns_growth_count(self, chain):
        solver = WorklistSolver(chain, lambda s, cell: 1)
        solver.ask("x")
        assert solver.drain() == 1
        assert solver.drain() == 0

    def test_update_budget(self, chain):
        def equation(solver, cell):
            return solver.ask(("next", cell))

        solver = WorklistSolver(chain, equation, max_updates=10)
        with pytest.raises(RuntimeError, match="budget"):
            solver.solve("start")

    def test_reentrant_drain_rejected(self, chain):
        solver = WorklistSolver(chain, lambda s, cell: s.drain() or 0)
        with pytest.raises(AssertionError):
            solver.solve("x")
