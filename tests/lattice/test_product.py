"""Smashed product unit tests (Definitions 5/9, footnote 2)."""

import pytest

from repro.lattice.flat import ChainLattice, FlatLattice
from repro.lattice.laws import check_lattice
from repro.lattice.product import SmashedProduct


@pytest.fixture
def product():
    signs = FlatLattice("signs", ["pos", "neg"])
    bt = ChainLattice("bt", ["bot", "s", "d"])
    return SmashedProduct("test", [signs, bt])


class TestStructure:
    def test_laws(self, product):
        assert check_lattice(product, with_meet=False) == []

    def test_bottom_top(self, product):
        signs, bt = product.components
        assert product.bottom == (signs.bottom, "bot")
        assert product.top == (signs.top, "d")

    def test_height_is_sum(self, product):
        assert product.height() == 4

    def test_arity(self, product):
        assert product.arity == 2

    def test_empty_product_rejected(self):
        with pytest.raises(ValueError):
            SmashedProduct("empty", [])


class TestSmash:
    def test_proper_tuple_unchanged(self, product):
        assert product.smash(("pos", "s")) == ("pos", "s")

    def test_any_bottom_collapses(self, product):
        signs, _bt = product.components
        assert product.smash((signs.bottom, "d")) == product.bottom
        assert product.smash(("pos", "bot")) == product.bottom

    def test_is_bottom(self, product):
        signs, _ = product.components
        assert product.is_bottom((signs.bottom, "d"))
        assert not product.is_bottom(("pos", "s"))

    def test_wrong_arity_rejected(self, product):
        with pytest.raises(ValueError):
            product.smash(("pos",))


class TestOrder:
    def test_componentwise(self, product):
        assert product.leq(("pos", "s"), ("pos", "d"))
        assert not product.leq(("pos", "d"), ("pos", "s"))

    def test_bottom_below_all(self, product):
        signs, _ = product.components
        assert product.leq((signs.bottom, "bot"), ("neg", "s"))
        # Smashing: a tuple with one bottom component IS bottom.
        assert product.leq((signs.bottom, "d"), ("neg", "s"))

    def test_join(self, product):
        signs, _ = product.components
        assert product.join(("pos", "s"), ("neg", "s")) \
            == (signs.top, "s")
        assert product.join(product.bottom, ("pos", "s")) \
            == ("pos", "s")

    def test_meet(self, product):
        assert product.meet(("pos", "d"), ("pos", "s")) == ("pos", "s")
        assert product.meet(("pos", "s"), ("neg", "s")) \
            == product.bottom

    def test_elements_deduplicate_bottoms(self, product):
        elements = list(product.elements())
        bottoms = [e for e in elements if product.is_bottom(e)]
        assert len(bottoms) == 1

    def test_contains(self, product):
        assert product.contains(("pos", "s"))
        assert not product.contains(("pos",))
        assert not product.contains(("maybe", "s"))
