"""Differential testing harness: every engine against the source.

The properties in ``tests/properties`` state engine-by-engine theorems.
This harness is a single cross-engine oracle instead: for one random
program and one random static/dynamic split, **all three** engines —
online PPE (Figure 3), the analysis-driven offline specializer and the
Figure 2 simple-PE baseline — residualize the same request, and every
residual is then *executed* on the dynamic arguments and compared with
the source program's answer.  A bug in any engine (or in the service
plumbing layered on top of them) surfaces as a value-level
disagreement, no matter which layer introduced it.

Three layers are covered:

* the engines called directly (``test_every_engine_agrees_with_source``);
* the same requests routed through :class:`SpecializationService`, so
  spec parsing, worker payloads and the cross-request cache are inside
  the differential loop (``test_service_agrees_with_source``);
* the degraded-fallback path: the trivially-residual program the
  service substitutes on failure must itself be semantics-preserving
  (``test_fallback_residual_agrees_with_source``).

Budgets scale with ``REPRO_HYPOTHESIS_PROFILE`` via
``scaled_examples`` like every other hypothesis suite in the repo.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import assert_values_close, scaled_examples

from repro.baselines.simple_pe import DYN, specialize_simple
from repro.facets import FacetSuite, IntervalFacet, ParityFacet, SignFacet
from repro.facets.library.interval import Interval
from repro.lang.errors import PEError
from repro.lang.interp import Interpreter, run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.values import INT
from repro.online import PEConfig, specialize_online
from repro.offline.specializer import specialize_offline
from repro.service import SpecRequest, SpecializationService
from repro.service.scheduler import _fallback_residual
from repro.workloads.generator import GenConfig, generate_program

SEEDS = st.integers(min_value=0, max_value=10_000)
ARGS = st.integers(min_value=-6, max_value=8)
MASKS = st.integers(min_value=0, max_value=15)
GEN = GenConfig(functions=3, max_depth=3)
PE_CONFIG = PEConfig(unfold_fuel=12, max_variants=4, fuel=2_000_000)
FUEL = 2_000_000


def _tolerated(error: PEError) -> bool:
    """Resource blowups (and the offline specializer's explicit
    refusal to honour an exploding division) abort a run without
    verdict; correctness only constrains runs that finish."""
    return "exceeded" in str(error) or "generalized division" in str(error)


def _split(pool, mask, arity):
    """A (static, dynamic) split of the first ``arity`` pool values."""
    args = pool[:arity]
    dynamic_positions = [i for i in range(arity) if mask & (1 << i)]
    dynamic_args = [args[i] for i in dynamic_positions]
    return args, dynamic_positions, dynamic_args


def _online_inputs(suite, args, dynamic_positions, with_facets):
    """Online/offline input vector: dynamic slots either bare unknowns
    or unknowns carrying their value's true facets, so folds fire."""
    inputs = []
    for i, value in enumerate(args):
        if i not in dynamic_positions:
            inputs.append(value)
        elif not with_facets:
            inputs.append(suite.unknown(INT))
        else:
            inputs.append(suite.input(
                INT,
                sign=suite.facet_named("sign").abstract(value),
                parity=suite.facet_named("parity").abstract(value),
                interval=Interval(value - 1, value + 1)))
    return inputs


class TestEngineDifferential:
    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4), MASKS,
           st.booleans())
    @settings(max_examples=scaled_examples(60), deadline=None)
    def test_every_engine_agrees_with_source(self, seed, pool, mask,
                                             with_facets):
        program = generate_program(seed, GEN)
        args, dynamic_positions, dynamic_args = _split(
            pool, mask, program.main.arity)
        expected = run_program(program, *args, fuel=FUEL)

        online_suite = FacetSuite(
            [SignFacet(), ParityFacet(), IntervalFacet()])
        # The offline analysis abstracts over sign/parity only — the
        # narrower suite matches what its binding-time domain models.
        offline_suite = FacetSuite([SignFacet(), ParityFacet()])
        simple_division = [
            DYN if i in dynamic_positions else value
            for i, value in enumerate(args)]

        residuals = {}
        try:
            residuals["simple"] = specialize_simple(
                program, simple_division, PE_CONFIG).program
            residuals["online"] = specialize_online(
                program,
                _online_inputs(online_suite, args, dynamic_positions,
                               with_facets),
                online_suite, PE_CONFIG).program
            if with_facets:
                offline_in = _offline_inputs(offline_suite, args,
                                             dynamic_positions)
            else:
                offline_in = _online_inputs(offline_suite, args,
                                            dynamic_positions, False)
            residuals["offline"] = specialize_offline(
                program, offline_in, offline_suite,
                config=PE_CONFIG).program
        except PEError as error:
            assert _tolerated(error), error
            return

        for engine, residual in residuals.items():
            got = Interpreter(residual, fuel=FUEL).run(*dynamic_args)
            assert_values_close(
                expected, got,
                context=f"{engine} residual vs the source program")


def _offline_inputs(suite, args, dynamic_positions):
    inputs = []
    for i, value in enumerate(args):
        if i not in dynamic_positions:
            inputs.append(value)
        else:
            inputs.append(suite.input(
                INT,
                sign=suite.facet_named("sign").abstract(value),
                parity=suite.facet_named("parity").abstract(value)))
    return inputs


class TestServiceDifferential:
    """The same oracle with the whole service stack in the loop: spec
    strings, worker payloads, the cross-request cache and result
    assembly must all preserve residual semantics."""

    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4), MASKS)
    @settings(max_examples=scaled_examples(30), deadline=None)
    def test_service_agrees_with_source(self, seed, pool, mask):
        program = generate_program(seed, GEN)
        args, dynamic_positions, dynamic_args = _split(
            pool, mask, program.main.arity)
        expected = run_program(program, *args, fuel=FUEL)

        source = pretty_program(program)
        specs = ["dyn" if i in dynamic_positions else str(value)
                 for i, value in enumerate(args)]
        # Tight soft budgets: pathological generated programs degrade
        # in-engine within milliseconds instead of grinding toward the
        # 1M-step defaults — and the degraded (still real) residuals
        # land in the verdict path below, so budget-widened output is
        # inside the differential loop too.
        config = {"unfold_fuel": 12, "max_variants": 4,
                  "fuel": 2_000_000, "max_steps": 20_000,
                  "max_residual_nodes": 20_000}
        requests = [
            SpecRequest.create(source=source, specs=specs,
                               engine=engine, config=config, id=engine)
            for engine in ("online", "offline", "simple")]
        with SpecializationService(workers=0) as service:
            results = service.run_batch(requests)
        for result in results:
            if result.degraded:
                # Blowups degrade instead of raising; the fallback
                # must still be semantics-preserving (checked below on
                # its own), so only non-degraded runs give a verdict
                # here.
                assert "exceeded" in result.reason \
                    or "generalized division" in result.reason, \
                    result.reason
                continue
            residual = parse_program(result.residual)
            got = Interpreter(residual, fuel=FUEL).run(*dynamic_args)
            assert_values_close(
                expected, got,
                context=f"service/{result.engine} vs the source")


class TestFallbackDifferential:
    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4))
    @settings(max_examples=scaled_examples(30), deadline=None)
    def test_fallback_residual_agrees_with_source(self, seed, pool):
        """Graceful degradation must never change semantics: the
        trivially-residual program the scheduler falls back to is an
        all-dynamic residual, so it runs on the *full* argument
        vector and must compute exactly what the source does."""
        program = generate_program(seed, GEN)
        args = pool[:program.main.arity]
        expected = run_program(program, *args, fuel=FUEL)
        text, goal_params = _fallback_residual(pretty_program(program))
        assert len(goal_params) == program.main.arity
        residual = parse_program(text)
        got = Interpreter(residual, fuel=FUEL).run(*args)
        assert_values_close(expected, got, context="fallback residual")
