"""Differential oracle for the fused generating extension.

``tests/genext/test_equivalence.py`` pins the byte-identity invariant
on the curated corpus; this harness states it over *random* programs:
for a generated program and a random static/dynamic split, the
emitted genext module, the in-memory generating extension and the
offline specializer — all driven by the same generalized-pattern
analysis — must produce byte-identical residuals, and the fused
residual must agree with the source program when *executed* through
the shadow backend (interpreter vs compiled, compared on every call).

Tolerated aborts mirror ``test_engine_differential``: resource
blowups and the offline analyzer's refusal of an exploding division
end a run without a verdict.  Budgets run *strict* here: the offline
specializer degrades gracefully on soft-budget exhaustion (widened
calls) but the generating extension has no budget integration yet
(ROADMAP), so a silently-degraded offline residual is the one case
where byte-parity legitimately cannot hold — strict mode turns that
case into a tolerated abort instead of a spurious verdict (found by
this harness at seed=101, pool=[-1, 4, -4, 2], mask=1: offline
degraded at max_residual_nodes while cogen ground out a 1.1M-line
residual).

Budgets scale with ``REPRO_HYPOTHESIS_PROFILE`` via
``scaled_examples``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import assert_values_close, scaled_examples

from repro.backend.verify import execute_program
from repro.engine.errors import BudgetExhausted
from repro.facets.abstract.vector import AbstractSuite
from repro.genext import emit_genext, load_genext
from repro.genext.emit import default_suite, generalized_pattern
from repro.lang.errors import PEError
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.observability import BackendStats
from repro.offline.analysis import analyze
from repro.offline.cogen import GeneratingExtension
from repro.offline.specializer import OfflineSpecializer
from repro.online.config import PEConfig
from repro.service.specs import parse_specs
from repro.workloads.generator import GenConfig, generate_program

SEEDS = st.integers(min_value=0, max_value=10_000)
ARGS = st.integers(min_value=-6, max_value=8)
MASKS = st.integers(min_value=0, max_value=15)
GEN = GenConfig(functions=3, max_depth=3)
FUEL = 2_000_000

#: The same tight budgets on every tier, both as a PEConfig (offline,
#: cogen) and as the wire dict baked into the emitted module.
#: strict_budgets: the offline specializer runs first, so a budget
#: crossing raises BudgetExhausted there and short-circuits the
#: budget-free cogen/fused tiers before they can diverge.
CONFIG = PEConfig(unfold_fuel=12, max_variants=4, fuel=FUEL,
                  strict_budgets=True)
WIRE_CONFIG = {"unfold_fuel": 12, "max_variants": 4, "fuel": FUEL}


def _tolerated(error: Exception) -> bool:
    return "exceeded" in str(error) \
        or "generalized division" in str(error)


class TestGenextDifferential:
    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4), MASKS)
    @settings(max_examples=scaled_examples(40), deadline=None)
    def test_fused_matches_cogen_and_offline(self, seed, pool, mask):
        program = generate_program(seed, GEN)
        arity = program.main.arity
        args = pool[:arity]
        dynamic_positions = [i for i in range(arity)
                             if mask & (1 << i)]
        dynamic_args = [args[i] for i in dynamic_positions]
        specs = ["dyn" if i in dynamic_positions else str(value)
                 for i, value in enumerate(args)]
        source = pretty_program(program)
        expected = run_program(program, *args, fuel=FUEL)

        suite = default_suite()
        abstract = AbstractSuite(suite)
        try:
            pattern, _, _ = generalized_pattern(suite, abstract,
                                                specs)
            analysis = analyze(parse_program(source), list(pattern),
                               abstract)
            inputs = parse_specs(suite, specs)
            offline = OfflineSpecializer(
                analysis, suite, config=CONFIG).specialize(inputs)
            cogen = GeneratingExtension(
                analysis, suite, config=CONFIG).specialize(inputs)
            module = load_genext(
                emit_genext(source, specs,
                            config=WIRE_CONFIG).python_source)
            fused = module.specialize_specs(specs)
        except (PEError, BudgetExhausted) as error:
            assert _tolerated(error), error
            return

        baseline = pretty_program(offline.program)
        assert pretty_program(cogen.program) == baseline, \
            "cogen residual diverges from offline"
        assert pretty_program(fused.program) == baseline, \
            "fused residual diverges from offline"

        # The fused residual, run through the shadow backend, agrees
        # with the source program on the dynamic arguments — and the
        # compiled/interpreted comparison inside `shadow` was clean.
        stats = BackendStats()
        try:
            got = execute_program(fused.program, dynamic_args,
                                  backend="shadow", fuel=FUEL,
                                  stats=stats)
        except (PEError, BudgetExhausted) as error:
            assert _tolerated(error), error
            return
        assert stats.mismatches == 0
        assert_values_close(expected, got,
                            context="fused residual vs the source")
