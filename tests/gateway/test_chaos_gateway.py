"""Chaos over the gateway's own fault seams.

``gateway.accept`` (before routing), ``gateway.admit`` (before the
admission decision) and ``gateway.respond`` (before any response
byte) are deterministic :mod:`repro.faults` seams.  The claims: an
injected error at any of them answers a *structured* 500 — never a
dead connection, never a half response — the next request on the same
server works, no admission ticket leaks, and the firings are visible
in ``/v1/stats``.
"""

from __future__ import annotations

from repro.faults import active, install
from repro.service import SpecializationService

from tests.gateway.conftest import http, specialize_payload


def seam_plan(seam: str, kind: str = "error", at=(1,),
              **extra) -> dict:
    return {"seed": 7, "seams": {
        seam: {"kinds": [kind], "at": list(at), **extra}}}


class TestSingleSeams:
    def test_accept_error_answers_500_then_recovers(
            self, gateway_factory):
        harness = gateway_factory()
        install(seam_plan("gateway.accept"))
        first = http(harness.port, "GET", "/v1/health")
        assert first.status == 500
        assert first.json["ok"] is False
        assert first.json["error"].startswith(
            "internal error: InjectedFault:")
        second = http(harness.port, "GET", "/v1/health")
        assert second.status == 200

    def test_admit_error_leaks_no_ticket(self, gateway_factory):
        harness = gateway_factory()
        install(seam_plan("gateway.admit"))
        first = http(harness.port, "POST", "/v1/specialize",
                     specialize_payload(id="hit"))
        assert first.status == 500
        second = http(harness.port, "POST", "/v1/specialize",
                      specialize_payload(id="fine"))
        assert second.status == 200
        stats = http(harness.port, "GET", "/v1/stats").json
        admission = stats["stats"]["gateway"]["admission"]
        assert admission["inflight"] == 0
        assert admission["admitted"] == 1

    def test_respond_error_after_the_work_leaks_no_ticket(
            self, gateway_factory):
        harness = gateway_factory()
        install(seam_plan("gateway.respond"))
        first = http(harness.port, "POST", "/v1/specialize",
                     specialize_payload(id="hit"))
        assert first.status == 500
        stats = http(harness.port, "GET", "/v1/stats").json
        gateway = stats["stats"]["gateway"]
        assert gateway["admission"]["inflight"] == 0
        assert gateway["internal_errors"] == 1
        assert http(harness.port, "POST", "/v1/specialize",
                    specialize_payload(id="fine")).status == 200

    def test_latency_kinds_still_answer_200(self, gateway_factory):
        harness = gateway_factory()
        install({"seed": 7, "seams": {
            seam: {"kinds": ["latency"], "every": 1,
                   "latency_seconds": 0.01}
            for seam in ("gateway.accept", "gateway.admit",
                         "gateway.respond")}})
        response = http(harness.port, "POST", "/v1/specialize",
                        specialize_payload(id="slow-but-fine"))
        assert response.status == 200
        assert response.json["id"] == "slow-but-fine"


class TestProbabilityMix:
    def test_every_request_is_answered_under_the_storm(
            self, gateway_factory):
        service = SpecializationService(workers=0)
        try:
            harness = gateway_factory(service=service)
            install({"seed": 1234, "seams": {
                "gateway.accept": {"kinds": ["error", "latency"],
                                   "probability": 0.2,
                                   "latency_seconds": 0.0},
                "gateway.admit": {"kinds": ["error", "latency"],
                                  "probability": 0.2,
                                  "latency_seconds": 0.0},
                "gateway.respond": {"kinds": ["error", "latency"],
                                    "probability": 0.2,
                                    "latency_seconds": 0.0},
            }})
            statuses = []
            for index in range(30):
                response = http(harness.port, "POST",
                                "/v1/specialize",
                                specialize_payload(
                                    id=f"storm-{index}"))
                statuses.append(response.status)
                assert response.status in (200, 500), response.body
                payload = response.json
                if response.status == 200:
                    assert payload["id"] == f"storm-{index}"
                else:
                    assert payload["error"].startswith(
                        "internal error: InjectedFault:")
            # The plan's probabilities make both outcomes certain
            # over 30 requests under the fixed seed (deterministic:
            # the same seed replays the same trace forever).
            assert statuses.count(200) > 0
            assert statuses.count(500) > 0

            # Every 500 is one injected error, and vice versa.
            injector = active()
            errors = sum(count for label, count
                         in injector.injected.items()
                         if label.startswith("gateway.")
                         and label.endswith(":error"))
            assert errors == statuses.count(500)

            # The firings surface in /v1/stats — whose own request
            # also rides the seams, so allow injected retries.
            for _attempt in range(20):
                response = http(harness.port, "GET", "/v1/stats")
                if response.status == 200:
                    break
            assert response.status == 200
            stats = response.json
            assert sum(count for label, count
                       in stats["stats"]["faults"].items()
                       if label.startswith("gateway.")) >= errors
            gateway = stats["stats"]["gateway"]
            assert gateway["admission"]["inflight"] == 0
            assert gateway["internal_errors"] \
                >= statuses.count(500)
        finally:
            service.close()
