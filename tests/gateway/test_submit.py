"""The AsyncSubmitter: priority ordering, progress fan-out, close."""

from __future__ import annotations

import threading
import time

import pytest

from repro.faults import install
from repro.service import SpecializationService
from repro.service.results import SpecRequest
from repro.service.submit import HIGH, NORMAL, AsyncSubmitter
from repro.workloads import WORKLOADS

GCD = WORKLOADS["gcd"].source


def request(id: str, specs=("48", "18")) -> SpecRequest:
    return SpecRequest.create(GCD, list(specs), id=id)


class TestBasics:
    def test_result_matches_the_blocking_path(self):
        with SpecializationService(workers=0) as service:
            reference = service.run_one(request("ref"))
            with AsyncSubmitter(service) as submitter:
                result = submitter.submit(request("async")).result(30)
        assert result.residual == reference.residual
        assert not result.degraded

    def test_many_submissions_all_resolve(self):
        with SpecializationService(workers=0) as service, \
                AsyncSubmitter(service) as submitter:
            futures = [submitter.submit(request(f"r{i}",
                                                ("dyn", str(i))))
                       for i in range(10)]
            results = [future.result(30) for future in futures]
        assert [result.id for result in results] \
            == [f"r{i}" for i in range(10)]

    def test_bad_priority_rejected(self):
        with SpecializationService(workers=0) as service, \
                AsyncSubmitter(service) as submitter:
            with pytest.raises(ValueError):
                submitter.submit(request("x"), priority=7)


def _block_pump(service, submitter, seconds: float):
    """Occupy the pump thread: install latency on the first executed
    request and submit it.  Returns its future."""
    install({"seed": 1, "seams": {
        "worker.execute": {"kinds": ["latency"], "at": [1],
                           "latency_seconds": seconds}}})
    blocker = submitter.submit(request("blocker"))
    # Wait until the pump has actually taken it (pending drains).
    deadline = time.monotonic() + 5
    while submitter.pending() and time.monotonic() < deadline:
        time.sleep(0.005)
    return blocker


class TestPriority:
    def test_high_jumps_queued_normal_work(self):
        events = []
        lock = threading.Lock()

        def track(tag):
            def on_progress(event, _request):
                with lock:
                    events.append((tag, event))
            return on_progress

        with SpecializationService(workers=0) as service, \
                AsyncSubmitter(service, batch_max=8) as submitter:
            blocker = _block_pump(service, submitter, 0.3)
            normal = submitter.submit(request("n", ("50", "15")),
                                      priority=NORMAL,
                                      progress=track("n"))
            high = submitter.submit(request("h", ("36", "60")),
                                    priority=HIGH,
                                    progress=track("h"))
            for future in (blocker, normal, high):
                future.result(30)
        started = [tag for tag, event in events if event == "started"]
        assert started == ["h", "n"]


class TestProgress:
    def test_started_then_retrying_on_crash_retry(self):
        install({"seed": 1, "seams": {
            "worker.execute": {"kinds": ["crash"], "at": [1]}}})
        events = []
        with SpecializationService(workers=0, backoff_base=0.0,
                                   sleep=lambda _s: None) as service, \
                AsyncSubmitter(service) as submitter:
            result = submitter.submit(
                request("retry"),
                progress=lambda event, _r: events.append(event)) \
                .result(30)
        assert events[:2] == ["started", "retrying"]
        assert not result.degraded

    def test_progress_exceptions_do_not_fail_the_work(self):
        def bad_progress(_event, _request):
            raise RuntimeError("listener bug")

        with SpecializationService(workers=0) as service, \
                AsyncSubmitter(service) as submitter:
            result = submitter.submit(request("ok"),
                                      progress=bad_progress).result(30)
        assert not result.degraded


class TestClose:
    def test_close_cancels_queued_work_but_finishes_running(self):
        with SpecializationService(workers=0) as service:
            submitter = AsyncSubmitter(service, batch_max=1)
            blocker = _block_pump(service, submitter, 0.3)
            queued = submitter.submit(request("q", ("50", "15")))
            submitter.close()
            assert blocker.result(30) is not None
            assert queued.cancelled()

    def test_submit_after_close_raises(self):
        with SpecializationService(workers=0) as service:
            submitter = AsyncSubmitter(service)
            submitter.close()
            with pytest.raises(RuntimeError):
                submitter.submit(request("late"))

    def test_close_is_idempotent(self):
        with SpecializationService(workers=0) as service:
            submitter = AsyncSubmitter(service)
            submitter.close()
            submitter.close()
