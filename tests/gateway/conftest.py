"""Harness for the gateway suite: a real server on a real socket.

:class:`GatewayHarness` runs a :class:`~repro.gateway.GatewayServer`
on its own event-loop thread, bound to an ephemeral port;
:func:`http` / :class:`HttpClient` are deliberately dumb raw-socket
HTTP clients (no ``http.client``), so the tests exercise the server's
actual wire behavior — including the malformed requests a library
client would refuse to send.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import pytest

from repro.faults import uninstall
from repro.gateway import GatewayServer
from repro.service import SpecializationService
from repro.workloads import WORKLOADS

GCD = WORKLOADS["gcd"].source
POWER = WORKLOADS["power"].source


@pytest.fixture(autouse=True)
def _fresh_injector():
    """Every test starts and ends with no installed fault plan."""
    uninstall()
    yield
    uninstall()


# -- the server under test --------------------------------------------------

class GatewayHarness:
    """One gateway + service on a background event-loop thread."""

    def __init__(self, service: SpecializationService,
                 **gateway_kwargs) -> None:
        self.service = service
        self._kwargs = gateway_kwargs
        self.gateway: GatewayServer | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="gateway-harness", daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 — surfaced below
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.gateway = GatewayServer(self.service, port=0,
                                     **self._kwargs)
        await self.gateway.start()
        self.port = self.gateway.port
        self._ready.set()
        await self._stop.wait()
        await self.gateway.aclose()

    def start(self) -> "GatewayHarness":
        self._thread.start()
        assert self._ready.wait(10), "gateway did not come up"
        if self._error is not None:
            raise self._error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)
        assert not self._thread.is_alive(), "gateway did not stop"


@pytest.fixture
def gateway_factory():
    """Factory for harnesses; everything is torn down at test end."""
    harnesses: list[GatewayHarness] = []
    services: list[SpecializationService] = []

    def make(service: SpecializationService | None = None,
             **gateway_kwargs) -> GatewayHarness:
        if service is None:
            service = SpecializationService(workers=0)
            services.append(service)
        harness = GatewayHarness(service, **gateway_kwargs)
        harnesses.append(harness)
        return harness.start()

    yield make
    for harness in harnesses:
        harness.stop()
    for service in services:
        service.close()


# -- raw-socket HTTP --------------------------------------------------------

class HttpResponse:
    def __init__(self, status: int, headers: dict[str, str],
                 body: bytes, chunked: bool) -> None:
        self.status = status
        self.headers = headers
        self.body = body
        self.chunked = chunked

    @property
    def json(self):
        return json.loads(self.body.decode("utf-8"))

    @property
    def events(self) -> list[dict]:
        """NDJSON body decoded line by line (streaming responses)."""
        return [json.loads(line)
                for line in self.body.decode("utf-8").splitlines()
                if line]


def read_response(fp) -> HttpResponse:
    """One response off a socket file, honoring Content-Length or
    chunked framing (so keep-alive connections stay in sync)."""
    status_line = fp.readline()
    if not status_line:
        raise ConnectionError("no response (connection closed)")
    parts = status_line.decode("ascii").split(" ", 2)
    assert parts[0].startswith("HTTP/1."), status_line
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = fp.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    chunked = headers.get("transfer-encoding") == "chunked"
    if chunked:
        body = b""
        while True:
            size = int(fp.readline().strip(), 16)
            if size == 0:
                fp.readline()
                break
            body += fp.read(size)
            fp.readline()
    else:
        body = fp.read(int(headers.get("content-length", "0")))
    return HttpResponse(status, headers, body, chunked)


def _request_bytes(method: str, path: str, payload=None,
                   headers: dict[str, str] | None = None,
                   raw_body: bytes | None = None) -> bytes:
    body = raw_body if raw_body is not None else (
        json.dumps(payload).encode("utf-8")
        if payload is not None else b"")
    lines = [f"{method} {path} HTTP/1.1", "Host: test"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    lines.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


class HttpClient:
    """A persistent (keep-alive) connection to the gateway."""

    def __init__(self, port: int, timeout: float = 30.0) -> None:
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=timeout)
        self.fp = self.sock.makefile("rb")

    def request(self, method: str, path: str, payload=None,
                headers: dict[str, str] | None = None,
                raw_body: bytes | None = None) -> HttpResponse:
        self.sock.sendall(_request_bytes(method, path, payload,
                                         headers, raw_body))
        return read_response(self.fp)

    def send_raw(self, data: bytes) -> HttpResponse:
        self.sock.sendall(data)
        return read_response(self.fp)

    def closed_by_peer(self) -> bool:
        """Did the server close its side?  (Reads one byte; only call
        when no response is pending.)"""
        self.sock.settimeout(5.0)
        try:
            return self.fp.read(1) == b""
        except (TimeoutError, OSError):
            return False

    def close(self) -> None:
        try:
            self.fp.close()
            self.sock.close()
        except OSError:
            pass


def http(port: int, method: str, path: str, payload=None,
         headers: dict[str, str] | None = None,
         raw_body: bytes | None = None,
         timeout: float = 30.0) -> HttpResponse:
    """One request on a fresh connection, closed afterwards."""
    client = HttpClient(port, timeout=timeout)
    try:
        merged = {"Connection": "close"}
        merged.update(headers or {})
        return client.request(method, path, payload, merged, raw_body)
    finally:
        client.close()


def specialize_payload(source: str = GCD, specs=("48", "18"),
                       id: str | None = None, **extra) -> dict:
    payload = {"source": source, "specs": list(specs)}
    if id is not None:
        payload["id"] = id
    payload.update(extra)
    return payload
