"""The serve loop's JSONL byte format, pinned.

``ppe serve`` now delegates parsing/validation/response shaping to
:mod:`repro.gateway.core` — the same code the HTTP gateway runs.
These tests pin the exact response bytes the loop emitted *before*
that refactor, so sharing the core can never drift the JSONL wire
format; plus the two serve-loop satellites: every response line is
flushed (a piped consumer never deadlocks), and ``{"op": "health"}``
stays responsive around in-flight work.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.faults import install
from repro.service import SpecializationService, serve
from repro.service.results import SpecRequest
from repro.workloads import WORKLOADS

GCD = WORKLOADS["gcd"].source

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def serve_bytes(*lines: object) -> str:
    """Run the loop over JSON lines; return the raw output text."""
    text = "\n".join(
        line if isinstance(line, str) else json.dumps(line)
        for line in lines) + "\n"
    out = io.StringIO()
    with SpecializationService(workers=0) as service:
        serve(service, io.StringIO(text), out)
    return out.getvalue()


class TestPinnedBytes:
    """Exact pre-refactor response lines, byte for byte."""

    def test_bad_json_line(self):
        assert serve_bytes("not json") == (
            '{"error": "bad JSON: Expecting value: line 1 column 1 '
            '(char 0)", "ok": false}\n')

    def test_non_object_line(self):
        assert serve_bytes("[1, 2, 3]") == \
            '{"error": "expected a JSON object", "ok": false}\n'

    def test_unknown_op_line(self):
        assert serve_bytes({"op": "teleport"}) == \
            '{"error": "unknown op \'teleport\'", "ok": false}\n'

    def test_invalid_request_line(self):
        assert serve_bytes({"specs": ["dyn"]}) == (
            '{"error": "request needs exactly one of \'source\' or '
            '\'file\'", "id": null, "ok": false}\n')

    def test_wrongly_typed_field_line(self):
        assert serve_bytes({"source": 42, "specs": []}) == (
            '{"error": "source must be a string, got int", '
            '"id": null, "ok": false}\n')

    def test_shutdown_line(self):
        assert serve_bytes({"op": "shutdown"}) == \
            '{"ok": true, "op": "shutdown"}\n'

    def test_result_lines_are_canonical_sorted_json(self):
        output = serve_bytes(
            {"id": "g", "source": GCD, "specs": ["48", "18"]})
        [line] = output.splitlines()
        document = json.loads(line)
        assert line == json.dumps(document, sort_keys=True)
        assert document["id"] == "g"
        assert "(define (gcd) 6)" in document["residual"]

    def test_residual_bytes_match_the_direct_path(self):
        output = serve_bytes(
            {"id": "g", "source": GCD, "specs": ["48", "18"]})
        document = json.loads(output)
        with SpecializationService(workers=0) as service:
            direct = service.run_one(
                SpecRequest.create(GCD, ["48", "18"], id="g"))
        assert document["residual"] == direct.residual

    def test_injected_serve_fault_is_a_structured_line(self):
        install({"seed": 1, "seams": {
            "serve.request": {"kinds": ["error"], "at": [1]}}})
        assert serve_bytes(
            {"id": "f", "source": GCD, "specs": ["48", "18"]}) == (
            '{"error": "internal error: InjectedFault: injected '
            'fault at serve.request (hit 1)", '
            '"id": "f", "ok": false}\n')


def _reader(stream, lines: list, lock) -> None:
    for line in stream:
        with lock:
            lines.append(line)


class TestPipedProcess:
    """A real ``ppe serve`` child on real pipes: the flush contract.

    The consumer writes one line, then *waits* for its answer before
    writing the next.  If any response sat unflushed in the child's
    stdio buffer, this handshake would deadlock — the timeout turns
    that into a failure instead of a hang."""

    def _spawn(self, *extra: str) -> subprocess.Popen:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--workers", "0", *extra],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, env=env)

    def _handshake(self, child, payload: dict, lines: list,
                   lock, expect: int, timeout: float = 30.0) -> dict:
        child.stdin.write(json.dumps(payload) + "\n")
        child.stdin.flush()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with lock:
                if len(lines) >= expect:
                    return json.loads(lines[expect - 1])
            time.sleep(0.01)
        child.kill()
        raise AssertionError(
            f"no response line {expect} within {timeout}s — "
            f"the serve loop is not flushing")

    def test_every_response_is_flushed_promptly(self):
        child = self._spawn()
        lines: list[str] = []
        lock = threading.Lock()
        reader = threading.Thread(
            target=_reader, args=(child.stdout, lines, lock),
            daemon=True)
        reader.start()
        try:
            first = self._handshake(
                child, {"id": "a", "source": GCD,
                        "specs": ["48", "18"]}, lines, lock, 1)
            assert first["id"] == "a"
            health = self._handshake(child, {"op": "health"},
                                     lines, lock, 2)
            assert health["ok"] is True and "breakers" in \
                health["health"]
            stats = self._handshake(child, {"op": "stats"},
                                    lines, lock, 3)
            assert stats["stats"]["completed"] == 1
            bye = self._handshake(child, {"op": "shutdown"},
                                  lines, lock, 4)
            assert bye == {"ok": True, "op": "shutdown"}
            assert child.wait(timeout=30) == 0
        finally:
            if child.poll() is None:
                child.kill()
            child.stdin.close()

    def test_health_is_answered_in_band_between_slow_requests(self):
        plan = json.dumps({"seed": 1, "seams": {
            "worker.execute": {"kinds": ["latency"], "every": 1,
                               "latency_seconds": 0.2}}})
        child = self._spawn("--fault-plan", plan)
        lines: list[str] = []
        lock = threading.Lock()
        threading.Thread(target=_reader,
                         args=(child.stdout, lines, lock),
                         daemon=True).start()
        try:
            # Write a slow request AND the health op back to back
            # without waiting: both must be answered, in order.
            child.stdin.write(json.dumps(
                {"id": "slow", "source": GCD,
                 "specs": ["48", "18"]}) + "\n")
            child.stdin.write(json.dumps({"op": "health"}) + "\n")
            child.stdin.flush()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                with lock:
                    if len(lines) >= 2:
                        break
                time.sleep(0.01)
            with lock:
                captured = list(lines)
            assert len(captured) >= 2, "serve answered fewer than 2"
            assert json.loads(captured[0])["id"] == "slow"
            assert json.loads(captured[1])["ok"] is True
            child.stdin.write(json.dumps({"op": "shutdown"}) + "\n")
            child.stdin.flush()
            assert child.wait(timeout=30) == 0
        finally:
            if child.poll() is None:
                child.kill()
            child.stdin.close()


class TestServiceHealthConcurrency:
    """Satellite: ``health()`` must not serialize behind a wave."""

    def test_health_returns_while_run_batch_grinds(self):
        install({"seed": 1, "seams": {
            "worker.execute": {"kinds": ["latency"], "at": [1],
                               "latency_seconds": 0.5}}})
        with SpecializationService(workers=0) as service:
            started = threading.Event()

            def grind():
                started.set()
                service.run_batch([SpecRequest.create(
                    GCD, ["48", "18"], id="grind")])

            thread = threading.Thread(target=grind)
            thread.start()
            started.wait(5)
            time.sleep(0.1)       # the wave is inside the 0.5s sleep
            began = time.monotonic()
            health = service.health()
            elapsed = time.monotonic() - began
            thread.join(timeout=30)
        assert "breakers" in health
        assert elapsed < 0.25, \
            f"health() blocked {elapsed:.3f}s behind the wave"
