"""Admission control and per-client state, on a fake clock."""

from __future__ import annotations

import pytest

from repro.gateway.admission import (AdmissionController, LANE_HIGH,
                                     LANE_NORMAL)
from repro.gateway.client_state import ClientTable, TokenBucket


class Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = Clock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] \
            == [True, True, True, False]
        clock.advance(0.5)        # 1 token back
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = Clock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_seconds_until_is_the_refill_time(self):
        clock = Clock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_take()
        assert bucket.seconds_until(1.0) == pytest.approx(0.5)
        clock.advance(0.25)
        assert bucket.seconds_until(1.0) == pytest.approx(0.25)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestClientTable:
    def test_anonymous_shares_one_bucket(self):
        table = ClientTable(quota_rate=1.0, clock=Clock())
        assert table.state(None) is table.state("anonymous")
        assert len(table) == 1

    def test_lru_eviction_is_bounded(self):
        table = ClientTable(max_clients=2, clock=Clock())
        for key in ("a", "b", "c"):
            table.state(key)
        assert len(table) == 2
        assert table.evictions == 1
        # "a" was evicted; touching it again recreates fresh state.
        assert table.state("a").admitted == 0

    def test_no_quota_means_no_buckets(self):
        table = ClientTable(clock=Clock())
        assert table.state("k").bucket is None


class TestAdmission:
    def test_queue_full_sheds_then_release_recovers(self):
        control = AdmissionController(max_queue=2, high_reserve=0,
                                      clock=Clock())
        assert control.try_admit("a").admitted
        assert control.try_admit("a").admitted
        decision = control.try_admit("a")
        assert not decision.admitted
        assert decision.reason == "queue-full"
        assert decision.retry_after >= 0.05
        control.release()
        assert control.try_admit("a").admitted
        assert control.inflight == 2
        assert control.high_watermark == 2
        assert control.shed_queue == 1

    def test_quota_sheds_with_refill_hint_and_recovers(self):
        clock = Clock()
        control = AdmissionController(max_queue=100, quota_rate=1.0,
                                      quota_burst=2.0, clock=clock)
        assert control.try_admit("k").admitted
        assert control.try_admit("k").admitted
        decision = control.try_admit("k")
        assert not decision.admitted
        assert decision.reason == "quota"
        assert decision.retry_after == pytest.approx(1.0, abs=0.01)
        # Quota sheds take no queue slot.
        assert control.inflight == 2
        # Another client is unaffected.
        assert control.try_admit("other").admitted
        clock.advance(1.0)
        assert control.try_admit("k").admitted

    def test_batches_admit_all_or_nothing(self):
        control = AdmissionController(max_queue=3, high_reserve=0,
                                      clock=Clock())
        assert control.try_admit("a", count=2).admitted
        decision = control.try_admit("a", count=2)
        assert not decision.admitted and decision.count == 2
        assert control.inflight == 2
        assert control.try_admit("a", count=1).admitted

    def test_batch_quota_is_all_or_nothing_too(self):
        control = AdmissionController(max_queue=100, quota_rate=1.0,
                                      quota_burst=3.0, clock=Clock())
        assert not control.try_admit("k", count=4).admitted
        # The failed take burned no tokens.
        assert control.try_admit("k", count=3).admitted

    def test_priority_lane_has_reserve_headroom(self):
        control = AdmissionController(max_queue=2, high_reserve=1,
                                      priority_keys=("vip",),
                                      clock=Clock())
        assert control.lane_of("vip") == LANE_HIGH
        assert control.lane_of("pleb") == LANE_NORMAL
        assert control.lane_of(None) == LANE_NORMAL
        assert control.try_admit("a").admitted
        assert control.try_admit("b").admitted
        # Normal lane is full; the high lane still gets the reserve.
        assert not control.try_admit("c").admitted
        vip = control.try_admit("vip")
        assert vip.admitted and vip.lane == LANE_HIGH
        # The reserve itself is bounded.
        assert not control.try_admit("vip").admitted

    def test_retry_after_tracks_service_time(self):
        control = AdmissionController(max_queue=1, high_reserve=0,
                                      clock=Clock())
        assert control.try_admit("a").admitted
        slow = control.try_admit("a").retry_after
        control.release(seconds=10.0)
        assert control.try_admit("a").admitted
        slower = control.try_admit("a").retry_after
        assert slower > slow
        assert slower <= 30.0

    def test_snapshot_counts(self):
        control = AdmissionController(max_queue=1, high_reserve=0,
                                      quota_rate=100.0, clock=Clock())
        control.try_admit("a")
        control.try_admit("a")            # queue-full
        control.release(seconds=0.01)
        snapshot = control.snapshot()
        assert snapshot["admitted"] == 1
        assert snapshot["released"] == 1
        assert snapshot["shed_queue"] == 1
        assert snapshot["shed_quota"] == 0
        assert snapshot["inflight"] == 0
        assert snapshot["high_watermark"] == 1
        assert snapshot["clients"]["clients"] == 1

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=1, high_reserve=-1)
        control = AdmissionController(max_queue=1)
        with pytest.raises(ValueError):
            control.try_admit("a", count=0)
