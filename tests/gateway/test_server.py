"""End-to-end gateway behavior over real sockets."""

from __future__ import annotations

import threading
import time

from repro.gateway.core import encode_response
from repro.service import SpecializationService
from repro.service.results import SpecRequest

from tests.gateway.conftest import (GCD, HttpClient, http,
                                    specialize_payload)

SLOW_WORKER_PLAN = {"seed": 1, "seams": {
    "worker.execute": {"kinds": ["latency"], "every": 1,
                       "latency_seconds": 0.5}}}


class TestRoutes:
    def test_health(self, gateway_factory):
        harness = gateway_factory()
        response = http(harness.port, "GET", "/v1/health")
        assert response.status == 200
        payload = response.json
        assert payload["ok"] is True
        assert "breakers" in payload["health"]
        assert "quarantine" in payload["health"]

    def test_stats_carries_the_gateway_section(self, gateway_factory):
        harness = gateway_factory()
        http(harness.port, "POST", "/v1/specialize",
             specialize_payload(id="warm"))
        response = http(harness.port, "GET", "/v1/stats")
        assert response.status == 200
        gateway = response.json["stats"]["gateway"]
        assert gateway["admitted"] == 1
        assert gateway["completed"] == 1
        assert gateway["responses_by_status"]["200"] >= 1
        assert gateway["admission"]["max_queue"] == 64
        assert gateway["admission"]["inflight"] == 0

    def test_unknown_path_404(self, gateway_factory):
        harness = gateway_factory()
        response = http(harness.port, "GET", "/v2/nope")
        assert response.status == 404
        assert response.json["ok"] is False

    def test_wrong_method_405_with_allow(self, gateway_factory):
        harness = gateway_factory()
        response = http(harness.port, "GET", "/v1/specialize")
        assert response.status == 405
        assert response.headers["allow"] == "POST"
        response = http(harness.port, "POST", "/v1/health")
        assert response.status == 405
        assert response.headers["allow"] == "GET"


class TestSpecialize:
    def test_single_result_matches_blocking_path_bytes(
            self, gateway_factory):
        harness = gateway_factory()
        response = http(harness.port, "POST", "/v1/specialize",
                        specialize_payload(id="g"))
        assert response.status == 200
        document = response.json
        assert document["id"] == "g"
        assert not document["degraded"]
        assert "(define (gcd) 6)" in document["residual"]
        # The HTTP body is the serve loop's canonical JSONL line.
        assert response.body == \
            (encode_response(document) + "\n").encode()
        # Residual bytes match the blocking path exactly.
        with SpecializationService(workers=0) as reference:
            direct = reference.run_one(
                SpecRequest.create(GCD, ["48", "18"], id="g"))
        assert document["residual"] == direct.residual

    def test_batch_preserves_order_and_answers_invalid_in_band(
            self, gateway_factory):
        harness = gateway_factory()
        response = http(harness.port, "POST", "/v1/specialize", {
            "requests": [
                specialize_payload(id="a"),
                {"id": "broken", "specs": ["dyn"]},   # no source
                specialize_payload(id="b", specs=("50", "15")),
                "not an object",
            ]})
        assert response.status == 200
        payload = response.json
        assert payload["ok"] is True
        results = payload["results"]
        assert len(results) == 4
        assert results[0]["id"] == "a" and "residual" in results[0]
        assert results[1] == {
            "ok": False, "id": "broken",
            "error": "request needs exactly one of 'source' or "
                     "'file'"}
        assert results[2]["id"] == "b"
        assert results[3]["ok"] is False
        # Invalid entries released their queue slots.
        stats = http(harness.port, "GET", "/v1/stats").json
        assert stats["stats"]["gateway"]["admission"]["inflight"] == 0

    def test_invalid_single_request_is_400(self, gateway_factory):
        harness = gateway_factory()
        response = http(harness.port, "POST", "/v1/specialize",
                        {"id": "x", "specs": ["dyn"]})
        assert response.status == 400
        assert response.json == {
            "ok": False, "id": "x",
            "error": "request needs exactly one of 'source' or "
                     "'file'"}

    def test_bad_json_body_is_400(self, gateway_factory):
        harness = gateway_factory()
        response = http(harness.port, "POST", "/v1/specialize",
                        raw_body=b"{nope")
        assert response.status == 400
        assert response.json["error"].startswith("bad JSON:")
        response = http(harness.port, "POST", "/v1/specialize",
                        raw_body=b"[1, 2]")
        assert response.status == 400
        assert response.json["error"] == "expected a JSON object"

    def test_empty_and_oversized_batches_rejected(
            self, gateway_factory):
        harness = gateway_factory(batch_limit=2)
        assert http(harness.port, "POST", "/v1/specialize",
                    {"requests": []}).status == 400
        response = http(harness.port, "POST", "/v1/specialize",
                        {"requests": [specialize_payload()] * 3})
        assert response.status == 400
        assert "cap" in response.json["error"]


class TestConnections:
    def test_keep_alive_serves_many_requests(self, gateway_factory):
        harness = gateway_factory()
        client = HttpClient(harness.port)
        try:
            for index in range(3):
                response = client.request(
                    "POST", "/v1/specialize",
                    specialize_payload(id=f"k{index}"))
                assert response.status == 200
                assert response.json["id"] == f"k{index}"
            assert http(harness.port, "GET", "/v1/stats")
        finally:
            client.close()

    def test_connection_close_honored(self, gateway_factory):
        harness = gateway_factory()
        client = HttpClient(harness.port)
        try:
            response = client.request("GET", "/v1/health",
                                      headers={"Connection": "close"})
            assert response.status == 200
            assert client.closed_by_peer()
        finally:
            client.close()

    def test_malformed_http_answers_400_and_closes(
            self, gateway_factory):
        harness = gateway_factory()
        client = HttpClient(harness.port)
        try:
            response = client.send_raw(b"NOT HTTP AT ALL\r\n\r\n")
            assert response.status == 400
            assert response.headers["connection"] == "close"
            assert client.closed_by_peer()
        finally:
            client.close()
        # The server survives to answer the next connection.
        assert http(harness.port, "GET", "/v1/health").status == 200

    def test_oversized_body_is_413(self, gateway_factory):
        harness = gateway_factory(max_body_bytes=128)
        response = http(harness.port, "POST", "/v1/specialize",
                        raw_body=b"x" * 1000)
        assert response.status == 413


class TestBackpressure:
    def test_queue_full_sheds_429_then_recovers(self,
                                                gateway_factory):
        service = SpecializationService(
            workers=0, fault_plan={"seed": 1, "seams": {
                "worker.execute": {"kinds": ["latency"], "at": [1],
                                   "latency_seconds": 1.0}}})
        try:
            harness = gateway_factory(service=service, max_queue=1,
                                      high_reserve=0)
            slow_response = {}

            def slow():
                slow_response["response"] = http(
                    harness.port, "POST", "/v1/specialize",
                    specialize_payload(id="slow"))

            thread = threading.Thread(target=slow)
            thread.start()
            time.sleep(0.3)       # the slow job is admitted + running
            shed = http(harness.port, "POST", "/v1/specialize",
                        specialize_payload(id="shed"))
            assert shed.status == 429
            assert shed.json["reason"] == "queue-full"
            assert shed.json["retry_after"] > 0
            assert int(shed.headers["retry-after"]) >= 1
            thread.join(timeout=30)
            assert slow_response["response"].status == 200
            # The slot was released: new work is admitted again.
            after = http(harness.port, "POST", "/v1/specialize",
                         specialize_payload(id="after"))
            assert after.status == 200
        finally:
            service.close()

    def test_quota_sheds_429_per_client(self, gateway_factory):
        harness = gateway_factory(quota_rate=0.001, quota_burst=2)
        key = {"X-API-Key": "greedy"}
        for index in range(2):
            assert http(harness.port, "POST", "/v1/specialize",
                        specialize_payload(id=f"q{index}"),
                        headers=key).status == 200
        shed = http(harness.port, "POST", "/v1/specialize",
                    specialize_payload(id="q2"), headers=key)
        assert shed.status == 429
        assert shed.json["reason"] == "quota"
        assert "retry-after" in shed.headers
        # A different client still gets in.
        assert http(harness.port, "POST", "/v1/specialize",
                    specialize_payload(id="other"),
                    headers={"X-API-Key": "patient"}).status == 200
        stats = http(harness.port, "GET", "/v1/stats").json
        gateway = stats["stats"]["gateway"]
        assert gateway["shed_quota"] == 1
        assert gateway["admission"]["clients"]["clients"] >= 2

    def test_priority_key_rides_the_reserve(self, gateway_factory):
        service = SpecializationService(
            workers=0, fault_plan={"seed": 1, "seams": {
                "worker.execute": {"kinds": ["latency"], "at": [1],
                                   "latency_seconds": 1.0}}})
        try:
            harness = gateway_factory(service=service, max_queue=1,
                                      high_reserve=1,
                                      priority_keys=("vip",))
            responses = {}

            def post(tag, headers=None):
                responses[tag] = http(
                    harness.port, "POST", "/v1/specialize",
                    specialize_payload(id=tag), headers=headers)

            thread = threading.Thread(target=post, args=("slow",))
            thread.start()
            time.sleep(0.3)
            post("normal")        # queue full for the normal lane
            post("vip", {"X-API-Key": "vip"})   # reserve admits it
            thread.join(timeout=30)
            assert responses["normal"].status == 429
            assert responses["vip"].status == 200
            assert responses["slow"].status == 200
        finally:
            service.close()


class TestConcurrency:
    def test_health_answers_while_a_wave_is_in_flight(
            self, gateway_factory):
        service = SpecializationService(workers=0,
                                        fault_plan=SLOW_WORKER_PLAN)
        try:
            harness = gateway_factory(service=service)

            def slow():
                http(harness.port, "POST", "/v1/specialize",
                     specialize_payload(id="grinding"))

            thread = threading.Thread(target=slow)
            thread.start()
            time.sleep(0.15)      # the wave is grinding (0.5 s)
            began = time.monotonic()
            response = http(harness.port, "GET", "/v1/health")
            elapsed = time.monotonic() - began
            thread.join(timeout=30)
            assert response.status == 200
            # Health never enters the admission queue: it answered
            # well inside the wave's 0.5 s grind.
            assert elapsed < 0.3, \
                f"health took {elapsed:.3f}s behind a wave"
        finally:
            service.close()


class TestStreaming:
    def test_event_sequence_and_byte_identical_result(
            self, gateway_factory):
        harness = gateway_factory()
        response = http(harness.port, "POST",
                        "/v1/specialize?stream=1",
                        specialize_payload(id="s"))
        assert response.status == 200
        assert response.chunked
        assert response.headers["content-type"] \
            == "application/x-ndjson"
        events = response.events
        assert [event["event"] for event in events] \
            == ["queued", "started", "done"]
        assert all(event["id"] == "s" and event["index"] == 0
                   for event in events)
        document = events[-1]["result"]
        assert "(define (gcd) 6)" in document["residual"]
        # The embedded result is the same canonical document the
        # buffered path answers.
        with SpecializationService(workers=0) as reference:
            direct = reference.run_one(
                SpecRequest.create(GCD, ["48", "18"], id="s"))
        assert document["residual"] == direct.residual

    def test_stream_flag_in_body(self, gateway_factory):
        harness = gateway_factory()
        response = http(harness.port, "POST", "/v1/specialize",
                        specialize_payload(id="sb", stream=True))
        assert response.chunked
        assert [event["event"] for event in response.events] \
            == ["queued", "started", "done"]

    def test_streamed_batch_with_invalid_entry(self,
                                               gateway_factory):
        harness = gateway_factory()
        response = http(harness.port, "POST",
                        "/v1/specialize?stream=1", {
                            "requests": [
                                specialize_payload(id="ok1"),
                                {"id": "bad", "specs": ["dyn"]},
                                specialize_payload(
                                    id="ok2", specs=("50", "15")),
                            ]})
        events = response.events
        by_index = {}
        for event in events:
            by_index.setdefault(event["index"], []).append(
                event["event"])
        assert by_index[1] == ["error"]
        assert by_index[0][0] == "queued" \
            and by_index[0][-1] == "done"
        assert by_index[2][0] == "queued" \
            and by_index[2][-1] == "done"
        done = {event["index"]: event["result"]["id"]
                for event in events if event["event"] == "done"}
        assert done == {0: "ok1", 2: "ok2"}
        stats = http(harness.port, "GET", "/v1/stats").json
        gateway = stats["stats"]["gateway"]
        assert gateway["streamed"] == 1
        assert gateway["events_streamed"] >= 7
        assert gateway["admission"]["inflight"] == 0

    def test_retrying_events_stream_on_crash_retry(
            self, gateway_factory):
        service = SpecializationService(
            workers=0, backoff_base=0.0, sleep=lambda _s: None,
            fault_plan={"seed": 1, "seams": {
                "worker.execute": {"kinds": ["crash"], "at": [1]}}})
        try:
            harness = gateway_factory(service=service)
            response = http(harness.port, "POST",
                            "/v1/specialize?stream=1",
                            specialize_payload(id="r"))
            kinds = [event["event"] for event in response.events]
            assert kinds == ["queued", "started", "retrying", "done"]
        finally:
            service.close()
