"""The HTTP framing layer, unit-tested against in-memory streams."""

from __future__ import annotations

import asyncio

import pytest

from repro.gateway.protocol import (
    MAX_HEADER_COUNT, ProtocolError, chunk_bytes, chunked_head_bytes,
    json_response_bytes, last_chunk_bytes, read_request,
    response_bytes)


def parse(raw: bytes, limit: int = 2 ** 16,
          max_body_bytes: int = 2 ** 20):
    async def go():
        reader = asyncio.StreamReader(limit=limit)
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader,
                                  max_body_bytes=max_body_bytes)
    return asyncio.run(go())


def error_status(raw: bytes, **kwargs) -> int:
    with pytest.raises(ProtocolError) as info:
        parse(raw, **kwargs)
    return info.value.status


class TestParsing:
    def test_get_with_query(self):
        request = parse(b"GET /v1/stats?stream=1&x=a%20b HTTP/1.1\r\n"
                        b"Host: h\r\nX-API-Key: k1\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/stats"
        assert request.query == {"stream": "1", "x": "a b"}
        assert request.header("x-api-key") == "k1"
        assert request.header("X-API-Key") == "k1"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body(self):
        request = parse(b"POST /v1/specialize HTTP/1.1\r\n"
                        b"Content-Length: 4\r\n"
                        b"Connection: close\r\n\r\nwxyz")
        assert request.method == "POST"
        assert request.body == b"wxyz"
        assert not request.keep_alive

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_bare_lf_line_endings_accepted(self):
        request = parse(b"GET /v1/health HTTP/1.1\nHost: h\n\n")
        assert request.path == "/v1/health"

    def test_json_text_replaces_bad_bytes(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n"
                        b"\r\n\xff\xfe")
        assert "�" in request.json_text()


class TestMalformed:
    def test_garbage_request_line(self):
        assert error_status(b"GARBAGE\r\n\r\n") == 400

    def test_wrong_protocol(self):
        assert error_status(b"GET / SPDY/3\r\n\r\n") == 400

    def test_lowercase_method(self):
        assert error_status(b"get / HTTP/1.1\r\n\r\n") == 400

    def test_eof_inside_headers(self):
        assert error_status(b"GET / HTTP/1.1\r\nHost: h\r\n") == 400

    def test_header_without_colon(self):
        assert error_status(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n") \
            == 400

    def test_bad_content_length(self):
        assert error_status(b"POST / HTTP/1.1\r\n"
                            b"Content-Length: ten\r\n\r\n") == 400

    def test_negative_content_length(self):
        assert error_status(b"POST / HTTP/1.1\r\n"
                            b"Content-Length: -5\r\n\r\n") == 400

    def test_body_past_cap_is_413(self):
        assert error_status(b"POST / HTTP/1.1\r\n"
                            b"Content-Length: 1000\r\n\r\n" + b"x" * 1000,
                            max_body_bytes=64) == 413

    def test_chunked_request_body_is_411(self):
        assert error_status(b"POST / HTTP/1.1\r\n"
                            b"Transfer-Encoding: chunked\r\n\r\n") \
            == 411

    def test_too_many_headers_is_431(self):
        headers = "".join(f"H{i}: v\r\n"
                          for i in range(MAX_HEADER_COUNT + 1))
        raw = b"GET / HTTP/1.1\r\n" + headers.encode() + b"\r\n"
        assert error_status(raw) == 431

    def test_oversized_header_block_is_431(self):
        raw = (b"GET / HTTP/1.1\r\n"
               b"X-Big: " + b"v" * (40 * 1024) + b"\r\n\r\n")
        assert error_status(raw) == 431

    def test_overlong_line_at_stream_limit_is_431(self):
        raw = b"GET /" + b"x" * 4096 + b" HTTP/1.1\r\n\r\n"
        assert error_status(raw, limit=1024) == 431


class TestResponses:
    def test_fixed_length_bytes_pinned(self):
        assert response_bytes(200, b"hi", content_type="text/plain") \
            == (b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain\r\n"
                b"Content-Length: 2\r\n\r\nhi")

    def test_json_bytes_pinned_and_canonical(self):
        raw = json_response_bytes(429, {"ok": False, "a": 1},
                                  extra_headers=(("Retry-After",
                                                  "2"),))
        assert raw == (b"HTTP/1.1 429 Too Many Requests\r\n"
                       b"Content-Type: application/json\r\n"
                       b"Content-Length: 22\r\n"
                       b"Retry-After: 2\r\n\r\n"
                       b'{"a": 1, "ok": false}\n')

    def test_chunked_framing_pinned(self):
        assert chunked_head_bytes() == (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n")
        assert chunk_bytes(b"0123456789abcdef") \
            == b"10\r\n0123456789abcdef\r\n"
        assert last_chunk_bytes() == b"0\r\n\r\n"
