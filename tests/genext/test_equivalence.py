"""Fused genext residuals are byte-identical to cogen's and offline's.

All three tiers consume the same generalized-pattern analysis, so
their residuals must agree to the byte — the invariant that lets the
service answer from whichever tier is warm without changing results.
The fused compiled path (``specialize_compiled``) is additionally
checked against the interpreter on sample dynamic arguments.
"""

from __future__ import annotations

import pytest

from repro.facets.abstract.vector import AbstractSuite
from repro.genext import emit_genext, load_genext
from repro.genext.emit import default_suite, generalized_pattern
from repro.lang.interp import Interpreter
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.values import Vector, values_approx_equal
from repro.offline.analysis import analyze
from repro.offline.cogen import GeneratingExtension
from repro.offline.specializer import OfflineSpecializer
from repro.service.specs import parse_specs
from repro.workloads import WORKLOADS

CORPUS = (
    ("power", ("dyn", "5")),
    ("power", ("dyn", "11")),
    ("inner_product", ("size=4", "size=4")),
    ("inner_product", ("size=9", "size=9")),
    ("poly_eval", ("size=5", "dyn")),
    ("binary_search", ("size=7", "dyn")),
    ("gcd", ("270", "192")),
    ("alternating_sum", ("size=6",)),
)


def _tiers(source: str, specs: tuple[str, ...]):
    """One generalized analysis shared by all three tiers (exactly the
    worker's arrangement)."""
    program = parse_program(source)
    suite = default_suite()
    abstract = AbstractSuite(suite)
    pattern, _, _ = generalized_pattern(suite, abstract, list(specs))
    analysis = analyze(program, list(pattern), abstract)
    inputs = parse_specs(suite, list(specs))
    offline = OfflineSpecializer(analysis, suite).specialize(inputs)
    cogen = GeneratingExtension(analysis, suite).specialize(inputs)
    module = load_genext(
        emit_genext(source, list(specs)).python_source)
    fused = module.specialize_specs(list(specs))
    return offline, cogen, fused, module


@pytest.mark.parametrize("workload,specs", CORPUS,
                         ids=lambda value: str(value))
def test_residuals_are_byte_identical(workload, specs):
    source = WORKLOADS[workload].source
    offline, cogen, fused, _module = _tiers(source, specs)
    baseline = pretty_program(offline.program)
    assert pretty_program(cogen.program) == baseline
    assert pretty_program(fused.program) == baseline


def test_compiled_path_agrees_with_interpreter():
    source = WORKLOADS["inner_product"].source
    specs = ("size=4", "size=4")
    _offline, _cogen, fused, module = _tiers(source, specs)
    inputs = parse_specs(module.runtime.online, list(specs))
    result, compiled = module.specialize_compiled(inputs)
    assert pretty_program(result.program) \
        == pretty_program(fused.program)
    left = Vector.of((1.0, 2.0, 3.0, 4.0))
    right = Vector.of((5.0, 6.0, 7.0, 8.0))
    want = Interpreter(fused.program).run(left, right)
    got = compiled.run(left, right)
    assert values_approx_equal(want, got)
    artifact = compiled.artifact()
    assert set(artifact) >= {"entries", "fingerprint", "goal",
                             "python"}


def test_fused_stats_match_cogen():
    """The decision trace (facet evaluations) is preserved by fusion:
    the emitted module executes the same decisions, just without the
    annotated-AST dispatch."""
    source = WORKLOADS["power"].source
    offline, cogen, fused, _module = _tiers(source, ("dyn", "10"))
    assert fused.stats.facet_evaluations \
        == cogen.stats.facet_evaluations \
        == offline.stats.facet_evaluations
