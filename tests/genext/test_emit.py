"""Emission unit tests and golden snapshots of the fused genext.

The emitted module *is* the artifact the store amortizes, so its text
is pinned the same way ``tests/backend/test_golden_emitted.py`` pins
backend output: snapshots under ``tests/genext/snapshots/``,
regenerated with ``pytest --update-golden`` (the shared root-conftest
option).  The equivalence and differential suites — not these
snapshots — guarantee the emitted code *means* the right thing; a
snapshot diff is a prompt for review.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.genext import emit_genext, load_genext
from repro.genext.emit import genext_store_key
from repro.lang.pretty import pretty_program
from repro.workloads import WORKLOADS

SNAPSHOT_DIR = Path(__file__).parent / "snapshots"


@dataclass(frozen=True)
class Case:
    name: str
    workload: str
    specs: tuple[str, ...]


#: One case per division idiom: static literal (a whole pattern class
#: of exponents), size-facet specs, fully static inputs, and a
#: size-pinned search with a dynamic key.
CASES = (
    Case("power_class", "power", ("dyn", "10")),
    Case("inner_product_size3", "inner_product", ("size=3", "size=3")),
    Case("gcd_static", "gcd", ("48", "18")),
    Case("binary_search_size7", "binary_search", ("size=7", "dyn")),
)


def _emit(case: Case):
    return emit_genext(WORKLOADS[case.workload].source,
                       list(case.specs))


@pytest.fixture(scope="session")
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.mark.parametrize("case", CASES, ids=lambda case: case.name)
def test_emitted_python_matches_snapshot(case, update_golden):
    text = _emit(case).python_source
    if not text.endswith("\n"):
        text += "\n"
    path = SNAPSHOT_DIR / f"{case.name}.py"
    if update_golden:
        SNAPSHOT_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return
    assert path.exists(), \
        f"missing snapshot {path.name}; run pytest --update-golden"
    assert text == path.read_text(encoding="utf-8"), \
        f"emitted genext for {case.name} drifted from its snapshot"


def test_no_orphan_snapshots():
    expected = {f"{case.name}.py" for case in CASES}
    present = {path.name for path in SNAPSHOT_DIR.glob("*.py")}
    assert present == expected, \
        f"orphans: {sorted(present - expected)}; " \
        f"missing: {sorted(expected - present)}"


def test_emission_is_deterministic():
    case = CASES[0]
    assert _emit(case).python_source == _emit(case).python_source


def test_loaded_module_specializes():
    emitted = _emit(Case("", "power", ("dyn", "10")))
    module = load_genext(emitted.python_source)
    result = module.specialize_specs(["dyn", "10"])
    text = pretty_program(result.program)
    assert "(define (power x)" in text
    assert module.MANIFEST["main"] == "power"
    assert module.MANIFEST["pattern_fp"] == emitted.pattern_fingerprint


def test_literals_share_a_pattern_class():
    """Every static exponent maps to the same generalized pattern, so
    one emitted module (one store row) serves them all."""
    five = emit_genext(WORKLOADS["power"].source, ["dyn", "5"])
    nine = emit_genext(WORKLOADS["power"].source, ["dyn", "9"])
    assert five.pattern_fingerprint == nine.pattern_fingerprint
    assert five.store_key == nine.store_key
    assert five.python_source == nine.python_source


def test_store_key_excludes_specs_but_not_config():
    """The store key is per ``(source, engine config)`` — the
    amortization unit — while the *pattern* distinguishes divisions
    within it."""
    source = WORKLOADS["power"].source
    base = emit_genext(source, ["dyn", "10"])
    flipped = emit_genext(source, ["10", "dyn"])
    assert flipped.store_key == base.store_key
    assert flipped.pattern_fingerprint != base.pattern_fingerprint

    configured = emit_genext(source, ["dyn", "10"],
                             config={"unfold_fuel": 9})
    assert configured.store_key != base.store_key


def test_store_key_is_config_order_insensitive():
    source = WORKLOADS["power"].source
    sha = emit_genext(source, ["dyn", "10"]).source_sha256
    facets = emit_genext(source, ["dyn", "10"]).facets
    left = genext_store_key(sha, {"unfold_fuel": 9, "tidy": True},
                            facets)
    right = genext_store_key(sha, {"tidy": True, "unfold_fuel": 9},
                             facets)
    assert left == right


def test_different_sources_get_different_keys():
    power = emit_genext(WORKLOADS["power"].source, ["dyn", "10"])
    gcd = emit_genext(WORKLOADS["gcd"].source, ["48", "18"])
    assert power.store_key != gcd.store_key
