"""Engine ``genext`` through the full service stack.

The scheduler treats ``genext`` like any other engine; the tiering
lives in the worker and reports back through ``outcome["tiers"]``,
which these tests pin end to end: counters land in ``ServiceStats``
(the ``--profile`` surface), the persistent store gains ``genext``
rows next to ``result`` rows, and the compiled backend rides the
fused path (the worker ships the artifact, the scheduler does not
re-compile).
"""

from __future__ import annotations

from repro.service import SpecRequest, SpecializationService
from repro.store import ArtifactStore
from repro.workloads import WORKLOADS

SOURCE = WORKLOADS["power"].source


def _request(specs=("dyn", "10"), **kwargs):
    return SpecRequest.create(SOURCE, specs, engine="genext", **kwargs)


class TestEngine:
    def test_matches_offline_residual(self):
        service = SpecializationService(workers=0)
        genext, offline = service.run_batch([
            _request(),
            SpecRequest.create(SOURCE, ("dyn", "10"),
                               engine="offline")])
        assert not genext.degraded and not offline.degraded
        assert genext.engine == "genext"
        assert genext.residual == offline.residual
        assert genext.goal_params == offline.goal_params

    def test_tier_counters_reach_profile_surface(self):
        service = SpecializationService(workers=0)
        specs = [("dyn", str(n)) for n in (5, 7, 9, 11)]
        results = service.run_batch([_request(s) for s in specs])
        assert all(not r.degraded for r in results)
        snapshot = service.stats.as_dict()
        # One emission covers the whole pattern class; the other
        # three requests hit the in-memory module cache.
        assert snapshot["genext"]["emits"] == 1
        assert snapshot["genext"]["hits"] == 3
        assert snapshot["genext"]["store_writes"] == 0  # no store

    def test_module_cache_survives_service_restart(self):
        SpecializationService(workers=0).run_one(_request())
        fresh = SpecializationService(workers=0)
        fresh.run_one(_request(("dyn", "23")))
        assert fresh.stats.genext_hits == 1
        assert fresh.stats.genext_emits == 0

    def test_bad_program_degrades_not_raises(self):
        service = SpecializationService(workers=0)
        result = service.run_one(SpecRequest.create(
            "(define (f x) (undefined-op x))", ("dyn",),
            engine="genext"))
        assert result.degraded
        assert service.stats.errors == 1


class TestStoreIntegration:
    def test_store_gains_genext_rows(self, tmp_path):
        path = tmp_path / "s.db"
        service = SpecializationService(workers=0,
                                        store_path=path)
        result = service.run_one(_request())
        assert not result.degraded
        assert service.stats.genext_store_writes == 1
        service.close()
        with ArtifactStore(path) as store:
            kinds = store.kinds()
        # One genext bundle plus the request's own result row.
        assert kinds["genext"] == 1
        assert kinds["result"] == 1

    def test_cold_worker_loads_from_store(self, tmp_path,
                                          clean_worker_tiers):
        path = tmp_path / "s.db"
        warm = SpecializationService(workers=0, store_path=path)
        warm.run_one(_request())
        warm.close()

        from tests.genext.conftest import _reset_worker_tiers
        _reset_worker_tiers()

        cold = SpecializationService(workers=0, store_path=path)
        # A different spec vector, same pattern class: the residual
        # cache misses but the genext store row answers.
        result = cold.run_one(_request(("dyn", "17")))
        assert not result.degraded
        assert cold.stats.genext_store_hits == 1
        assert cold.stats.genext_emits == 0
        cold.close()


class TestCompiledBackend:
    def test_worker_ships_the_compiled_artifact(self):
        service = SpecializationService(workers=0,
                                        backend="compiled")
        result = service.run_one(_request())
        assert not result.degraded
        assert result.compiled is not None
        assert set(result.compiled) >= {"entries", "fingerprint",
                                        "goal", "python"}
        # The artifact came from the worker's fused path; the
        # scheduler counted it without re-lowering the residual text.
        assert service.backend_stats.compiles == 1

    def test_interp_backend_ships_no_artifact(self):
        service = SpecializationService(workers=0)
        result = service.run_one(_request())
        assert result.compiled is None


class TestAnalysisMemo:
    def test_offline_engine_reuses_analysis(self):
        service = SpecializationService(workers=0)
        # Same exact abstract pattern twice (identical literal), so
        # the second request reuses the worker's cached analysis.
        requests = [SpecRequest.create(SOURCE, ("dyn", "10"),
                                       engine="offline", id=str(i))
                    for i in range(2)]
        results = service.run_batch(requests)
        assert all(not r.degraded for r in results)
        assert service.stats.analysis_memo_misses == 1
        assert service.stats.analysis_memo_hits == 1

    def test_distinct_literals_are_distinct_patterns(self):
        service = SpecializationService(workers=0)
        requests = [SpecRequest.create(SOURCE, ("dyn", str(n)),
                                       engine="offline")
                    for n in (5, 7)]
        service.run_batch(requests)
        # Different exponents carry different exact facet images, so
        # the offline engine analyzes each (no silent generalization).
        assert service.stats.analysis_memo_misses == 2
        assert service.stats.analysis_memo_hits == 0
