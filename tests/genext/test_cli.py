"""CLI surface of the fused genext: ``ppe cogen`` and ``--engine``.

``ppe cogen emit`` writes the standalone module (the artifact a build
system would check in or ship), ``ppe cogen run`` emits + loads +
specializes in one step, and ``--engine genext`` routes batch work
through the amortization tiers.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.genext import load_genext
from repro.workloads import WORKLOADS


@pytest.fixture
def power_file(tmp_path):
    path = tmp_path / "power.ppe"
    path.write_text(WORKLOADS["power"].source)
    return path


class TestCogenRun:
    def test_prints_residual(self, capsys, power_file):
        assert main(["cogen", "run", str(power_file),
                     "dyn", "10"]) == 0
        captured = capsys.readouterr()
        assert "(define (power x)" in captured.out
        assert "facet evaluations" in captured.err

    def test_matches_offline_command(self, capsys, power_file):
        main(["cogen", "run", str(power_file), "dyn", "8"])
        fused = capsys.readouterr().out
        main(["offline", str(power_file), "dyn", "8"])
        offline = capsys.readouterr().out
        assert fused == offline

    def test_bad_spec_exits_cleanly(self, power_file):
        with pytest.raises(SystemExit):
            main(["cogen", "run", str(power_file), "flavor=hot",
                  "10"])


class TestCogenEmit:
    def test_emitted_file_is_a_working_module(self, capsys, tmp_path,
                                              power_file):
        output = tmp_path / "power_genext.py"
        assert main(["cogen", "emit", str(power_file), "dyn", "10",
                     "--output", str(output)]) == 0
        captured = capsys.readouterr()
        assert "store key:" in captured.err
        assert "pattern:" in captured.err
        module = load_genext(output.read_text(encoding="utf-8"))
        result = module.specialize_specs(["dyn", "10"])
        assert result.program.main.name == "power"

    def test_emit_to_stdout(self, capsys, power_file):
        assert main(["cogen", "emit", str(power_file),
                     "dyn", "10"]) == 0
        out = capsys.readouterr().out
        assert "Generating extension for 'power'" in out


class TestBatchEngine:
    def test_batch_engine_genext(self, capsys, tmp_path, power_file):
        manifest = tmp_path / "batch.json"
        rows = [{"file": str(power_file), "specs": ["dyn", str(n)]}
                for n in (5, 9)]
        manifest.write_text(json.dumps(rows))
        assert main(["batch", str(manifest), "--engine",
                     "genext"]) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert len(payloads) == 2
        assert all(row["engine"] == "genext" for row in payloads)
        assert all("(define (power x)" in row["residual"]
                   for row in payloads)

    def test_explicit_engine_wins_over_flag(self, capsys, tmp_path,
                                            power_file):
        manifest = tmp_path / "batch.json"
        manifest.write_text(json.dumps(
            [{"file": str(power_file), "specs": ["dyn", "5"],
              "engine": "online"}]))
        assert main(["batch", str(manifest), "--engine",
                     "genext"]) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert payloads[0]["engine"] == "online"
