"""Fixtures for the fused generating-extension suite.

The worker keeps process-global amortization tiers (the genext module
cache, the offline analysis memo, open store handles).  Every test in
this package starts and ends with them empty, so tier-hit assertions
are about *this* test's traffic, not a neighbour's.
"""

from __future__ import annotations

import pytest

from repro.service import worker


def _reset_worker_tiers() -> None:
    for store in worker._stores.values():
        if store is not None:
            try:
                store.close()
            except Exception:
                pass
    worker._stores.clear()
    worker._genext_cache.clear()
    worker._analysis_memo.clear()


@pytest.fixture(autouse=True)
def clean_worker_tiers():
    _reset_worker_tiers()
    yield
    _reset_worker_tiers()
