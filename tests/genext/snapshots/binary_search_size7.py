"""Generating extension for 'bsearch' (source sha256 c8bd53f76896…).

Emitted by repro.genext.emit — do not edit.
"""

from repro.lang.ast import Const, Var
from repro.genext.runtime import (
    GenextRuntime, build_if, fold, let_exit,
    residual_call, residual_prim, trigger, unbound,
    _inf, _nan, _vec)

_MANIFEST = {'config': {},
 'facets': ['sign', 'parity', 'interval', 'size'],
 'functions': [{'name': 'bsearch',
                'needed': ['size'],
                'occurrences': {'V': 2, 'key': 1},
                'params': ['V', 'key']},
               {'name': 'walk',
                'needed': [],
                'occurrences': {'V': 4, 'hi': 3, 'key': 4, 'lo': 3},
                'params': ['V', 'key', 'lo', 'hi']}],
 'main': 'bsearch',
 'pattern': [{'kind': 'spec', 'text': 'size=7'}, {'kind': 'dyn'}],
 'pattern_fp': '90a942d335b8a2d84188c0ebe733d4c12e56c26422fea823115c2046a505f108',
 'protocol': 1,
 'source_sha256': 'c8bd53f76896a7072cedab3fb5fee6307d9bfa8678e7a302b5c3fd3f2a71ca9f'}

def _g_0(ctx, a0, a1):
    _t1 = trigger(_pf_0, ctx, 'vsize', (a0, ), _fx_0)
    _t2 = residual_call(_pf_1, ctx, (a0, a1, _k0, _t1, ))
    return _t2

def _b1(ctx):
    return _k1

def _b2(ctx, a0, a1, a2, a3):
    _t1 = fold(_pf_1, ctx, '+', (a2, a3, ))
    _t2 = fold(_pf_1, ctx, 'div', (_t1, _k2, ))
    _e3 = _t2[0]
    if isinstance(_e3, (Const, Var)):
        _lf4 = None
        _lv5 = _t2
    else:
        _lf4 = ctx.fresh('mid')
        _lv5 = (Var(_lf4), _t2[1])
    _t6 = residual_prim(_pf_1, ctx, 'vref', (a0, _lv5, ))
    _t7 = residual_prim(_pf_1, ctx, '=', (_t6, a1, ))
    _t8 = residual_prim(_pf_1, ctx, 'vref', (a0, _lv5, ))
    _t9 = residual_prim(_pf_1, ctx, '<', (_t8, a1, ))
    _t10 = fold(_pf_1, ctx, '+', (_lv5, _k3, ))
    _t11 = residual_call(_pf_1, ctx, (a0, a1, _t10, a3, ))
    _t12 = fold(_pf_1, ctx, '-', (_lv5, _k3, ))
    _t13 = residual_call(_pf_1, ctx, (a0, a1, a2, _t12, ))
    _t14 = build_if(_pf_1, _t9[0], _t11, _t13)
    _t15 = build_if(_pf_1, _t7[0], _lv5, _t14)
    if _lf4 is None:
        _t16 = _t15
    else:
        _t16 = let_exit(_lf4, _e3, _t15)
    return _t16

def _g_1(ctx, a0, a1, a2, a3):
    _t1 = fold(_pf_1, ctx, '>', (a2, a3, ))
    _e2 = _t1[0]
    if isinstance(_e2, Const) and isinstance(_e2.value, bool):
        ctx.stats.if_reductions += 1
        _t3 = _b1(ctx) if _e2.value else _b2(ctx, a0, a1, a2, a3)
    else:
        _t3 = build_if(_pf_1, _e2, _b1(ctx), _b2(ctx, a0, a1, a2, a3))
    return _t3

_FUNCTIONS = {
    'bsearch': _g_0,
    'walk': _g_1
}

_rt = GenextRuntime(_MANIFEST, _FUNCTIONS)
_pf_0 = _rt.profile('bsearch')
_pf_1 = _rt.profile('walk')
_fx_0 = _rt.facet('size')
_k0 = _rt.const_pair('bsearch', 1)
_k1 = _rt.const_pair('walk', 0)
_k2 = _rt.const_pair('walk', 2)
_k3 = _rt.const_pair('walk', 1)

MANIFEST = _MANIFEST
runtime = _rt


def specialize(inputs):
    return _rt.specialize(inputs)


def specialize_specs(specs):
    return _rt.specialize_specs(specs)


def specialize_compiled(inputs):
    return _rt.specialize_compiled(inputs)
