"""Generating extension for 'iprod' (source sha256 27be1100b347…).

Emitted by repro.genext.emit — do not edit.
"""

from repro.lang.ast import Const, Var
from repro.genext.runtime import (
    GenextRuntime, build_if, fold, let_exit,
    residual_call, residual_prim, trigger, unbound,
    _inf, _nan, _vec)

_MANIFEST = {'config': {},
 'facets': ['sign', 'parity', 'interval', 'size'],
 'functions': [{'name': 'iprod',
                'needed': ['size'],
                'occurrences': {'A': 2, 'B': 1},
                'params': ['A', 'B']},
               {'name': 'dotprod',
                'needed': [],
                'occurrences': {'A': 2, 'B': 2, 'n': 4},
                'params': ['A', 'B', 'n']}],
 'main': 'iprod',
 'pattern': [{'kind': 'spec', 'text': 'size=3'},
             {'kind': 'spec', 'text': 'size=3'}],
 'pattern_fp': '2db4adb340c68cf225a1b1340689cb6b1844299c96ac01500c39f4c2e308a1c7',
 'protocol': 1,
 'source_sha256': '27be1100b34792cef959d872ddec759beb9ed8edae216d6f58ec3caba6f27598'}

def _g_0(ctx, a0, a1):
    _t1 = trigger(_pf_0, ctx, 'vsize', (a0, ), _fx_0)
    _e2 = _t1[0]
    if isinstance(_e2, (Const, Var)):
        _lf3 = None
        _lv4 = _t1
    else:
        _lf3 = ctx.fresh('n')
        _lv4 = (Var(_lf3), _t1[1])
    _t5 = residual_call(_pf_1, ctx, (a0, a1, _lv4, ))
    if _lf3 is None:
        _t6 = _t5
    else:
        _t6 = let_exit(_lf3, _e2, _t5)
    return _t6

def _b1(ctx):
    return _k1

def _b2(ctx, a0, a1, a2):
    _t1 = residual_prim(_pf_1, ctx, 'vref', (a0, a2, ))
    _t2 = residual_prim(_pf_1, ctx, 'vref', (a1, a2, ))
    _t3 = residual_prim(_pf_1, ctx, '*', (_t1, _t2, ))
    _t4 = fold(_pf_1, ctx, '-', (a2, _k2, ))
    _t5 = residual_call(_pf_1, ctx, (a0, a1, _t4, ))
    _t6 = residual_prim(_pf_1, ctx, '+', (_t3, _t5, ))
    return _t6

def _g_1(ctx, a0, a1, a2):
    _t1 = fold(_pf_1, ctx, '=', (a2, _k0, ))
    _e2 = _t1[0]
    if isinstance(_e2, Const) and isinstance(_e2.value, bool):
        ctx.stats.if_reductions += 1
        _t3 = _b1(ctx) if _e2.value else _b2(ctx, a0, a1, a2)
    else:
        _t3 = build_if(_pf_1, _e2, _b1(ctx), _b2(ctx, a0, a1, a2))
    return _t3

_FUNCTIONS = {
    'iprod': _g_0,
    'dotprod': _g_1
}

_rt = GenextRuntime(_MANIFEST, _FUNCTIONS)
_pf_0 = _rt.profile('iprod')
_pf_1 = _rt.profile('dotprod')
_fx_0 = _rt.facet('size')
_k0 = _rt.const_pair('dotprod', 0)
_k1 = _rt.const_pair('dotprod', 0.0)
_k2 = _rt.const_pair('dotprod', 1)

MANIFEST = _MANIFEST
runtime = _rt


def specialize(inputs):
    return _rt.specialize(inputs)


def specialize_specs(specs):
    return _rt.specialize_specs(specs)


def specialize_compiled(inputs):
    return _rt.specialize_compiled(inputs)
