"""Generating extension for 'gcd' (source sha256 e1b676b0a177…).

Emitted by repro.genext.emit — do not edit.
"""

from repro.lang.ast import Const, Var
from repro.genext.runtime import (
    GenextRuntime, build_if, fold, let_exit,
    residual_call, residual_prim, trigger, unbound,
    _inf, _nan, _vec)

_MANIFEST = {'config': {},
 'facets': ['sign', 'parity', 'interval', 'size'],
 'functions': [{'name': 'gcd',
                'needed': [],
                'occurrences': {'a': 2, 'b': 3},
                'params': ['a', 'b']}],
 'main': 'gcd',
 'pattern': [{'kind': 'static', 'sort': 'int'},
             {'kind': 'static', 'sort': 'int'}],
 'pattern_fp': 'c25dfff87183c2a1389671ff7ff2e5d6c8d4d5e26198b16c2da22534860f6cbc',
 'protocol': 1,
 'source_sha256': 'e1b676b0a17731a9047653948a3300e013231c3015e9e718207d96b5a4f5109a'}

def _b1(ctx, a0):
    return a0

def _b2(ctx, a0, a1):
    _t1 = fold(_pf_0, ctx, 'mod', (a0, a1, ))
    _t2 = residual_call(_pf_0, ctx, (a1, _t1, ))
    return _t2

def _g_0(ctx, a0, a1):
    _t1 = fold(_pf_0, ctx, '=', (a1, _k0, ))
    _e2 = _t1[0]
    if isinstance(_e2, Const) and isinstance(_e2.value, bool):
        ctx.stats.if_reductions += 1
        _t3 = _b1(ctx, a0) if _e2.value else _b2(ctx, a0, a1)
    else:
        _t3 = build_if(_pf_0, _e2, _b1(ctx, a0), _b2(ctx, a0, a1))
    return _t3

_FUNCTIONS = {
    'gcd': _g_0
}

_rt = GenextRuntime(_MANIFEST, _FUNCTIONS)
_pf_0 = _rt.profile('gcd')
_k0 = _rt.const_pair('gcd', 0)

MANIFEST = _MANIFEST
runtime = _rt


def specialize(inputs):
    return _rt.specialize(inputs)


def specialize_specs(specs):
    return _rt.specialize_specs(specs)


def specialize_compiled(inputs):
    return _rt.specialize_compiled(inputs)
