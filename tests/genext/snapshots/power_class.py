"""Generating extension for 'power' (source sha256 b4df8ac16444…).

Emitted by repro.genext.emit — do not edit.
"""

from repro.lang.ast import Const, Var
from repro.genext.runtime import (
    GenextRuntime, build_if, fold, let_exit,
    residual_call, residual_prim, trigger, unbound,
    _inf, _nan, _vec)

_MANIFEST = {'config': {},
 'facets': ['sign', 'parity', 'interval', 'size'],
 'functions': [{'name': 'power',
                'needed': [],
                'occurrences': {'n': 4, 'x': 3},
                'params': ['x', 'n']},
               {'name': 'square',
                'needed': [],
                'occurrences': {'y': 2},
                'params': ['y']}],
 'main': 'power',
 'pattern': [{'kind': 'dyn'}, {'kind': 'static', 'sort': 'int'}],
 'pattern_fp': '91ff4564b8f1d635b5e334c7507217b7815d3dc13da29b2ff3bafcae9370a87e',
 'protocol': 1,
 'source_sha256': 'b4df8ac164445f4501b91056faa6b8c8fc8600a33dcbcc8bb6eec777e9d9850a'}

def _b1(ctx):
    return _k1

def _b3(ctx, a0, a1):
    _t1 = fold(_pf_0, ctx, 'div', (a1, _k2, ))
    _t2 = residual_call(_pf_0, ctx, (a0, _t1, ))
    _t3 = residual_call(_pf_1, ctx, (_t2, ))
    return _t3

def _b4(ctx, a0, a1):
    _t1 = fold(_pf_0, ctx, '-', (a1, _k1, ))
    _t2 = residual_call(_pf_0, ctx, (a0, _t1, ))
    _t3 = residual_prim(_pf_0, ctx, '*', (a0, _t2, ))
    return _t3

def _b2(ctx, a0, a1):
    _t1 = fold(_pf_0, ctx, 'mod', (a1, _k2, ))
    _t2 = fold(_pf_0, ctx, '=', (_t1, _k0, ))
    _e3 = _t2[0]
    if isinstance(_e3, Const) and isinstance(_e3.value, bool):
        ctx.stats.if_reductions += 1
        _t4 = _b3(ctx, a0, a1) if _e3.value else _b4(ctx, a0, a1)
    else:
        _t4 = build_if(_pf_0, _e3, _b3(ctx, a0, a1), _b4(ctx, a0, a1))
    return _t4

def _g_0(ctx, a0, a1):
    _t1 = fold(_pf_0, ctx, '=', (a1, _k0, ))
    _e2 = _t1[0]
    if isinstance(_e2, Const) and isinstance(_e2.value, bool):
        ctx.stats.if_reductions += 1
        _t3 = _b1(ctx) if _e2.value else _b2(ctx, a0, a1)
    else:
        _t3 = build_if(_pf_0, _e2, _b1(ctx), _b2(ctx, a0, a1))
    return _t3

def _g_1(ctx, a0):
    _t1 = residual_prim(_pf_1, ctx, '*', (a0, a0, ))
    return _t1

_FUNCTIONS = {
    'power': _g_0,
    'square': _g_1
}

_rt = GenextRuntime(_MANIFEST, _FUNCTIONS)
_pf_0 = _rt.profile('power')
_pf_1 = _rt.profile('square')
_k0 = _rt.const_pair('power', 0)
_k1 = _rt.const_pair('power', 1)
_k2 = _rt.const_pair('power', 2)

MANIFEST = _MANIFEST
runtime = _rt


def specialize(inputs):
    return _rt.specialize(inputs)


def specialize_specs(specs):
    return _rt.specialize_specs(specs)


def specialize_compiled(inputs):
    return _rt.specialize_compiled(inputs)
