"""The ``genext`` artifact kind under the store's crash/corruption
contract.

Emitted genext bundles live in the same SQLite store as residual
payloads, under ``kind="genext"``.  The store contract does not bend
for the new kind: corrupt rows are quarantined and read as misses,
never raised, and the worker's answer to any store-tier failure is to
re-emit — the store is a cache of something the worker can always
recompute.  ``ppe store verify`` walks genext rows like any others.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.cli import main
from repro.observability import ServiceStats
from repro.service import worker
from repro.service.worker import execute_request
from repro.store import ArtifactStore
from repro.workloads import WORKLOADS

SOURCE = WORKLOADS["power"].source


def _payload(store_path, specs=("dyn", "10")):
    return {"source": SOURCE, "specs": list(specs),
            "engine": "genext", "config": {},
            "store_path": str(store_path)}


def _drop_memory_tier() -> None:
    """Force the next request through the store tier (keep the open
    store handle — only the module cache is dropped)."""
    worker._genext_cache.clear()


class TestRoundTrip:
    def test_put_get_and_kind_accounting(self, tmp_path):
        with ArtifactStore(tmp_path / "s.db") as store:
            store.put("k1", {"kind": "genext", "patterns": {}},
                      kind="genext")
            store.put("k2", {"residual": "(define (f) 1)"})
            assert store.get("k1") == {"kind": "genext",
                                       "patterns": {}}
            assert store.kinds() == {"genext": 1, "result": 1}
            assert store.snapshot()["kinds"] == {"genext": 1,
                                                 "result": 1}

    def test_unknown_kind_is_rejected(self, tmp_path):
        with ArtifactStore(tmp_path / "s.db") as store:
            with pytest.raises(ValueError):
                store.put("k", {}, kind="sandwich")

    def test_worker_persists_and_reloads(self, tmp_path):
        path = tmp_path / "s.db"
        first = execute_request(_payload(path))
        assert not first.get("failed")
        assert first["tiers"] == {"genext_emits": 1,
                                  "genext_store_writes": 1}
        with ArtifactStore(path) as store:
            assert store.kinds() == {"genext": 1}
        _drop_memory_tier()
        second = execute_request(_payload(path))
        assert second["tiers"] == {"genext_store_hits": 1}
        assert second["residual"] == first["residual"]


class TestCorruption:
    def _tamper(self, path, sql: str) -> None:
        conn = sqlite3.connect(path)
        conn.execute(sql)
        conn.commit()
        conn.close()

    def test_bad_row_quarantines_misses_and_reemits(self, tmp_path):
        path = tmp_path / "s.db"
        baseline = execute_request(_payload(path))
        # Flip the payload under the checksum: the store must
        # quarantine the row, the worker must re-emit — never raise.
        for store in worker._stores.values():
            if store is not None:
                store.close()
        worker._stores.clear()
        worker._genext_cache.clear()
        self._tamper(path,
                     "UPDATE artifacts SET payload = 'X' || payload")
        outcome = execute_request(_payload(path))
        assert not outcome.get("failed")
        assert outcome["residual"] == baseline["residual"]
        assert outcome["tiers"]["genext_emits"] == 1
        assert outcome["tiers"]["genext_store_writes"] == 1
        with ArtifactStore(path) as store:
            assert store.quarantined() >= 1

    def test_semantically_damaged_python_is_dropped(self, tmp_path):
        """A row that passes its checksum but holds broken Python (a
        version skew, a partial writer) is deleted and re-emitted —
        checksums cannot catch semantic damage, the loader must."""
        path = tmp_path / "s.db"
        first = execute_request(_payload(path))
        key = None
        with ArtifactStore(path) as store:
            rows = sqlite3.connect(path).execute(
                "SELECT key FROM artifacts").fetchall()
            key = rows[0][0]
            bundle = store.get(key)
            fp = next(iter(bundle["patterns"]))
            bundle["patterns"][fp]["python"] = "def ("  # SyntaxError
            store.put(key, bundle, kind="genext")
        _drop_memory_tier()
        outcome = execute_request(_payload(path))
        assert not outcome.get("failed")
        assert outcome["residual"] == first["residual"]
        assert outcome["tiers"]["genext_emits"] == 1

    def test_store_verify_covers_genext_rows(self, tmp_path, capsys):
        path = tmp_path / "s.db"
        execute_request(_payload(path))
        for store in worker._stores.values():
            if store is not None:
                store.close()
        worker._stores.clear()
        assert main(["store", "verify",
                     "--store-path", str(path)]) == 0
        self._tamper(path,
                     "UPDATE artifacts SET checksum = 'deadbeef'")
        assert main(["store", "verify",
                     "--store-path", str(path)]) == 1

    def test_unwritable_store_still_answers(self, tmp_path):
        """A store path that cannot be opened degrades to the
        in-memory tier: the request still gets its residual."""
        path = tmp_path / "not-a-dir"
        path.write_text("file, not a directory")
        outcome = execute_request(
            _payload(path / "s.db"))
        assert not outcome.get("failed")
        assert outcome["tiers"]["genext_emits"] == 1


class TestMissingStats:
    def test_store_stats_flow_through_worker(self, tmp_path):
        """The worker's store handle reports into per-process
        ServiceStats-compatible counters without raising."""
        path = tmp_path / "s.db"
        execute_request(_payload(path))
        stats = ServiceStats()
        with ArtifactStore(path, stats=stats) as store:
            assert store.get("missing") is None
        assert stats.store_misses == 1
