"""Golden snapshots of the Python the backend emits.

The lowering tests check *behaviour*; these pin the *text* so codegen
changes are reviewed as diffs, exactly like the residual snapshots in
``tests/golden``.  The cases are a subset of the residual golden
cases — we specialize the same workloads through the service worker,
then lower the residual and snapshot the emitted module.

Regenerate with ``pytest --update-golden`` (the shared option from the
root conftest).  The hypothesis differential suite, not these
snapshots, is what guarantees the emitted code *means* the same thing;
a snapshot diff is a prompt for review, not a verdict.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.backend import compile_program, lower_program
from repro.lang.parser import parse_program
from repro.service.worker import execute_request

from tests.golden.test_golden_residuals import CASES

SNAPSHOT_DIR = Path(__file__).parent / "snapshots"

#: Residual-golden cases worth pinning at the Python level: they cover
#: straight-line arithmetic, pruned branches, loops from tail
#: recursion, a trampolined residual and higher-order closures.
EMITTED_CASE_NAMES = (
    "quickstart_power_n10",
    "inner_product_online_size3",
    "sign_pipeline_pos",
    "futamura_vm_compile",
    "gcd_fully_static",
    "binary_search_size7",
    "ho_pipeline_size3",
    "alternating_sum_size4",
)

EMITTED_CASES = [case for case in CASES
                 if case.name in EMITTED_CASE_NAMES]


def test_emitted_case_names_resolve():
    assert len(EMITTED_CASES) == len(EMITTED_CASE_NAMES)


@pytest.fixture(scope="session")
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.mark.parametrize("case", EMITTED_CASES,
                         ids=lambda case: case.name)
def test_emitted_python_matches_snapshot(case, update_golden):
    outcome = execute_request(case.payload())
    assert not outcome.get("failed"), outcome.get("error")
    residual = parse_program(outcome["residual"])
    text = lower_program(residual).source
    if not text.endswith("\n"):
        text += "\n"
    path = SNAPSHOT_DIR / f"{case.name}.py"
    if update_golden:
        SNAPSHOT_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return
    assert path.exists(), \
        f"missing snapshot {path.name}; run pytest --update-golden"
    expected = path.read_text(encoding="utf-8")
    assert text == expected, \
        f"emitted Python for {case.name} drifted from its snapshot"


@pytest.mark.parametrize("case", EMITTED_CASES,
                         ids=lambda case: case.name)
def test_emitted_python_compiles(case):
    """Every snapshot case must also survive the full compile path —
    a snapshot of code that no longer executes would be worse than no
    snapshot."""
    outcome = execute_request(case.payload())
    assert not outcome.get("failed"), outcome.get("error")
    unit = compile_program(parse_program(outcome["residual"]))
    assert unit.fingerprint


def test_no_orphan_snapshots():
    known = {f"{name}.py" for name in EMITTED_CASE_NAMES}
    on_disk = {path.name for path in SNAPSHOT_DIR.glob("*.py")}
    assert on_disk <= known, f"orphans: {sorted(on_disk - known)}"
