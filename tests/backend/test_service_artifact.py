"""The compiled-artifact path through the specialization service.

With ``backend="compiled"`` the service compiles every successful
residual and stores the artifact *with* the cached result, so repeat
requests skip both specialization and compilation.  These tests pin
the artifact's presence, its semantics (it must compute what the
residual computes), the cache-reuse accounting, and the wire-format
guarantee that ``backend="interp"`` output stays byte-identical to the
pre-backend format.
"""

from __future__ import annotations

import pytest

from repro.backend import compile_artifact
from repro.lang.interp import Interpreter
from repro.lang.parser import parse_program
from repro.service import SpecRequest, SpecializationService

GCD = "(define (gcd a b) (if (= b 0) a (gcd b (mod a b))))"
IPROD = """
(define (iprod A B n)
  (if (= n 0) 0.0
      (+ (* (vref A n) (vref B n)) (iprod A B (- n 1)))))
"""


def _request(source=GCD, specs=("dyn", "18"), **kwargs):
    return SpecRequest.create(source=source, specs=specs, **kwargs)


class TestArtifactAttachment:
    def test_compiled_backend_attaches_artifact(self):
        with SpecializationService(workers=0,
                                   backend="compiled") as service:
            (result,) = service.run_batch([_request()])
            assert not result.degraded
            assert result.compiled is not None
            assert result.compiled["fingerprint"]
            assert "def " in result.compiled["python"]
            assert service.backend_stats.compiles == 1
            assert service.backend_stats.compile_seconds >= 0.0

    def test_artifact_computes_what_the_residual_computes(self):
        with SpecializationService(workers=0,
                                   backend="compiled") as service:
            (result,) = service.run_batch([_request()])
        residual = parse_program(result.residual)
        unit = compile_artifact(dict(result.compiled))
        for a in (48, 1071, 252):
            assert unit.run(a) == Interpreter(residual).run(a)

    def test_interp_backend_attaches_nothing(self):
        with SpecializationService(workers=0) as service:
            (result,) = service.run_batch([_request()])
        assert result.compiled is None
        # Byte-identity of the wire format: no new key may appear.
        assert "compiled" not in result.to_dict()

    def test_compiled_result_dict_carries_the_artifact(self):
        with SpecializationService(workers=0,
                                   backend="compiled") as service:
            (result,) = service.run_batch([_request()])
        payload = result.to_dict()
        assert payload["compiled"]["goal"] == "gcd"


class TestArtifactCacheReuse:
    def test_cache_hit_reuses_the_artifact(self):
        with SpecializationService(workers=0,
                                   backend="compiled") as service:
            first = service.run_batch([_request(id="a")])[0]
            second = service.run_batch([_request(id="b")])[0]
            assert not first.cached and second.cached
            assert second.compiled == first.compiled
            # Compiled exactly once; the repeat was an artifact reuse.
            assert service.backend_stats.compiles == 1
            assert service.backend_stats.artifact_reuses >= 1

    def test_next_batch_skips_both_engine_and_compiler(self):
        with SpecializationService(workers=0,
                                   backend="compiled") as service:
            service.run_batch([_request(id="x"), _request(id="y")])
            compiles_before = service.backend_stats.compiles
            (again,) = service.run_batch([_request(id="z")])
            assert again.cached and again.compiled is not None
            assert service.backend_stats.compiles == compiles_before


class TestRobustness:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SpecializationService(backend="jit")

    def test_degraded_requests_carry_no_artifact(self):
        # An unspecializable blowup degrades to the fallback residual;
        # the artifact is best-effort and must not break the request.
        source = """
        (define (boom n) (if (= n 0) 1 (+ (boom (- n 1)) (boom (- n 1)))))
        """
        request = SpecRequest.create(
            source=source, specs=("dyn",),
            config={"max_steps": 50, "max_residual_nodes": 10,
                    "unfold_fuel": 2, "strict_budgets": True})
        with SpecializationService(workers=0,
                                   backend="compiled") as service:
            (result,) = service.run_batch([request])
        assert result.residual  # the fallback is still a program

    def test_vector_workload_artifact(self):
        request = SpecRequest.create(
            source=IPROD, specs=("dyn", "dyn", "3"))
        with SpecializationService(workers=0,
                                   backend="compiled") as service:
            (result,) = service.run_batch([request])
        assert result.compiled is not None
        from repro.lang.values import Vector
        unit = compile_artifact(dict(result.compiled))
        a, b = Vector((1.0, 2.0, 3.0)), Vector((4.0, 5.0, 6.0))
        residual = parse_program(result.residual)
        assert unit.run(a, b) == Interpreter(residual).run(a, b) == 32.0
