"""Error parity between the interpreter and the compiled backend.

The compiled backend claims to implement *exactly* the standard
semantics of Figure 1, and errors are part of the semantics: a program
that divides by zero, applies a closure at the wrong arity or reads an
unbound variable must fail with the same
:class:`~repro.engine.errors.ReproError` subclass from both engines.
These tests pin the exception class *and* the message text — the
messages are produced by the shared primitive table and the runtime
bridge, so drift in either is a bug.

The unbound-variable / unknown-function / wrong-arity-call programs
cannot be written as source text (the parser rejects them statically),
so those are built directly from AST nodes.
"""

from __future__ import annotations

import pytest

from repro.backend import compile_program
from repro.engine.errors import ReproError, classify
from repro.lang.ast import Call, Const, FunDef, Var
from repro.lang.interp import Interpreter
from repro.lang.parser import parse_program
from repro.lang.program import Program
from repro.lang.values import Vector


def _outcome(thunk):
    try:
        return ("value", thunk())
    except ReproError as exc:
        return ("error", type(exc), str(exc), classify(exc))


def assert_parity(program: Program, args: tuple) -> None:
    interp = _outcome(lambda: Interpreter(program).run(*args))
    compiled = _outcome(lambda: compile_program(program).run(*args))
    assert interp == compiled, (
        f"engines diverge on {program.main.name}{args!r}:\n"
        f"  interp:   {interp}\n  compiled: {compiled}")
    assert interp[0] == "error", \
        f"expected a program error, got {interp!r}"


class TestPrimitiveFaults:
    def test_division_by_zero(self):
        program = parse_program("(define (f x) (/ x 0))")
        assert_parity(program, (1,))

    def test_float_division_by_zero(self):
        program = parse_program("(define (f x) (/ x 0.0))")
        assert_parity(program, (2.5,))

    def test_vector_index_out_of_range(self):
        program = parse_program("(define (f v) (vref v 5))")
        assert_parity(program, (Vector((1, 2, 3)),))

    def test_non_boolean_if_test(self):
        program = parse_program("(define (f x) (if x 1 2))")
        assert_parity(program, (1,))


class TestApplicationFaults:
    def test_closure_applied_at_wrong_arity(self):
        program = parse_program(
            "(define (f x) (let ((g (lambda (a b) a))) (g x)))")
        assert_parity(program, (7,))

    def test_applying_a_non_function(self):
        program = parse_program("(define (f x) (x 1))")
        assert_parity(program, (3,))

    def test_funref_applied_at_wrong_arity(self):
        program = parse_program("""
            (define (f x) (let ((g h)) (g x x)))
            (define (h y) y)
        """)
        assert_parity(program, (4,))


class TestUnboundAndUnknown:
    """Statically-invalid shapes the parser refuses, built as ASTs."""

    def test_unbound_variable(self):
        program = Program.of([FunDef("f", ("x",), Var("y"))])
        assert_parity(program, (1,))

    def test_call_to_unknown_function(self):
        program = Program.of([
            FunDef("f", ("x",), Call("g", (Var("x"),)))])
        assert_parity(program, (1,))

    def test_call_at_wrong_arity(self):
        program = Program.of([
            FunDef("f", ("x",), Call("h", (Var("x"), Var("x")))),
            FunDef("h", ("a",), Var("a")),
        ])
        assert_parity(program, (1,))

    def test_arguments_evaluated_before_arity_check(self):
        # The interpreter evaluates call arguments before checking the
        # callee's arity, so a faulting argument wins; lowering must
        # preserve that order.
        program = Program.of([
            FunDef("f", ("x",),
                   Call("h", (Call("g", (Var("x"),)), Const(1)))),
            FunDef("h", ("a",), Var("a")),
        ])
        assert_parity(program, (1,))


class TestEntryPointFaults:
    def test_goal_called_at_wrong_arity(self):
        program = parse_program("(define (f x y) (+ x y))")
        interp = _outcome(lambda: Interpreter(program).run(1))
        compiled = _outcome(lambda: compile_program(program).run(1))
        assert interp == compiled
        assert interp[0] == "error"

    def test_unknown_entry_point(self):
        program = parse_program("(define (f x) x)")
        interp = _outcome(lambda: Interpreter(program).call("g", [1]))
        compiled = _outcome(
            lambda: compile_program(program).call("g", [1]))
        assert interp == compiled
        assert interp[0] == "error"


@pytest.mark.parametrize("source, args", [
    ("(define (f x) (+ x true))", (1,)),
    ("(define (f x) (vref x 1))", (5,)),
    ("(define (f x) (vsize x))", (5,)),
    ("(define (f x) (vref x 0)) ", (Vector((1.0, 2.0)),)),
])
def test_assorted_primitive_type_errors(source, args):
    assert_parity(parse_program(source), args)
