"""Shadow-verified execution: agreement, divergence, bookkeeping.

``shadow_run`` is the trust-building mode of the backend — every call
is double-run through both engines.  These tests pin the three
outcomes (verified value, verified error, :class:`ShadowMismatch`) and
the ``stats.backend`` counters each one feeds.
"""

from __future__ import annotations

import pytest

from repro.backend import (
    ShadowMismatch, compile_program, execute_program, shadow_run)
from repro.backend.runtime import CompiledClosure
from repro.lang.errors import EvalError, FuelExhausted
from repro.lang.parser import parse_program
from repro.observability import BackendStats

GCD = "(define (gcd a b) (if (= b 0) a (gcd b (mod a b))))"
DIV = "(define (f x) (/ 1.0 x))"
SPIN = "(define (f n) (if (= n 0) 0 (f (- n 1))))"
LAM = "(define (f x) (lambda (a b) (+ a (* b x))))"


class TestAgreement:
    def test_returns_the_verified_value(self):
        program = parse_program(GCD)
        stats = BackendStats()
        assert shadow_run(program, (252, 105), stats=stats) == 21
        assert stats.shadow_runs == 1
        assert stats.compiled_runs == 1
        assert stats.compiles == 1
        assert stats.mismatches == 0
        assert stats.shadow_inconclusive == 0

    def test_reuses_a_precompiled_unit(self):
        program = parse_program(GCD)
        unit = compile_program(program)
        stats = BackendStats()
        for args in ((48, 18), (1071, 462), (7, 13)):
            shadow_run(program, args, compiled=unit, stats=stats)
        assert stats.shadow_runs == 3
        assert stats.compiles == 0  # never compiled inside shadow_run

    def test_agreeing_errors_reraise_the_compiled_error(self):
        program = parse_program(DIV)
        stats = BackendStats()
        with pytest.raises(EvalError, match="division by zero"):
            shadow_run(program, (0.0,), stats=stats)
        assert stats.mismatches == 0

    def test_functional_results_agree_on_arity(self):
        program = parse_program(LAM)
        stats = BackendStats()
        out = shadow_run(program, (2,), stats=stats)
        assert isinstance(out, CompiledClosure)
        assert out.arity == 2
        assert stats.mismatches == 0


class TestDivergence:
    def test_doctored_compiled_program_raises_mismatch(self):
        program = parse_program(GCD)
        wrong = compile_program(parse_program(
            "(define (gcd a b) (+ a b))"))
        stats = BackendStats()
        with pytest.raises(ShadowMismatch) as excinfo:
            shadow_run(program, (252, 105), compiled=wrong, stats=stats)
        assert stats.mismatches == 1
        assert "gcd(252, 105)" in str(excinfo.value)

    def test_value_vs_error_is_a_mismatch(self):
        program = parse_program(DIV)
        wrong = compile_program(parse_program("(define (f x) 0.0)"))
        stats = BackendStats()
        with pytest.raises(ShadowMismatch):
            shadow_run(program, (0.0,), compiled=wrong, stats=stats)
        assert stats.mismatches == 1

    def test_functional_arity_disagreement_is_a_mismatch(self):
        program = parse_program(LAM)
        wrong = compile_program(parse_program(
            "(define (f x) (lambda (a) a))"))
        with pytest.raises(ShadowMismatch):
            shadow_run(program, (2,), compiled=wrong)

    def test_mismatch_is_a_specialization_error(self):
        # A divergence blames the backend, not the subject program.
        from repro.engine.errors import SpecializationError, classify
        program = parse_program(GCD)
        wrong = compile_program(parse_program(
            "(define (gcd a b) (+ a b))"))
        with pytest.raises(SpecializationError) as excinfo:
            shadow_run(program, (252, 105), compiled=wrong)
        assert classify(excinfo.value) == "specialization"


class TestInconclusive:
    def test_fuel_exhaustion_is_inconclusive_not_a_verdict(self):
        program = parse_program(SPIN)
        stats = BackendStats()
        with pytest.raises(FuelExhausted):
            shadow_run(program, (10_000,), fuel=100, stats=stats)
        assert stats.shadow_inconclusive == 1
        assert stats.mismatches == 0
        # The compiled engine (no fuel) must never have run.
        assert stats.compiled_runs == 0


class TestExecuteProgram:
    def test_backend_dispatch_agrees(self):
        program = parse_program(GCD)
        outs = {backend: execute_program(program, (252, 105),
                                         backend=backend)
                for backend in ("interp", "compiled", "shadow")}
        assert set(outs.values()) == {21}

    def test_unknown_backend_rejected(self):
        program = parse_program(GCD)
        with pytest.raises(ValueError, match="unknown backend"):
            execute_program(program, (1, 2), backend="jit")

    def test_stats_flow_through(self):
        program = parse_program(GCD)
        stats = BackendStats()
        execute_program(program, (48, 18), backend="compiled",
                        stats=stats)
        assert stats.compiles == 1 and stats.compiled_runs == 1
        execute_program(program, (48, 18), backend="shadow",
                        stats=stats)
        assert stats.shadow_runs == 1
        assert stats.as_dict()["mismatches"] == 0
