"""Unit tests of the lowering pass: binding structure, tail-call
compilation, evaluation order, and first-class functions.

Everything here checks *behaviour* of compiled programs against the
interpreter or against hand-computed values; the emitted text itself is
pinned separately by the golden snapshots in
``tests/backend/test_golden_emitted.py``.
"""

from __future__ import annotations

import pytest

from repro.backend import compile_artifact, compile_program
from repro.lang.errors import EvalError, FuelExhausted
from repro.lang.interp import Interpreter
from repro.lang.parser import parse_program


def compiled(source: str):
    return compile_program(parse_program(source))


class TestBindingStructure:
    def test_let_shadowing(self):
        unit = compiled(
            "(define (f x) (let ((x (+ x 1)) (x (* x 2))) x))")
        assert unit.run(3) == 8

    def test_let_shadowing_restores_outer_binding(self):
        # The outer x must still be visible after the inner let's
        # scope ends — lowering allocates a fresh Python local per
        # binder instead of mutating the outer one.
        unit = compiled(
            "(define (f x) (+ (let ((x (* x 10))) x) x))")
        assert unit.run(3) == 33

    def test_lambda_captures_binding_at_closure_time(self):
        unit = compiled("""
            (define (f x)
              (let ((g (let ((y (* x 2))) (lambda (z) (+ y z)))))
                (g 5)))
        """)
        assert unit.run(10) == 25

    def test_collision_prone_names(self):
        # Specializer-generated names ("f_1", "x!2") sanitize into the
        # same Python identifier space; the lowerer must keep them
        # distinct.
        unit = compiled("""
            (define (f x_1 x-1) (+ (g x_1) (g_1 x-1)))
            (define (g a) (* a 2))
            (define (g_1 a) (* a 3))
        """)
        assert unit.run(5, 7) == 31


class TestTailCalls:
    def test_self_tail_recursion_runs_in_constant_stack(self):
        unit = compiled("""
            (define (count n acc)
              (if (= n 0) acc (count (- n 1) (+ acc 1))))
        """)
        # Far beyond any recursion limit: only a loop can do this.
        assert unit.run(500_000, 0) == 500_000

    def test_parallel_rebinding_in_loop(self):
        # Both loop variables change per iteration and each new value
        # depends on both old ones — a naive sequential rebind breaks.
        unit = compiled("""
            (define (fib n a b)
              (if (= n 0) a (fib (- n 1) b (+ a b))))
        """)
        assert unit.run(30, 0, 1) == 832040

    def test_mutual_tail_recursion_trampolines(self):
        unit = compiled("""
            (define (f n) (even n))
            (define (even n) (if (= n 0) 1 (odd (- n 1))))
            (define (odd n) (if (= n 0) 0 (even (- n 1))))
        """)
        assert unit.run(400_000) == 1
        assert unit.run(400_001) == 0

    def test_non_tail_position_still_recurses(self):
        unit = compiled("""
            (define (sum n) (if (= n 0) 0 (+ n (sum (- n 1)))))
        """)
        assert unit.run(100) == 5050

    def test_deep_non_tail_recursion_reports_fuel_exhausted(self):
        unit = compiled("""
            (define (sum n) (if (= n 0) 0 (+ n (sum (- n 1)))))
        """)
        with pytest.raises(FuelExhausted):
            unit.run(2_000_000)

    def test_call_inside_mutual_group_from_non_tail_position(self):
        # A non-tail call into a trampolined group must still return a
        # real value, not a Bounce.
        unit = compiled("""
            (define (f n) (+ (even n) (odd n)))
            (define (even n) (if (= n 0) 1 (odd (- n 1))))
            (define (odd n) (if (= n 0) 0 (even (- n 1))))
        """)
        assert unit.run(6) == 1


class TestEvaluationOrder:
    def test_raising_argument_beats_later_statement_argument(self):
        # The second operand needs statements (a let); the first
        # operand raises.  Left-to-right order means the error wins —
        # lowering spills the first operand into a temporary above the
        # let's statements.
        source = """
            (define (f x)
              (+ (/ 1.0 x) (let ((y (* x 2.0))) y)))
        """
        unit = compiled(source)
        program = parse_program(source)
        with pytest.raises(EvalError, match="division by zero"):
            unit.run(0.0)
        assert unit.run(2.0) == Interpreter(program).run(2.0) == 4.5

    def test_arguments_evaluate_left_to_right(self):
        # vref faults carry the failing index, so the first fault
        # observed tells us which argument ran first.
        unit = compiled("""
            (define (f v) (+ (vref v 9) (vref v 8)))
        """)
        program = parse_program("(define (f v) (+ (vref v 9) (vref v 8)))")
        from repro.lang.values import Vector
        vec = Vector((1.0,))
        try:
            unit.run(vec)
            raised_compiled = None
        except EvalError as exc:
            raised_compiled = str(exc)
        try:
            Interpreter(program).run(vec)
            raised_interp = None
        except EvalError as exc:
            raised_interp = str(exc)
        assert raised_compiled == raised_interp is not None


class TestFirstClassFunctions:
    def test_named_function_as_value(self):
        unit = compiled("""
            (define (f x) (let ((g h)) (g x)))
            (define (h y) (* y y))
        """)
        assert unit.run(3) == 9

    def test_higher_order_composition(self):
        unit = compiled("""
            (define (f x)
              (let ((twice (lambda (g y) (g (g y))))
                    (inc (lambda (z) (+ z 1))))
                (twice inc x)))
        """)
        assert unit.run(5) == 7

    def test_closure_snapshot_survives_loop_rebinding(self):
        # The loop conversion rebinds parameters in place; a closure
        # captured in an earlier iteration must keep the value it
        # closed over, not observe the rebinding.
        source = """
            (define (f n k)
              (if (= n 0)
                  (k 0)
                  (f (- n 1) (lambda (r) (k (+ r n))))))
        """
        unit = compiled(source)
        interp = Interpreter(parse_program(source))
        # Build the initial continuation in the object language by
        # running a tiny program that returns one.
        k_unit = compiled("(define (mk) (lambda (r) r))")
        k_compiled = k_unit.run()
        k_interp = Interpreter(
            parse_program("(define (mk) (lambda (r) r))")).run()
        assert unit.run(5, k_compiled) == 15
        assert interp.run(5, k_interp) == 15


class TestArtifacts:
    def test_artifact_round_trip(self):
        unit = compiled("""
            (define (gcd a b) (if (= b 0) a (gcd b (mod a b))))
        """)
        rebuilt = compile_artifact(unit.artifact())
        assert rebuilt.run(252, 105) == unit.run(252, 105) == 21
        assert rebuilt.fingerprint == unit.fingerprint

    def test_artifact_fingerprint_mismatch_rejected(self):
        from repro.engine.errors import SpecializationError
        artifact = compiled("(define (f x) x)").artifact()
        artifact["python"] += "\n# tampered\n"
        with pytest.raises(SpecializationError,
                           match="fingerprint mismatch"):
            compile_artifact(artifact)

    def test_float_constants_round_trip(self):
        # Non-finite constants have no literal spelling in a namespace
        # without builtins; the lowerer emits runtime names for them.
        from repro.lang.ast import Const, FunDef
        from repro.lang.program import Program
        import math
        program = Program.of([
            FunDef("f", (), Const(math.inf))])
        assert compile_program(program).run() == math.inf
        program = Program.of([FunDef("f", (), Const(math.nan))])
        out = compile_program(program).run()
        assert math.isnan(out)
