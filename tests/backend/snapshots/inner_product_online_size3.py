# Python residual emitted by repro.backend (PPE compiled backend).
# goal: iprod/2


def _f_iprod(_v_A, _v_B):
    return _p_add(_p_mul(_p_vref(_v_A, 3), _p_vref(_v_B, 3)), _p_add(_p_mul(_p_vref(_v_A, 2), _p_vref(_v_B, 2)), _p_mul(_p_vref(_v_A, 1), _p_vref(_v_B, 1))))
