# Python residual emitted by repro.backend (PPE compiled backend).
# goal: run/1


def _f_run(_v_x):
    return _p_mul(_p_add(_v_x, 10.0), 3.0)
