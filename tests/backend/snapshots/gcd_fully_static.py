# Python residual emitted by repro.backend (PPE compiled backend).
# goal: gcd/0


def _f_gcd():
    return 6
