# Python residual emitted by repro.backend (PPE compiled backend).
# goal: main/1


def _f_main(_v_V):
    def _lam1(_v_a_1):
        return _p_mul(_v_a_1, 2)
    _t1 = _rt_close(_lam1, 1)
    def _lam2(_v_a_3):
        return _p_add(_v_a_3, 1.0)
    _v_f_6 = _f_compose_1(_t1, _rt_close(_lam2, 1))
    return _rt_apply(_v_f_6, (_p_add(_rt_apply(_v_f_6, (_p_add(_rt_apply(_v_f_6, (_p_vref(_v_V, 3),)), _p_vref(_v_V, 2)),)), _p_vref(_v_V, 1)),))


def _f_compose_1(_v_f, _v_g):
    def _lam3(_v_a_5, *, _c_f=_v_f, _c_g=_v_g):
        return _rt_apply(_c_f, (_rt_apply(_c_g, (_v_a_5,)),))
    return _rt_close(_lam3, 1)
