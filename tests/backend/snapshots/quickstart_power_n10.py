# Python residual emitted by repro.backend (PPE compiled backend).
# goal: power/1


def _f_power(_v_x):
    return _f_square_2(_p_mul(_v_x, _f_square_2(_f_square_1(_v_x))))


def _f_square_1(_v_y):
    return _p_mul(_v_y, _v_y)


def _f_square_2(_v_y):
    return _p_mul(_v_y, _v_y)
