# Python residual emitted by repro.backend (PPE compiled backend).
# goal: bsearch/2


def _f_bsearch(_v_V, _v_key):
    _t1 = _p_eq(_p_vref(_v_V, 4), _v_key)
    if _t1 is True:
        return 4
    elif _t1 is False:
        _t2 = _p_lt(_p_vref(_v_V, 4), _v_key)
        if _t2 is True:
            _t3 = _p_eq(_p_vref(_v_V, 6), _v_key)
            if _t3 is True:
                return 6
            elif _t3 is False:
                _t4 = _p_lt(_p_vref(_v_V, 6), _v_key)
                if _t4 is True:
                    _t5 = _p_eq(_p_vref(_v_V, 7), _v_key)
                    if _t5 is True:
                        return 7
                    elif _t5 is False:
                        _t6 = _p_lt(_p_vref(_v_V, 7), _v_key)
                        if _t6 is True:
                            return 0
                        elif _t6 is False:
                            return 0
                        else:
                            _rt_bad_test(_t6)
                    else:
                        _rt_bad_test(_t5)
                elif _t4 is False:
                    _t7 = _p_eq(_p_vref(_v_V, 5), _v_key)
                    if _t7 is True:
                        return 5
                    elif _t7 is False:
                        _t8 = _p_lt(_p_vref(_v_V, 5), _v_key)
                        if _t8 is True:
                            return 0
                        elif _t8 is False:
                            return 0
                        else:
                            _rt_bad_test(_t8)
                    else:
                        _rt_bad_test(_t7)
                else:
                    _rt_bad_test(_t4)
            else:
                _rt_bad_test(_t3)
        elif _t2 is False:
            _t9 = _p_eq(_p_vref(_v_V, 2), _v_key)
            if _t9 is True:
                return 2
            elif _t9 is False:
                _t10 = _p_lt(_p_vref(_v_V, 2), _v_key)
                if _t10 is True:
                    _t11 = _p_eq(_p_vref(_v_V, 3), _v_key)
                    if _t11 is True:
                        return 3
                    elif _t11 is False:
                        _t12 = _p_lt(_p_vref(_v_V, 3), _v_key)
                        if _t12 is True:
                            return 0
                        elif _t12 is False:
                            return 0
                        else:
                            _rt_bad_test(_t12)
                    else:
                        _rt_bad_test(_t11)
                elif _t10 is False:
                    _t13 = _p_eq(_p_vref(_v_V, 1), _v_key)
                    if _t13 is True:
                        return 1
                    elif _t13 is False:
                        _t14 = _p_lt(_p_vref(_v_V, 1), _v_key)
                        if _t14 is True:
                            return 0
                        elif _t14 is False:
                            return 0
                        else:
                            _rt_bad_test(_t14)
                    else:
                        _rt_bad_test(_t13)
                else:
                    _rt_bad_test(_t10)
            else:
                _rt_bad_test(_t9)
        else:
            _rt_bad_test(_t2)
    else:
        _rt_bad_test(_t1)
