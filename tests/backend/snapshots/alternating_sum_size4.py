# Python residual emitted by repro.backend (PPE compiled backend).
# goal: altsum/1


def _f_altsum(_v_V):
    return _p_add(_p_vref(_v_V, 4), _p_sub(_p_add(_p_vref(_v_V, 2), _p_sub(0.0, _p_vref(_v_V, 1))), _p_vref(_v_V, 3)))
