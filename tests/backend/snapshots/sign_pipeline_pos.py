# Python residual emitted by repro.backend (PPE compiled backend).
# goal: normalize/2


def _f_normalize(_v_x, _v_scale):
    _t1 = _p_gt(_v_x, _v_scale)
    if _t1 is True:
        return _f_shrink_1(_p_sub(_v_x, _v_scale), _v_scale)
    elif _t1 is False:
        return _v_x
    else:
        _rt_bad_test(_t1)


def _f_shrink_1(_v_x, _v_scale):
    while True:
        _t1 = _p_gt(_v_x, _v_scale)
        if _t1 is True:
            _v_x, _v_scale = _p_sub(_v_x, _v_scale), _v_scale
            continue
        elif _t1 is False:
            return _v_x
        else:
            _rt_bad_test(_t1)
