"""Differential property: the compiled backend against the oracle.

The acceptance bar for the backend is *zero shadow mismatches*: for
random programs and random static/dynamic divisions,

* the compiled source program agrees with the interpreted source
  program (value or error, per :func:`repro.backend.verify.shadow_run`
  — which raises :class:`ShadowMismatch` on any divergence), and
* every engine's residual, compiled, agrees with the *interpreted
  residual* and with the interpreted *source* — the three-way equality
  the speedup claims rest on.

Fuel exhaustion on the interpreter side is inconclusive (the compiled
engine has no step counter), so those runs end without a verdict —
exactly the shadow-mode contract.  Budgets scale with
``REPRO_HYPOTHESIS_PROFILE`` like the rest of the hypothesis suites.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import scaled_examples

from repro.backend import compile_program, shadow_run
from repro.baselines.simple_pe import DYN, specialize_simple
from repro.engine.errors import ReproError
from repro.facets import FacetSuite, ParityFacet, SignFacet
from repro.lang.errors import FuelExhausted, PEError
from repro.lang.interp import run_program
from repro.lang.values import INT, values_approx_equal
from repro.online import PEConfig, specialize_online
from repro.workloads.generator import GenConfig, generate_program

SEEDS = st.integers(min_value=0, max_value=10_000)
ARGS = st.integers(min_value=-6, max_value=8)
MASKS = st.integers(min_value=0, max_value=15)
GEN = GenConfig(functions=3, max_depth=3)
PE_CONFIG = PEConfig(unfold_fuel=12, max_variants=4, fuel=2_000_000)
FUEL = 2_000_000


def _tolerated(error: PEError) -> bool:
    return ("exceeded" in str(error)
            or "generalized division" in str(error))


def _split(pool, mask, arity):
    args = pool[:arity]
    dynamic_positions = {i for i in range(arity) if mask & (1 << i)}
    dynamic_args = [v for i, v in enumerate(args)
                    if i in dynamic_positions]
    return args, dynamic_positions, dynamic_args


class TestCompiledSourceAgainstInterpreter:
    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4))
    @settings(max_examples=scaled_examples(60), deadline=None)
    def test_shadow_run_never_diverges(self, seed, pool):
        program = generate_program(seed, GEN)
        args = pool[:program.main.arity]
        try:
            # ShadowMismatch is a SpecializationError, not a LangError,
            # so a divergence escapes this except and fails the test.
            shadow_run(program, args, fuel=FUEL)
        except FuelExhausted:
            return  # inconclusive: the oracle could not finish
        except PEError as error:
            assert _tolerated(error), error
        except ReproError as error:
            from repro.engine.errors import ProgramError
            assert isinstance(error, ProgramError), error


class TestCompiledResidualAgainstSource:
    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4), MASKS)
    @settings(max_examples=scaled_examples(40), deadline=None)
    def test_compiled_residuals_agree_with_source(self, seed, pool,
                                                  mask):
        program = generate_program(seed, GEN)
        args, dynamic_positions, dynamic_args = _split(
            pool, mask, program.main.arity)
        try:
            expected = run_program(program, *args, fuel=FUEL)
        except FuelExhausted:
            return
        except ReproError:
            return  # the source itself faults; parity is covered above

        suite = FacetSuite([SignFacet(), ParityFacet()])
        simple_division = [
            DYN if i in dynamic_positions else value
            for i, value in enumerate(args)]
        online_inputs = [
            suite.input(INT) if i in dynamic_positions else value
            for i, value in enumerate(args)]

        residuals = {}
        try:
            residuals["simple"] = specialize_simple(
                program, simple_division, PE_CONFIG).program
            residuals["online"] = specialize_online(
                program, online_inputs, suite, PE_CONFIG).program
        except PEError as error:
            assert _tolerated(error), error
            return

        for engine, residual in residuals.items():
            try:
                # Interpreted residual vs compiled residual, verified
                # in one step by the shadow runner.
                got = shadow_run(residual, dynamic_args, fuel=FUEL)
            except FuelExhausted:
                continue
            assert values_approx_equal(got, expected), \
                f"compiled {engine} residual disagrees with the source"


class TestArtifactDifferential:
    @given(SEEDS, st.lists(ARGS, min_size=4, max_size=4))
    @settings(max_examples=scaled_examples(20), deadline=None)
    def test_artifact_round_trip_preserves_semantics(self, seed, pool):
        from repro.backend import compile_artifact
        program = generate_program(seed, GEN)
        args = pool[:program.main.arity]
        try:
            # Termination oracle first: the compiled engine has no
            # fuel, so only run it on programs the interpreter can
            # finish (tail loops would otherwise spin forever).
            run_program(program, *args, fuel=FUEL)
        except FuelExhausted:
            return
        except ReproError:
            pass

        def outcome(thunk):
            try:
                return ("value", thunk())
            except FuelExhausted:
                return ("fuel",)
            except ReproError as exc:
                return ("error", type(exc).__name__, str(exc))

        direct = outcome(lambda: compile_program(program).run(*args))
        rebuilt = outcome(lambda: compile_artifact(
            compile_program(program).artifact()).run(*args))
        assert direct == rebuilt
