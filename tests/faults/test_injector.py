"""FaultInjector semantics: deterministic traces, kind realization,
the install/uninstall lifecycle, and the no-plan fast path."""

import pytest

from repro.faults import (
    FaultInjector, FaultPlan, InjectedFault, active, fault_payload,
    fault_point, install, uninstall)


def _plan(seams: dict, seed: int = 42) -> FaultPlan:
    return FaultPlan.from_dict({"seed": seed, "seams": seams})


class TestDeterminism:
    def test_same_plan_same_call_sequence_same_trace(self):
        plan = _plan({"store.read": {"kinds": ["error", "latency"],
                                     "probability": 0.4,
                                     "latency_seconds": 0.0}})
        traces = []
        for _ in range(2):
            injector = FaultInjector(plan, sleep=lambda _s: None)
            for index in range(50):
                try:
                    injector.hit("store.read", key=f"k{index}")
                except InjectedFault:
                    pass
            traces.append(injector.trace())
        assert traces[0] == traces[1]
        assert traces[0], "probability 0.4 over 50 hits fired nothing"

    def test_different_seeds_differ(self):
        traces = []
        for seed in (1, 2):
            plan = _plan({"store.read": {"kinds": ["error"],
                                         "probability": 0.5}},
                         seed=seed)
            injector = FaultInjector(plan)
            for _ in range(64):
                try:
                    injector.hit("store.read")
                except InjectedFault:
                    pass
            traces.append(injector.trace())
        assert traces[0] != traces[1]

    def test_at_trigger_is_exact(self):
        plan = _plan({"store.read": {"kinds": ["error"],
                                     "at": [2, 5]}})
        injector = FaultInjector(plan)
        fired = []
        for hit in range(1, 8):
            try:
                injector.hit("store.read")
            except InjectedFault:
                fired.append(hit)
        assert fired == [2, 5]

    def test_every_trigger(self):
        plan = _plan({"store.read": {"kinds": ["error"],
                                     "every": 3}})
        injector = FaultInjector(plan)
        fired = []
        for hit in range(1, 10):
            try:
                injector.hit("store.read")
            except InjectedFault:
                fired.append(hit)
        assert fired == [3, 6, 9]

    def test_times_caps_firings(self):
        plan = _plan({"store.read": {"kinds": ["error"],
                                     "every": 1, "times": 2}})
        injector = FaultInjector(plan)
        fired = 0
        for _ in range(10):
            try:
                injector.hit("store.read")
            except InjectedFault:
                fired += 1
        assert fired == 2


class TestRealization:
    def test_error_uses_designated_exception(self):
        plan = _plan({"store.read": {"kinds": ["error"], "at": [1]}})
        injector = FaultInjector(plan)
        with pytest.raises(KeyError):
            injector.hit("store.read",
                         error=lambda message: KeyError(message))

    def test_error_defaults_to_injected_fault(self):
        plan = _plan({"store.read": {"kinds": ["error"], "at": [1]}})
        injector = FaultInjector(plan)
        with pytest.raises(InjectedFault, match="store.read"):
            injector.hit("store.read")

    def test_latency_and_hang_sleep(self):
        plan = _plan({"worker.execute": {
            "kinds": ["hang"], "at": [1], "hang_seconds": 1.5}})
        slept = []
        injector = FaultInjector(plan, sleep=slept.append)
        injector.hit("worker.execute")
        assert slept == [1.5]

    def test_crash_without_action_is_skipped(self):
        plan = _plan({"worker.execute": {"kinds": ["crash"],
                                         "every": 1}})
        injector = FaultInjector(plan)
        injector.hit("worker.execute")  # no crash callable: no-op
        assert injector.trace() == []

    def test_crash_invokes_action(self):
        plan = _plan({"worker.execute": {"kinds": ["crash"],
                                         "at": [1]}})
        injector = FaultInjector(plan)
        called = []
        injector.hit("worker.execute", crash=lambda: called.append(1))
        assert called == [1]

    def test_corrupt_only_at_payload_points(self):
        plan = _plan({"store.read.payload": {"kinds": ["corrupt"],
                                             "at": [1]}})
        injector = FaultInjector(plan)
        original = '{"residual": "(define (f x) x)"}'
        damaged = injector.hit_payload("store.read.payload", original)
        assert damaged != original
        assert len(damaged) == len(original)
        # And the same (seed, seam, hit) damages identically.
        again = FaultInjector(plan).hit_payload(
            "store.read.payload", original)
        assert again == damaged

    def test_counters_and_events(self):
        plan = _plan({"store.read": {"kinds": ["error"], "at": [1]}})
        injector = FaultInjector(plan)
        with pytest.raises(InjectedFault):
            injector.hit("store.read", key="deadbeef")
        assert injector.counters() == {"store.read:error": 1}
        assert injector.trace() == ["store.read#1:error@deadbeef"]


class TestLifecycle:
    def test_no_plan_points_are_noops(self):
        uninstall()
        fault_point("store.read")
        assert fault_payload("store.read.payload", "abc") == "abc"
        assert active() is None

    def test_install_idempotent_by_digest(self):
        plan = _plan({"store.read": {"kinds": ["error"], "at": [99]}})
        first = install(plan)
        first.hits["store.read"] = 7
        same = install(_plan({"store.read": {"kinds": ["error"],
                                             "at": [99]}}))
        assert same is first, "identical plan must keep the injector"
        other = install(_plan({"store.read": {"kinds": ["error"],
                                              "at": [98]}}))
        assert other is not first
        uninstall()
        assert active() is None

    def test_install_none_uninstalls(self):
        install(_plan({"store.read": {"kinds": ["error"], "at": [1]}}))
        assert active() is not None
        install(None)
        assert active() is None

    def test_module_level_points_route_to_active(self):
        install(_plan({"store.read": {"kinds": ["error"], "at": [1]}}))
        with pytest.raises(InjectedFault):
            fault_point("store.read")
        uninstall()
