"""FaultPlan decoding: strict validation, wire round-trip, env/spec
loading."""

import json

import pytest

from repro.faults import FAULT_KINDS, FAULT_PLAN_ENV, FaultPlan, SEAMS


def test_minimal_plan_round_trips():
    plan = FaultPlan.from_dict({
        "seed": 7,
        "seams": {"store.read": {"kinds": ["error"],
                                 "probability": 0.5}},
    })
    assert plan.seed == 7
    again = FaultPlan.from_dict(plan.as_dict())
    assert again.as_dict() == plan.as_dict()
    assert again.digest() == plan.digest()


def test_every_declared_seam_decodes():
    for seam, kinds in SEAMS.items():
        plan = FaultPlan.from_dict({
            "seed": 1,
            "seams": {seam: {"kinds": list(kinds), "at": [1]}}})
        assert seam in plan.seams


def test_unknown_seam_rejected():
    with pytest.raises(ValueError, match="unknown fault seam"):
        FaultPlan.from_dict(
            {"seed": 1, "seams": {"nonsense.seam": {"kinds": ["error"]}}})


def test_unsupported_kind_for_seam_rejected():
    # store.read supports error/hang/latency, never corrupt.
    with pytest.raises(ValueError):
        FaultPlan.from_dict(
            {"seed": 1, "seams": {"store.read": {"kinds": ["corrupt"]}}})


def test_unknown_kind_rejected():
    assert "melt" not in FAULT_KINDS
    with pytest.raises(ValueError):
        FaultPlan.from_dict(
            {"seed": 1, "seams": {"store.read": {"kinds": ["melt"]}}})


def test_probability_out_of_range_rejected():
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"seed": 1, "seams": {
            "store.read": {"kinds": ["error"], "probability": 1.5}}})


def test_unknown_field_rejected():
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"seed": 1, "oops": True, "seams": {}})
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"seed": 1, "seams": {
            "store.read": {"kinds": ["error"], "oops": 1}}})


def test_bad_json_rejected():
    with pytest.raises(ValueError, match="not valid JSON"):
        FaultPlan.from_json("{nope")


def test_from_spec_inline_and_file(tmp_path):
    document = {"seed": 3, "seams": {
        "worker.execute": {"kinds": ["crash"], "at": [1]}}}
    inline = FaultPlan.from_spec(json.dumps(document))
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(document))
    from_file = FaultPlan.from_spec(str(path))
    assert inline.digest() == from_file.digest()
    with pytest.raises(ValueError, match="cannot read fault plan"):
        FaultPlan.from_spec(str(tmp_path / "missing.json"))


def test_from_env(tmp_path):
    assert FaultPlan.from_env({}) is None
    assert FaultPlan.from_env({FAULT_PLAN_ENV: "  "}) is None
    document = json.dumps({"seed": 9, "seams": {}})
    plan = FaultPlan.from_env({FAULT_PLAN_ENV: document})
    assert plan is not None and plan.seed == 9


def test_digest_is_order_insensitive():
    a = FaultPlan.from_dict({"seed": 2, "seams": {
        "store.read": {"kinds": ["error"], "at": [1]},
        "store.write": {"kinds": ["error"], "at": [2]}}})
    b = FaultPlan.from_dict({"seed": 2, "seams": {
        "store.write": {"kinds": ["error"], "at": [2]},
        "store.read": {"kinds": ["error"], "at": [1]}}})
    assert a.digest() == b.digest()
