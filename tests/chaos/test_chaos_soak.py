"""The chaos soak: the whole service under a randomized seeded
FaultPlan.

Hundreds of requests run through a real service — store tier mounted
(with a byte cap, so eviction runs), compiled backend on, engines
mixed — while every seam misbehaves per the plan: transient store
errors, corrupted store payloads, worker crashes and injected worker
errors, genext-load and compile failures, dispatch errors.

The contract being soaked (the ISSUE's acceptance criteria):

* **zero uncaught exceptions** — ``run_batch`` returns a result for
  every request, no matter what fired;
* **zero wrong bytes** — every non-degraded residual is differentially
  verified against the source program on concrete inputs (so a
  corrupted store payload that slipped past the checksum, or a wrong
  cached artifact, would be caught here);
* **bounded degradation** — injected faults may degrade requests, but
  only a bounded fraction (the rest retry/fall through to real
  answers);
* **seed-reproducible injection traces** — the same plan over the
  same request sequence fires the identical injections and produces
  the identical per-request outcomes.

Inline mode (``workers=0``) keeps the injection trace single-process
and hence exactly reproducible; a pooled smoke (real ``os._exit``
crashes) rides along for the multi-process story.
"""

from __future__ import annotations

import random

import pytest

from repro.faults import active, uninstall
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.service import SpecRequest, SpecializationService
from repro.workloads import WORKLOADS

from tests.conftest import assert_values_close

#: Soak size; the ISSUE floor is 200.
SOAK_REQUESTS = 220

#: Tight engine budgets keep each specialization small; budget
#: crossings widen (engine_degradations), they do not fail.  The
#: fuel/step budgets are deliberately low: specializing ``power``
#: against a *dynamic* exponent burns whatever fuel it is given
#: before widening, so the soak's wall-clock scales with these.
TIGHT = {"unfold_fuel": 8, "max_variants": 4, "fuel": 100_000,
         "max_steps": 4_000, "max_residual_nodes": 4_000}

#: (workload, static pools per parameter, dyn-eligible mask).  Every
#: eligible parameter can be a concrete literal or "dyn"; the oracle
#: needs at least one dyn.  sign_pipeline's first parameter is never
#: dynamic: ``shrink`` recurses on it, so a dynamic value unfolds
#: without bound (a pre-existing engine trait, not a fault).
ORACLE_SPACE = [
    ("gcd", [(36, 48, 60, 81), (18, 27, 30)], (True, True)),
    ("power", [(2, 3, 5), (0, 1, 4, 7)], (True, True)),
    ("fib", [(3, 6, 9, 11)], (True,)),
    ("sign_pipeline", [(-4, -1, 2, 8), (1, 2, 3)], (False, True)),
]

ENGINES = ("online", "online", "offline", "genext")

#: The soak plan: every seam the service carries, firing by
#: deterministic hash.  Latencies are zeroed so the soak is fast;
#: hang is deliberately absent (the watchdog suite covers it).
def soak_plan(seed: int) -> dict:
    return {"seed": seed, "seams": {
        "store.read": {"kinds": ["error", "latency"],
                       "probability": 0.15, "latency_seconds": 0.0},
        "store.read.payload": {"kinds": ["corrupt"],
                               "probability": 0.25},
        "store.write": {"kinds": ["error"], "probability": 0.10},
        "store.evict": {"kinds": ["error"], "probability": 0.30},
        "worker.execute": {"kinds": ["crash", "error"],
                           "probability": 0.06},
        "genext.load": {"kinds": ["error"], "probability": 0.10},
        "backend.compile": {"kinds": ["error"], "probability": 0.15},
        "scheduler.dispatch": {"kinds": ["error", "latency"],
                               "probability": 0.04,
                               "latency_seconds": 0.0},
    }}


def soak_requests(seed: int, count: int = SOAK_REQUESTS) \
        -> list[tuple[SpecRequest, list, list]]:
    """``count`` randomized requests with their oracle data:
    (request, full concrete arguments, dynamic arguments)."""
    rng = random.Random(seed)
    out = []
    for index in range(count):
        name, pools, eligible = \
            ORACLE_SPACE[rng.randrange(len(ORACLE_SPACE))]
        values = [rng.choice(pool) for pool in pools]
        # At least one eligible parameter dynamic, the rest a coin
        # flip each.
        dyn = [ok and rng.random() < 0.5
               for ok in eligible]
        if not any(dyn):
            choices = [i for i, ok in enumerate(eligible) if ok]
            dyn[rng.choice(choices)] = True
        specs = ["dyn" if d else str(v)
                 for d, v in zip(dyn, values)]
        dynamic = [v for d, v in zip(dyn, values) if d]
        request = SpecRequest.create(
            WORKLOADS[name].source, specs,
            engine=ENGINES[rng.randrange(len(ENGINES))],
            config=dict(TIGHT), id=f"soak-{index}-{name}")
        out.append((request, values, dynamic))
    return out


def run_soak(seed: int, tmp_path, workers: int = 0,
             count: int = SOAK_REQUESTS):
    """One full soak run; returns (results, stats dict, trace)."""
    uninstall()   # a fresh injector per run: traces start at zero
    table = soak_requests(seed, count)
    with SpecializationService(
            workers=workers, fault_plan=soak_plan(seed),
            backend="compiled",
            store_path=tmp_path / f"soak-{seed}.sqlite",
            store_max_bytes=200_000,
            backoff_base=0.0, sleep=lambda _s: None) as service:
        try:
            results = service.run_batch(
                [request for request, _, _ in table])
        except Exception as error:  # noqa: BLE001 — the core claim
            pytest.fail(f"the service raised under fault injection: "
                        f"{type(error).__name__}: {error}")
        stats = service.stats_dict()
    injector = active()
    trace = injector.trace() if injector is not None else []
    return table, results, stats, trace


def verify_oracle(table, results) -> int:
    """Differentially verify every non-degraded result; returns how
    many were verified."""
    verified = 0
    for (request, values, dynamic), result in zip(table, results):
        assert result is not None
        assert result.residual, f"{request.id}: empty residual"
        if result.degraded:
            # Degraded results are honest fallbacks, clearly flagged;
            # wrong-bytes is only a claim about non-degraded answers.
            assert result.reason, f"{request.id}: degraded, no reason"
            continue
        source_program = parse_program(request.source)
        want = run_program(source_program, *values)
        residual_program = parse_program(result.residual)
        got = run_program(residual_program, *dynamic)
        assert_values_close(want, got, context=request.id)
        verified += 1
    return verified


class TestChaosSoak:
    def test_soak_never_raises_never_lies(self, tmp_path):
        table, results, stats, trace = run_soak(1337, tmp_path)
        assert len(results) == SOAK_REQUESTS
        verified = verify_oracle(table, results)
        degraded = sum(1 for r in results if r.degraded)
        # Faults actually fired — a soak that injects nothing proves
        # nothing.
        assert trace, "the plan injected nothing"
        assert stats["faults"], "no injections reached ServiceStats"
        # Bounded degradation: most requests still get real answers.
        assert degraded + verified == SOAK_REQUESTS
        assert degraded / SOAK_REQUESTS < 0.5, \
            f"{degraded}/{SOAK_REQUESTS} degraded — degradation is " \
            f"not bounded"
        assert verified > 0

    def test_soak_trace_is_seed_reproducible(self, tmp_path):
        table_a, results_a, stats_a, trace_a = \
            run_soak(99, tmp_path / "a", count=80)
        table_b, results_b, stats_b, trace_b = \
            run_soak(99, tmp_path / "b", count=80)
        assert trace_a == trace_b, \
            "identical plan + request sequence must inject identically"
        assert trace_a
        outcomes_a = [(r.degraded, r.reason, r.residual)
                      for r in results_a]
        outcomes_b = [(r.degraded, r.reason, r.residual)
                      for r in results_b]
        assert outcomes_a == outcomes_b
        assert stats_a["faults"] == stats_b["faults"]

    def test_different_seeds_inject_differently(self, tmp_path):
        *_, trace_a = run_soak(7, tmp_path / "a", count=60)
        *_, trace_b = run_soak(8, tmp_path / "b", count=60)
        assert trace_a != trace_b

    def test_degraded_results_never_reach_cache_or_store(self,
                                                         tmp_path):
        table, results, stats, _ = run_soak(424242, tmp_path)
        degraded = [r for r in results if r.degraded]
        assert degraded, "this seed should degrade something"
        assert all(not r.cached for r in degraded)

    def test_pooled_soak_smoke(self, tmp_path):
        """Real process crashes (os._exit in pool workers): the
        multi-process arm of the no-raise / no-lie claim.  Traces are
        not pinned here — worker hit counters are per-process."""
        uninstall()
        plan = {"seed": 5, "seams": {
            "worker.execute": {"kinds": ["crash"],
                               "probability": 0.25}}}
        table = soak_requests(31, count=24)
        with SpecializationService(
                workers=2, fault_plan=plan, max_attempts=2,
                backoff_base=0.0, sleep=lambda _s: None) as service:
            results = service.run_batch(
                [request for request, _, _ in table])
        assert len(results) == 24
        verified = verify_oracle(table, results)
        assert verified > 0
