"""Workload corpus and generator-config tests."""

import pytest

from repro.lang.interp import run_program
from repro.lang.program import is_first_order
from repro.lang.values import Vector
from repro.workloads import (
    WORKLOADS, GenConfig, generate_program, get_workload,
    vm_program_square_plus)


class TestCorpus:
    def test_all_workloads_parse_and_validate(self):
        for name, workload in WORKLOADS.items():
            program = workload.program()
            program.validate()

    def test_lookup(self):
        assert get_workload("gcd").name == "gcd"
        with pytest.raises(KeyError, match="known:"):
            get_workload("nope")

    def test_higher_order_flags(self):
        assert WORKLOADS["ho_pipeline"].higher_order
        assert not WORKLOADS["inner_product"].higher_order

    def test_descriptions_nonempty(self):
        assert all(w.description for w in WORKLOADS.values())

    def test_workloads_run(self):
        v = Vector.of([1.0, 2.0, 3.0])
        assert run_program(WORKLOADS["inner_product"].program(),
                           v, v) == 14.0
        assert run_program(WORKLOADS["power"].program(), 2, 10) == 1024
        assert run_program(WORKLOADS["gcd"].program(), 12, 30) == 6
        assert run_program(WORKLOADS["fib"].program(), 10) == 55
        assert run_program(WORKLOADS["alternating_sum"].program(),
                           Vector.of([1.0, 2.0])) == 1.0
        assert run_program(WORKLOADS["poly_eval"].program(),
                           Vector.of([2.0, 3.0]), 10.0) == 32.0

    def test_ho_workloads_run(self):
        v = Vector.of([1.0, 2.0])
        result = run_program(WORKLOADS["ho_pipeline"].program(), v,
                             2.0)
        assert isinstance(result, float)
        assert run_program(WORKLOADS["ho_select"].program(), 3,
                           True) == 5
        assert run_program(WORKLOADS["ho_select"].program(), 3,
                           False) == 12

    def test_mini_vm_square_plus(self):
        code = Vector.of(vm_program_square_plus(4.0))
        assert run_program(WORKLOADS["mini_vm"].program(), code, 1.0) \
            == 10.0


class TestGeneratorConfig:
    def test_function_count_respected(self):
        program = generate_program(0, GenConfig(functions=5))
        assert len(program) == 5

    def test_max_params_respected(self):
        config = GenConfig(functions=4, max_params=2)
        for seed in range(10):
            program = generate_program(seed, config)
            assert all(d.arity <= 2 for d in program.defs)

    def test_all_programs_first_order(self):
        for seed in range(20):
            assert is_first_order(generate_program(seed))

    def test_depth_bounds_size(self):
        shallow = generate_program(7, GenConfig(max_depth=2)).size()
        deep = generate_program(7, GenConfig(max_depth=6)).size()
        assert shallow <= deep
