"""Constraint propagation extension tests (Section 4.4 future work)."""

import pytest

from repro.facets import FacetSuite, IntervalFacet, ParityFacet, \
    SignFacet
from repro.facets.library.interval import EMPTY, Interval
from repro.facets.library.sign import NEG, POS, ZERO
from repro.lang.interp import Interpreter, run_program
from repro.lang.parser import parse_program
from repro.lang.values import INT
from repro.online import PEConfig, specialize_online
from repro.online.constraints import refine_branch_bindings
from repro.lang.parser import parse_expr

CONFIG = PEConfig(propagate_constraints=True)


def suite():
    return FacetSuite([SignFacet(), IntervalFacet()])


class TestRefineEngine:
    def test_sign_refined_by_zero_comparison(self):
        s = suite()
        lookup = {"x": s.unknown(INT)}
        test = parse_expr("(< x 0)", scope={"x"})
        refined = refine_branch_bindings(s, test, lookup, assume=True)
        assert refined["x"].user[0] == NEG

    def test_negation_refines_else_branch(self):
        s = suite()
        lookup = {"x": s.unknown(INT)}
        test = parse_expr("(>= x 0)", scope={"x"})
        # assume False: x < 0.
        refined = refine_branch_bindings(s, test, lookup, assume=False)
        assert refined["x"].user[0] == NEG

    def test_interval_narrowing(self):
        s = suite()
        lookup = {"i": s.input(INT, interval=Interval(0, 100))}
        test = parse_expr("(< i 10)", scope={"i"})
        refined = refine_branch_bindings(s, test, lookup, assume=True)
        assert refined["i"].user[1] == Interval(0, 9)
        refined = refine_branch_bindings(s, test, lookup, assume=False)
        assert refined["i"].user[1] == Interval(10, 100)

    def test_equality_pins_constant(self):
        s = suite()
        lookup = {"x": s.unknown(INT)}
        test = parse_expr("(= x 5)", scope={"x"})
        refined = refine_branch_bindings(s, test, lookup, assume=True)
        assert refined["x"].pe.is_const
        assert refined["x"].pe.constant() == 5

    def test_inequality_false_pins_constant(self):
        s = suite()
        lookup = {"x": s.unknown(INT)}
        test = parse_expr("(!= x 5)", scope={"x"})
        refined = refine_branch_bindings(s, test, lookup, assume=False)
        assert refined["x"].pe.constant() == 5

    def test_variable_variable_comparison(self):
        s = suite()
        lookup = {"a": s.input(INT, interval=Interval(0, 10)),
                  "b": s.input(INT, interval=Interval(5, 20))}
        test = parse_expr("(< b a)", scope={"a", "b"})
        refined = refine_branch_bindings(s, test, lookup, assume=True)
        # b < a with a <= 10: b <= 9; and a > b >= 5: a >= 6.
        assert refined["b"].user[1] == Interval(5, 9)
        assert refined["a"].user[1] == Interval(6, 10)

    def test_non_comparison_tests_ignored(self):
        s = suite()
        lookup = {"p": s.unknown("bool")}
        test = parse_expr("(and p p)", scope={"p"})
        assert refine_branch_bindings(s, test, lookup, True) == {}

    def test_contradictory_assumption_gives_bottom(self):
        s = suite()
        lookup = {"x": s.input(INT, sign="pos")}
        test = parse_expr("(< x 0)", scope={"x"})
        refined = refine_branch_bindings(s, test, lookup, assume=True)
        # pos meet neg is empty: the branch is dead.
        assert s.is_bottom(refined["x"])


class TestSpecializationWithConstraints:
    ABS_SRC = """
    (define (main x)
      (if (< x 0)
          (classify (neg x))
          (classify x)))
    (define (classify y)
      (if (< y 0) -1 (if (> y 0) 1 0)))
    """

    def test_branch_knowledge_folds_downstream_tests(self):
        program = parse_program(self.ABS_SRC)
        s = suite()
        result = specialize_online(program, [s.unknown(INT)], s,
                                   CONFIG)
        text = str(result.program)
        # The negative branch of classify is provably dead everywhere.
        assert "-1" not in text
        assert result.stats.constraint_refinements > 0

    def test_semantics_preserved(self):
        program = parse_program(self.ABS_SRC)
        s = suite()
        result = specialize_online(program, [s.unknown(INT)], s,
                                   CONFIG)
        for x in (-9, -1, 0, 1, 9):
            assert Interpreter(result.program).run(x) \
                == run_program(program, x)

    def test_disabled_by_default(self):
        program = parse_program(self.ABS_SRC)
        s = suite()
        result = specialize_online(program, [s.unknown(INT)], s)
        assert result.stats.constraint_refinements == 0

    def test_range_check_elimination(self):
        src = """
        (define (main i V)
          (if (and (>= i 1) (<= i 8))
              (checked V i)
              -1.0))
        (define (checked V i)
          (if (and (>= i 1) (<= i (vsize V)))
              (vref V i)
              -2.0))
        """
        from repro.facets import VectorSizeFacet
        from repro.lang.values import VECTOR, Vector
        s = FacetSuite([SignFacet(), IntervalFacet(),
                        VectorSizeFacet()])
        program = parse_program(src)
        # Conjunction tests aren't comparisons, so split manually: use
        # nested ifs instead.
        src2 = src.replace(
            "(if (and (>= i 1) (<= i 8))",
            "(if (>= i 1) (if (<= i 8)").replace(
            "(checked V i)\n              -1.0))",
            "(checked V i) -1.0) -1.0))")
        program = parse_program(src2)
        result = specialize_online(
            program, [s.unknown(INT), s.input(VECTOR, size=8)], s,
            CONFIG)
        # Inside the guarded region the inner bounds check folded away.
        assert "-2.0" not in str(result.program)
        table = Vector.of([float(i) for i in range(1, 9)])
        for i in (0, 1, 5, 8, 11):
            assert Interpreter(result.program).run(i, table) \
                == run_program(program, i, table)

    def test_equality_branch_specializes_on_constant(self):
        src = """
        (define (main n)
          (if (= n 4) (pow2 n) 0))
        (define (pow2 k) (if (= k 0) 1 (* 2 (pow2 (- k 1)))))
        """
        program = parse_program(src)
        s = suite()
        result = specialize_online(program, [s.unknown(INT)], s,
                                   CONFIG)
        # n = 4 in the then-branch: pow2 folds to 16 entirely.
        assert "(if (= n 4) 16 0)" in str(result.program)


class TestRefinementSafety:
    """Refinements must be meets: every concrete value reaching the
    branch is still described."""

    @pytest.mark.parametrize("facet_cls,op", [
        (SignFacet, "<"), (SignFacet, ">="), (SignFacet, "="),
        (IntervalFacet, "<"), (IntervalFacet, "<="),
        (IntervalFacet, ">"), (IntervalFacet, "="),
        (IntervalFacet, "!="),
    ])
    def test_refinement_is_a_narrowing(self, facet_cls, op):
        facet = facet_cls()
        refiner = facet.refine_ops[op]
        for a in facet.sample_abstract_values():
            for b in facet.sample_abstract_values():
                for assume in (True, False):
                    new_a, new_b = refiner(assume, a, b)
                    assert facet.domain.leq(new_a, a)
                    assert facet.domain.leq(new_b, b)

    @pytest.mark.parametrize("facet_cls", [SignFacet, IntervalFacet])
    def test_refinement_keeps_witnesses(self, facet_cls):
        """For concrete (x, y) satisfying the assumed test, the refined
        abstractions still describe x and y."""
        from repro.lang.primitives import apply_primitive
        facet = facet_cls()
        values = range(-4, 5)
        for op, refiner in facet.refine_ops.items():
            for x in values:
                for y in values:
                    truth = apply_primitive(op, [x, y])
                    new_x, new_y = refiner(
                        truth, facet.abstract(x), facet.abstract(y))
                    assert facet.concretizes(x, new_x), (op, x, y)
                    assert facet.concretizes(y, new_y), (op, x, y)