"""Online parameterized partial evaluation (Figure 3) unit tests."""

import pytest

from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.library.interval import Interval
from repro.lang.errors import PEError
from repro.lang.interp import Interpreter, run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.values import INT, VECTOR, Vector
from repro.online import (
    OnlineSpecializer, PEConfig, UnfoldStrategy, specialize_online)


def spec(src, inputs, facets=(), config=None):
    program = parse_program(src)
    suite = FacetSuite(list(facets))
    return suite, specialize_online(program, inputs, suite, config)


class TestConstantPropagation:
    def test_fully_static_input_collapses(self):
        suite = FacetSuite()
        program = parse_program("(define (f x) (+ x 1))")
        result = specialize_online(program, [41], suite)
        assert str(result.program).strip() == "(define (f) 42)"
        assert result.goal_params == ()

    def test_dynamic_input_residualizes(self):
        suite = FacetSuite()
        program = parse_program("(define (f x) (+ x 1))")
        result = specialize_online(program, [suite.unknown(INT)], suite)
        assert "(+ x 1)" in str(result.program)
        assert result.goal_params == ("x",)

    def test_mixed_static_dynamic(self):
        suite = FacetSuite()
        program = parse_program("(define (f x y) (+ (* x x) y))")
        result = specialize_online(
            program, [5, suite.unknown(INT)], suite)
        assert "(+ 25 y)" in str(result.program)

    def test_static_conditional_reduces(self):
        suite = FacetSuite()
        program = parse_program(
            "(define (f x y) (if (< x 0) (neg y) y))")
        result = specialize_online(
            program, [3, suite.unknown(INT)], suite)
        assert "if" not in str(result.program)
        assert result.stats.if_reductions == 1

    def test_dynamic_conditional_specializes_both_branches(self):
        suite = FacetSuite()
        program = parse_program(
            "(define (f x y) (if (< x 0) (+ y 1) (+ y 2)))")
        result = specialize_online(
            program, [suite.unknown(INT), 10], suite)
        text = str(result.program)
        assert "11" in text and "12" in text

    def test_arity_mismatch_rejected(self):
        suite = FacetSuite()
        program = parse_program("(define (f x) x)")
        with pytest.raises(PEError, match="expected 1"):
            specialize_online(program, [1, 2], suite)


class TestFacetDrivenReduction:
    def test_sign_facet_folds_comparison(self):
        program = parse_program("(define (f x) (if (< x 0) (neg x) x))")
        suite = FacetSuite([SignFacet()])
        result = specialize_online(
            program, [suite.input(INT, sign="pos")], suite)
        assert str(result.program).strip() == "(define (f x) x)"
        assert result.stats.folds_by_facet.get("sign") == 1

    def test_parity_facet_folds_equality(self):
        program = parse_program(
            "(define (f x y) (if (= x y) 1 2))")
        suite = FacetSuite([ParityFacet()])
        result = specialize_online(
            program,
            [suite.input(INT, parity="even"),
             suite.input(INT, parity="odd")], suite)
        assert "(define (f x y) 2)" in str(result.program)

    def test_interval_facet_folds_bounds_check(self):
        program = parse_program(
            "(define (f i) (if (and (>= i 0) (< i 10)) i 0))")
        suite = FacetSuite([IntervalFacet()])
        result = specialize_online(
            program, [suite.input(INT, interval=Interval(2, 5))],
            suite)
        assert str(result.program).strip() == "(define (f i) i)"

    def test_facet_values_flow_through_closed_ops(self):
        # x pos, so x+1 pos, so the comparison folds downstream.
        program = parse_program(
            "(define (f x) (if (> (+ x 1) 0) 1 2))")
        suite = FacetSuite([SignFacet()])
        result = specialize_online(
            program, [suite.input(INT, sign="pos")], suite)
        assert str(result.program).strip() == "(define (f x) 1)"

    def test_constant_propagates_to_all_facets(self):
        # vsize folds via the size facet; the resulting constant's sign
        # then folds the comparison via the sign facet.
        program = parse_program(
            "(define (f V) (if (> (vsize V) 0) (vref V 1) 0.0))")
        suite = FacetSuite([SignFacet(), VectorSizeFacet()])
        result = specialize_online(
            program, [suite.input(VECTOR, size=4)], suite)
        assert "(vref V 1)" in str(result.program)
        assert "if" not in str(result.program)


class TestUnfolding:
    SUM_SRC = """
    (define (sum n acc) (if (= n 0) acc (sum (- n 1) (+ acc n))))
    """

    def test_static_recursion_fully_unfolds(self):
        suite = FacetSuite()
        program = parse_program(self.SUM_SRC)
        result = specialize_online(program, [5, 0], suite)
        assert str(result.program).strip() == "(define (sum) 15)"

    def test_partially_static_unfolds_loop(self):
        suite = FacetSuite()
        program = parse_program(self.SUM_SRC)
        result = specialize_online(
            program, [3, suite.unknown(INT)], suite)
        text = str(result.program)
        assert "sum" not in text.replace("(define (sum", "")
        # acc + 3 + 2 + 1 in some association.
        interp = Interpreter(result.program)
        assert interp.run(10) == 16

    def test_unfold_fuel_falls_back_to_specialization(self):
        suite = FacetSuite()
        program = parse_program(self.SUM_SRC)
        config = PEConfig(unfold_fuel=2)
        result = specialize_online(
            program, [50, suite.unknown(INT)], suite, config)
        assert result.stats.specializations > 0
        assert Interpreter(result.program).run(0) == 1275

    def test_never_unfold_strategy(self):
        suite = FacetSuite()
        program = parse_program(self.SUM_SRC)
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)
        result = specialize_online(
            program, [3, suite.unknown(INT)], suite, config)
        assert result.stats.unfoldings == 0
        assert result.stats.specializations > 0
        assert Interpreter(result.program).run(7) == 13

    def test_duplicated_compound_args_get_let_bound(self):
        suite = FacetSuite()
        program = parse_program("""
            (define (main y) (twice (+ y y)))
            (define (twice v) (* v v))
        """)
        result = specialize_online(
            program, [suite.unknown(INT)], suite,
            PEConfig(simplify=False,
                     unfold_strategy=UnfoldStrategy.ALWAYS))
        text = str(result.program)
        assert "let" in text, "compound arg used twice must be shared"
        assert Interpreter(result.program).run(3) == 36


class TestSpecializationCache:
    def test_repeated_pattern_hits_cache(self):
        suite = FacetSuite()
        program = parse_program("""
            (define (main x) (+ (helper 3 x) (helper 3 x)))
            (define (helper k v) (* k v))
        """)
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)
        result = specialize_online(
            program, [suite.unknown(INT)], suite, config)
        assert result.stats.specializations == 1
        assert result.stats.cache_hits == 1

    def test_distinct_patterns_make_distinct_variants(self):
        suite = FacetSuite()
        program = parse_program("""
            (define (main x) (+ (helper 3 x) (helper 4 x)))
            (define (helper k v) (* k v))
        """)
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)
        result = specialize_online(
            program, [suite.unknown(INT)], suite, config)
        assert result.stats.specializations == 2

    def test_facet_components_distinguish_patterns(self):
        program = parse_program("""
            (define (main a b) (+ (check a) (check b)))
            (define (check v) (if (< v 0) 0 1))
        """)
        suite = FacetSuite([SignFacet()])
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)
        result = specialize_online(
            program,
            [suite.input(INT, sign="pos"),
             suite.input(INT, sign="neg")],
            suite, config)
        assert result.stats.specializations == 2
        text = pretty_program(result.program)
        assert Interpreter(result.program).run(5, -5) == 1

    def test_recursive_specialization_ties_off(self):
        suite = FacetSuite()
        program = parse_program("""
            (define (loop x) (if (< x 0) 0 (loop (- x 1))))
        """)
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)
        result = specialize_online(
            program, [suite.unknown(INT)], suite, config)
        assert result.stats.specializations == 1
        assert Interpreter(result.program).run(3) == 0

    def test_variant_explosion_generalizes(self):
        # Static argument grows: without generalization the cache would
        # blow up; the max_variants rung must terminate it.
        suite = FacetSuite()
        program = parse_program("""
            (define (main x) (grow 0 x))
            (define (grow k d) (if (< d 0) k (grow (+ k 1) d)))
        """)
        config = PEConfig(unfold_strategy=UnfoldStrategy.NEVER,
                          max_variants=4)
        result = specialize_online(
            program, [suite.unknown(INT)], suite, config)
        assert result.stats.generalizations > 0
        assert Interpreter(result.program).run(-1) == 0


class TestResidualCorrectness:
    """The golden PE equation on targeted cases."""

    @pytest.mark.parametrize("static,dynamic", [
        (0, 5), (3, -2), (7, 7)])
    def test_power(self, static, dynamic):
        src = """
        (define (power x n)
          (if (= n 0) 1
              (if (= (mod n 2) 0)
                  (square (power x (div n 2)))
                  (* x (power x (- n 1))))))
        (define (square y) (* y y))
        """
        program = parse_program(src)
        suite = FacetSuite()
        # specialize on static exponent; x dynamic — note power's
        # params are (x n) so inputs are [dyn, static].
        result = specialize_online(
            program, [suite.unknown(INT), static], suite)
        assert Interpreter(result.program).run(dynamic) \
            == run_program(program, dynamic, static)

    def test_inner_product_against_interpreter(
            self, inner_product, size_suite, vec3, vec3b):
        inputs = [size_suite.input(VECTOR, size=3)] * 2
        result = specialize_online(inner_product, inputs, size_suite)
        assert Interpreter(result.program).run(vec3, vec3b) \
            == run_program(inner_product, vec3, vec3b)


class TestHigherOrderOnline:
    def test_beta_reduction(self):
        suite = FacetSuite()
        program = parse_program(
            "(define (f x) ((lambda (y) (+ y 1)) x))")
        result = specialize_online(
            program, [suite.unknown(INT)], suite)
        assert "lambda" not in str(result.program)
        assert "(+ x 1)" in str(result.program)

    def test_static_closure_argument_folds(self):
        suite = FacetSuite()
        program = parse_program("""
            (define (main x) (twice (lambda (v) (* v v)) x))
            (define (twice f a) (f (f a)))
        """)
        result = specialize_online(
            program, [suite.unknown(INT)], suite)
        assert Interpreter(result.program).run(3) == 81
        assert "twice" not in str(result.program)

    def test_residual_lambda_body_specialized(self):
        suite = FacetSuite()
        program = parse_program("""
            (define (main x) (pick x))
            (define (pick x) (lambda (y) (+ y (* 0 x))))
        """)
        result = specialize_online(
            program, [suite.unknown(INT)], suite)
        interp = Interpreter(result.program)
        closure = interp.run(5)
        assert interp.apply(closure, [4]) == 4
