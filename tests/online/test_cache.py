"""Specialization cache (``Sf``) unit tests."""

import pytest

from repro.facets import FacetSuite, SignFacet
from repro.lang.ast import FunDef, Var
from repro.lang.values import INT
from repro.online.cache import (
    DYNAMIC, SpecCache, dynamic_positions, make_key)


@pytest.fixture
def suite():
    return FacetSuite([SignFacet()])


class TestKeys:
    def test_constants_pinned(self, suite):
        key = make_key(suite, "f", [suite.const_vector(3),
                                    suite.unknown(INT)])
        assert key[0] == "f"
        assert key[1][0] == "c"
        assert key[2][0] == DYNAMIC

    def test_facet_components_in_key(self, suite):
        pos = suite.input(INT, sign="pos")
        neg = suite.input(INT, sign="neg")
        assert make_key(suite, "f", [pos]) != make_key(suite, "f",
                                                       [neg])

    def test_generalization_rung_1_drops_facets(self, suite):
        pos = suite.input(INT, sign="pos")
        neg = suite.input(INT, sign="neg")
        assert make_key(suite, "f", [pos], generalization=1) \
            == make_key(suite, "f", [neg], generalization=1)

    def test_generalization_rung_1_keeps_constants(self, suite):
        a = suite.const_vector(1)
        b = suite.const_vector(2)
        assert make_key(suite, "f", [a], generalization=1) \
            != make_key(suite, "f", [b], generalization=1)

    def test_generalization_rung_2_drops_everything(self, suite):
        a = suite.const_vector(1)
        b = suite.input(INT, sign="neg")
        assert make_key(suite, "f", [a], generalization=2) \
            == make_key(suite, "f", [b], generalization=2)

    def test_same_constant_different_sort_distinct(self, suite):
        assert make_key(suite, "f", [suite.const_vector(1)]) \
            != make_key(suite, "f", [suite.const_vector(1.0)])


class TestDynamicPositions:
    def test_constants_dropped(self, suite):
        vectors = [suite.const_vector(1), suite.unknown(INT),
                   suite.const_vector(2)]
        assert dynamic_positions(vectors) == (1,)

    def test_rung_2_keeps_all(self, suite):
        vectors = [suite.const_vector(1), suite.unknown(INT)]
        assert dynamic_positions(vectors, generalization=2) == (0, 1)


class TestSpecCache:
    def test_register_and_lookup(self):
        cache = SpecCache(reserved_names=["f"])
        entry = cache.register("key1", "f", (0,), ("x",))
        assert cache.lookup("key1") is entry
        assert cache.lookup("key2") is None

    def test_fresh_names_avoid_reserved(self):
        cache = SpecCache(reserved_names=["f", "f!1"])
        entry = cache.register("k", "f", (), ())
        assert entry.name not in ("f", "f!1")

    def test_names_unique_across_registrations(self):
        cache = SpecCache(reserved_names=[])
        names = {cache.register(i, "f", (), ()).name
                 for i in range(10)}
        assert len(names) == 10

    def test_variants_of(self):
        cache = SpecCache(reserved_names=[])
        cache.register(1, "f", (), ())
        cache.register(2, "f", (), ())
        cache.register(3, "g", (), ())
        assert cache.variants_of("f") == 2
        assert cache.variants_of("g") == 1

    def test_residual_defs_in_creation_order(self):
        cache = SpecCache(reserved_names=[])
        first = cache.register(1, "f", (), ())
        second = cache.register(2, "g", (), ())
        cache.finish(second, FunDef(second.name, (), Var("x")))
        cache.finish(first, FunDef(first.name, (), Var("y")))
        defs = cache.residual_defs()
        assert [d.name for d in defs] == [first.name, second.name]

    def test_unfinished_entries_skipped(self):
        cache = SpecCache(reserved_names=[])
        cache.register(1, "f", (), ())
        assert cache.residual_defs() == []
