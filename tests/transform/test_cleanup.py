"""Whole-program cleanup unit tests."""

import pytest

from repro.lang.parser import parse_program
from repro.lang.program import Program
from repro.lang.ast import Call, Const, FunDef, Var
from repro.transform.cleanup import (
    canonical_names, drop_unreachable, inline_trivial, rename_functions)


class TestDropUnreachable:
    def test_unused_function_removed(self):
        program = parse_program("""
            (define (main x) (used x))
            (define (used y) y)
            (define (dead z) z)
        """)
        cleaned = drop_unreachable(program)
        assert [d.name for d in cleaned.defs] == ["main", "used"]

    def test_transitive_reachability(self):
        program = parse_program("""
            (define (main x) (a x))
            (define (a x) (b x))
            (define (b x) x)
        """)
        assert len(drop_unreachable(program)) == 3

    def test_first_class_references_keep_functions(self):
        program = parse_program("""
            (define (main x) (apply-it helper x))
            (define (apply-it f v) (f v))
            (define (helper y) y)
        """)
        assert len(drop_unreachable(program)) == 3

    def test_goal_always_kept(self):
        program = parse_program("(define (main x) x)")
        assert len(drop_unreachable(program)) == 1


class TestRenames:
    def test_rename_functions_rewrites_call_sites(self):
        program = parse_program("""
            (define (main x) (old x))
            (define (old y) (old y))
        """)
        renamed = rename_functions(program, {"old": "new"})
        assert renamed.get("new").body == Call("new", (Var("y"),))
        assert renamed.get("main").body == Call("new", (Var("x"),))

    def test_canonical_names(self):
        program = Program((
            FunDef("main", ("x",), Call("f!1", (Var("x"),))),
            FunDef("f!1", ("y",), Call("f!7", (Var("y"),))),
            FunDef("f!7", ("z",), Var("z"))))
        tidy = canonical_names(program)
        assert [d.name for d in tidy.defs] == ["main", "f_1", "f_2"]
        assert tidy.get("f_1").body == Call("f_2", (Var("y"),))

    def test_canonical_names_avoid_collisions(self):
        program = Program((
            FunDef("main", ("x",), Call("f!1", (Var("x"),))),
            FunDef("f_1", ("y",), Var("y")),
            FunDef("f!1", ("z",), Var("z"))))
        tidy = canonical_names(program)
        names = [d.name for d in tidy.defs]
        assert len(set(names)) == 3

    def test_empty_renames_is_identity(self):
        program = parse_program("(define (main x) x)")
        assert rename_functions(program, {}) is program


class TestInlineTrivial:
    def test_constant_body_inlined(self):
        program = parse_program("""
            (define (main x) (+ x (k)))
            (define (k) 7)
        """)
        inlined = inline_trivial(program)
        assert "k" not in inlined.functions()
        assert "(+ x 7)" in str(inlined)

    def test_projection_inlined(self):
        program = parse_program("""
            (define (main x y) (fst x y))
            (define (fst a b) a)
        """)
        inlined = inline_trivial(program)
        assert inlined.get("main").body == Var("x")

    def test_goal_never_inlined(self):
        program = parse_program("(define (main x) x)")
        assert inline_trivial(program).main.name == "main"
