"""Algebraic simplification unit tests (the Figure 8 cleanup pass)."""

import pytest

from repro.lang.ast import Const, If, Let, Prim, Var
from repro.lang.interp import run_program
from repro.lang.parser import parse_expr, parse_program
from repro.transform.simplify import (
    SimplifyConfig, definitely_total, simplify_expr, simplify_program)


def expr(src, scope=("x", "y")):
    return parse_expr(src, scope=set(scope))


class TestTotality:
    def test_vars_and_consts_total(self):
        assert definitely_total(Var("x"))
        assert definitely_total(Const(1))

    def test_safe_prims_total(self):
        assert definitely_total(expr("(+ x (* y 2))"))
        assert definitely_total(expr("(< x y)"))

    def test_division_not_total(self):
        assert not definitely_total(expr("(div x y)"))
        assert not definitely_total(expr("(/ 1.0 0.0)"))

    def test_vref_not_total(self):
        assert not definitely_total(
            parse_expr("(vref v 1)", scope={"v"}))

    def test_calls_not_total(self):
        assert not definitely_total(
            parse_expr("(f x)", scope={"x"}, function_names={"f"}))

    def test_if_total_when_all_parts_are(self):
        assert definitely_total(expr("(if (< x 0) x y)"))
        assert not definitely_total(expr("(if (< x 0) (div x y) y)"))


class TestArithmeticIdentities:
    def test_add_zero(self):
        assert simplify_expr(expr("(+ x 0)")) == Var("x")
        assert simplify_expr(expr("(+ 0 x)")) == Var("x")

    def test_float_add_zero(self):
        assert simplify_expr(expr("(+ x 0.0)")) == Var("x")

    def test_float_identities_can_be_disabled(self):
        config = SimplifyConfig(float_identities=False)
        e = expr("(+ x 0.0)")
        assert simplify_expr(e, config) == e

    def test_sub_zero(self):
        assert simplify_expr(expr("(- x 0)")) == Var("x")

    def test_mul_one(self):
        assert simplify_expr(expr("(* x 1)")) == Var("x")
        assert simplify_expr(expr("(* 1 x)")) == Var("x")

    def test_mul_zero_total_operand(self):
        assert simplify_expr(expr("(* x 0)")) == Const(0)

    def test_mul_zero_keeps_failing_operand(self):
        e = expr("(* (div x y) 0)")
        assert simplify_expr(e) == e

    def test_div_one(self):
        assert simplify_expr(expr("(div x 1)")) == Var("x")

    def test_bool_constants_not_confused_with_ints(self):
        # (+ x false) is ill-typed but must not be treated as (+ x 0).
        e = Prim("+", (Var("x"), Const(False)))
        assert simplify_expr(e) == e


class TestFolding:
    def test_constant_folding(self):
        assert simplify_expr(expr("(+ 2 3)")) == Const(5)
        assert simplify_expr(expr("(< 2 3)")) == Const(True)

    def test_folding_cascades(self):
        assert simplify_expr(expr("(+ (* 2 3) (- 5 1))")) == Const(10)

    def test_erroring_fold_left_residual(self):
        e = expr("(div 1 0)")
        assert simplify_expr(e) == e


class TestConditionals:
    def test_if_true(self):
        assert simplify_expr(expr("(if true x y)")) == Var("x")

    def test_if_false(self):
        assert simplify_expr(expr("(if false x y)")) == Var("y")

    def test_if_same_branches_total_test(self):
        assert simplify_expr(expr("(if (< x y) x x)")) == Var("x")

    def test_if_same_branches_failing_test_kept(self):
        e = expr("(if (= (div x y) 0) x x)")
        assert simplify_expr(e) == e

    def test_if_not_swaps(self):
        out = simplify_expr(expr("(if (not (< x y)) 1 2)"))
        assert out == If(expr("(< x y)"), Const(2), Const(1))


class TestLets:
    def test_unused_total_binding_dropped(self):
        assert simplify_expr(expr("(let ((z (+ x 1))) y)")) == Var("y")

    def test_unused_failing_binding_kept(self):
        e = expr("(let ((z (div x y))) y)")
        assert simplify_expr(e) == e

    def test_single_use_inlined(self):
        out = simplify_expr(expr("(let ((z (+ x 1))) (* z 2))"))
        assert out == expr("(* (+ x 1) 2)")

    def test_trivial_binding_inlined_even_if_used_twice(self):
        out = simplify_expr(expr("(let ((z x)) (+ z z))"))
        assert out == expr("(+ x x)")

    def test_multi_use_compound_binding_kept(self):
        e = expr("(let ((z (+ x 1))) (* z z))")
        assert simplify_expr(e) == e


class TestSemanticsPreserved:
    @pytest.mark.parametrize("src,args", [
        ("(define (f x) (+ (* x 1) 0))", (5,)),
        ("(define (f x) (if (not (< x 0)) x (neg x)))", (-3,)),
        ("(define (f x) (let ((y (+ x 0))) (* y 1)))", (7,)),
        ("(define (f x) (if (< x 10) (+ 2 3) (* 2 3)))", (4,)),
    ])
    def test_program_equivalence(self, src, args):
        program = parse_program(src)
        simplified = simplify_program(program)
        assert run_program(program, *args) \
            == run_program(simplified, *args)

    def test_bounded_passes_terminate(self):
        config = SimplifyConfig(max_passes=1)
        # One pass may leave residue; must still return.
        out = simplify_expr(expr("(+ (+ x 0) 0)"), config)
        assert out in (Var("x"), expr("(+ x 0)"))
