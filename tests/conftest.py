"""Shared fixtures: parsed corpus programs, facet suites, sample data."""

from __future__ import annotations

import pytest

from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.abstract import AbstractSuite
from repro.lang.parser import parse_program
from repro.lang.values import Vector
from repro.workloads import WORKLOADS


@pytest.fixture
def inner_product():
    return WORKLOADS["inner_product"].program()


@pytest.fixture
def power():
    return WORKLOADS["power"].program()


@pytest.fixture
def sign_pipeline():
    return WORKLOADS["sign_pipeline"].program()


@pytest.fixture
def size_suite():
    return FacetSuite([VectorSizeFacet()])


@pytest.fixture
def rich_suite():
    """Sign + parity + interval + size: every shipped facet."""
    return FacetSuite([SignFacet(), ParityFacet(), IntervalFacet(),
                       VectorSizeFacet()])


@pytest.fixture
def rich_abstract_suite(rich_suite):
    return AbstractSuite(rich_suite)


@pytest.fixture
def vec3():
    return Vector.of([1.0, 2.0, 3.0])


@pytest.fixture
def vec3b():
    return Vector.of([4.0, 5.0, 6.0])


def parse(src: str):
    """Terse helper used across suites."""
    return parse_program(src)
