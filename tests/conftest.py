"""Shared fixtures: parsed corpus programs, facet suites, sample data.

Also home of the tiered hypothesis profiles.  ``REPRO_HYPOTHESIS_PROFILE``
selects one of

* ``ci`` (default) — 0.25× the authored example counts, for fast
  pull-request runs;
* ``dev`` — 0.5×, a middle ground for local iteration;
* ``thorough`` — 1.0×, the full counts the properties were written with.

Property tests request their example budget through
:func:`scaled_examples` so an explicit ``@settings`` never overrides the
selected profile.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.abstract import AbstractSuite
from repro.lang.parser import parse_program
from repro.lang.values import Vector
from repro.workloads import WORKLOADS

# -- hypothesis profiles ----------------------------------------------------

#: Example-count multiplier per profile, applied by scaled_examples().
PROFILE_SCALES = {"ci": 0.25, "dev": 0.5, "thorough": 1.0}

#: Never scale a property below this many examples.
MIN_EXAMPLES = 10

HYPOTHESIS_PROFILE = os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci")
if HYPOTHESIS_PROFILE not in PROFILE_SCALES:
    raise RuntimeError(
        f"REPRO_HYPOTHESIS_PROFILE={HYPOTHESIS_PROFILE!r}: expected one "
        f"of {sorted(PROFILE_SCALES)}")

for _name, _scale in PROFILE_SCALES.items():
    settings.register_profile(
        _name, deadline=None,
        max_examples=max(MIN_EXAMPLES, round(100 * _scale)))
settings.load_profile(HYPOTHESIS_PROFILE)


def scaled_examples(authored: int) -> int:
    """``max_examples`` for the active profile, given the authored
    (``thorough``) count."""
    scale = PROFILE_SCALES[HYPOTHESIS_PROFILE]
    return max(MIN_EXAMPLES, round(authored * scale))


@pytest.fixture
def inner_product():
    return WORKLOADS["inner_product"].program()


@pytest.fixture
def power():
    return WORKLOADS["power"].program()


@pytest.fixture
def sign_pipeline():
    return WORKLOADS["sign_pipeline"].program()


@pytest.fixture
def size_suite():
    return FacetSuite([VectorSizeFacet()])


@pytest.fixture
def rich_suite():
    """Sign + parity + interval + size: every shipped facet."""
    return FacetSuite([SignFacet(), ParityFacet(), IntervalFacet(),
                       VectorSizeFacet()])


@pytest.fixture
def rich_abstract_suite(rich_suite):
    return AbstractSuite(rich_suite)


@pytest.fixture
def vec3():
    return Vector.of([1.0, 2.0, 3.0])


@pytest.fixture
def vec3b():
    return Vector.of([4.0, 5.0, 6.0])


def parse(src: str):
    """Terse helper used across suites."""
    return parse_program(src)


def assert_values_close(want, got, context: str = "") -> None:
    """The shared approx-equal assertion for engine-output checks:
    exact on ints/bools, tolerance-based on floats and vectors via
    :func:`repro.lang.values.values_approx_equal`.  Differential
    suites use this instead of ``==`` so a residual that reassociates
    float arithmetic is not reported as a semantics bug."""
    from repro.lang.values import format_value, values_approx_equal
    where = f" [{context}]" if context else ""
    assert values_approx_equal(want, got), \
        f"values diverge{where}: want {format_value(want)}, " \
        f"got {format_value(got)}"


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """The fault-injection layer (:mod:`repro.faults`) is a process
    global; a test that installs a plan (directly or by constructing a
    service with one) must not leak it into the next test."""
    yield
    from repro.faults import uninstall
    uninstall()
