"""Golden residual snapshots for the scenarios shipped in examples/.

Each case re-runs one of the repo's example specializations through
the service worker (:func:`repro.service.worker.execute_request` — the
exact path ``repro batch`` takes) and compares the pretty-printed
residual byte-for-byte against a checked-in snapshot under
``tests/golden/snapshots/``.  Any change to parsing, specialization,
simplification, tidying or pretty-printing that alters residual text
shows up here as a readable diff.

When a change is *intended*, regenerate with::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

and commit the updated snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.service.worker import execute_request
from repro.workloads import WORKLOADS

SNAPSHOT_DIR = Path(__file__).parent / "snapshots"

#: Figure 1's running abs-value example, used by the constraint
#: propagation example script.
ABS_SRC = "(define (f x) (if (< x 0) (neg x) x))"


@dataclass(frozen=True)
class Case:
    """One snapshotted specialization; ``name`` doubles as the file
    stem under ``snapshots/``."""

    name: str
    workload: str | None
    specs: tuple[str, ...]
    engine: str = "online"
    source: str | None = None
    config: dict = field(default_factory=dict)

    def payload(self) -> dict:
        source = self.source if self.source is not None \
            else WORKLOADS[self.workload].source
        return {"source": source, "specs": list(self.specs),
                "engine": self.engine, "config": dict(self.config)}


CASES = [
    # examples/quickstart.py — power with a static exponent.
    Case("quickstart_power_n10", "power", ("dyn", "10")),
    Case("power_offline_n7", "power", ("dyn", "7"), engine="offline"),
    Case("power_simple_n6", "power", ("dyn", "6"), engine="simple"),
    # examples/inner_product.py — size facet unrolls the dot product.
    Case("inner_product_online_size3", "inner_product",
         ("size=3", "size=3")),
    Case("inner_product_offline_size3", "inner_product",
         ("size=3", "size=3"), engine="offline"),
    # examples/sign_specialization.py — sign facet prunes a branch.
    Case("sign_pipeline_pos", "sign_pipeline", ("sign=pos", "dyn")),
    Case("sign_pipeline_neg", "sign_pipeline", ("sign=neg", "dyn")),
    # examples/interval_bounds_check.py — range proofs drop the clamp.
    Case("clamped_lookup_static_vector", "clamped_lookup",
         ("size=4", "dyn", "1", "4")),
    Case("clamped_lookup_interval", "clamped_lookup",
         ("dyn", "interval=2:3", "1", "4")),
    # examples/futamura_vm.py — static bytecode compiles away.
    Case("futamura_vm_compile", "mini_vm",
         ("#(3 1 10 2 3 0)", "dyn")),
    # parity facet: alternating sum over a size-4 vector.
    Case("alternating_sum_size4", "alternating_sum", ("size=4",)),
    Case("poly_eval_size3", "poly_eval", ("size=3", "dyn")),
    Case("gcd_fully_static", "gcd", ("48", "18")),
    Case("binary_search_size7", "binary_search", ("size=7", "dyn")),
    # examples/constraint_propagation.py — Figure 1 under Section 4.4.
    Case("constraint_propagation_abs", None, ("dyn",),
         source=ABS_SRC, config={"propagate_constraints": True}),
    # examples/higher_order_analysis.py — the higher-order corpus.
    Case("ho_select_static_flag", "ho_select", ("dyn", "true")),
    Case("ho_pipeline_size3", "ho_pipeline", ("size=3", "2")),
]


@pytest.fixture(scope="session")
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.mark.parametrize("case", CASES, ids=lambda case: case.name)
def test_residual_matches_snapshot(case, update_golden):
    outcome = execute_request(case.payload())
    assert not outcome.get("failed"), outcome.get("error")
    text = outcome["residual"]
    if not text.endswith("\n"):
        text += "\n"
    path = SNAPSHOT_DIR / f"{case.name}.txt"
    if update_golden:
        SNAPSHOT_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return
    assert path.exists(), \
        f"missing snapshot {path.name}; run pytest --update-golden"
    expected = path.read_text(encoding="utf-8")
    assert text == expected, \
        f"residual for {case.name} drifted from its snapshot"


def test_no_orphan_snapshots():
    """Every snapshot file corresponds to a live case — stale files
    would silently stop being checked."""
    known = {f"{case.name}.txt" for case in CASES}
    on_disk = {path.name for path in SNAPSHOT_DIR.glob("*.txt")}
    assert on_disk <= known, f"orphans: {sorted(on_disk - known)}"
