"""Perf-regression smoke tests for the facet-suite caching layer.

Two invariants guard the hot-path overhaul:

* **Transparency** — with caching on and off, specialization of the
  generator corpus produces byte-identical residual programs and
  identical semantic counters.
* **Effectiveness** — on that same corpus the primitive-dispatch cache
  must keep a hit rate above 50%; a drop means the cache key or the
  suite's reuse pattern regressed and the speedup claim no longer
  holds.
"""

from __future__ import annotations

from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.library.interval import Interval
from repro.lang.errors import PEError
from repro.lang.pretty import pretty_program
from repro.lang.values import INT
from repro.online import PEConfig, specialize_online
from repro.workloads.generator import GenConfig, generate_program

GEN = GenConfig(functions=3, max_depth=3)
PE_CONFIG = PEConfig(unfold_fuel=12, max_variants=4, fuel=2_000_000)
SEEDS = range(0, 40)
POOL = [3, -2, 5, 1]


def _suite(caching: bool) -> FacetSuite:
    return FacetSuite([SignFacet(), ParityFacet(), IntervalFacet(),
                       VectorSizeFacet()], caching=caching)


def _inputs(suite: FacetSuite, arity: int, mask: int) -> list:
    """Alternate static literals and facet-carrying dynamic inputs."""
    inputs = []
    for i in range(arity):
        value = POOL[i]
        if mask & (1 << i):
            inputs.append(suite.input(
                INT,
                sign=suite.facet_named("sign").abstract(value),
                parity=suite.facet_named("parity").abstract(value),
                interval=Interval(value - 1, value + 1)))
        else:
            inputs.append(value)
    return inputs


def _specialize_corpus(caching: bool):
    """(residual texts, semantic stats, merged cache stats) per seed."""
    residuals: dict[tuple[int, int], str] = {}
    counters: dict[tuple[int, int], dict] = {}
    suites: list[FacetSuite] = []
    for seed in SEEDS:
        program = generate_program(seed, GEN)
        arity = program.main.arity
        for mask in (0b0101, 0b1111):
            suite = _suite(caching)
            suites.append(suite)
            try:
                result = specialize_online(
                    program, _inputs(suite, arity, mask), suite,
                    PE_CONFIG)
            except PEError:
                residuals[seed, mask] = "<blowup>"
                counters[seed, mask] = {}
                continue
            residuals[seed, mask] = pretty_program(result.program)
            stats = result.stats.as_dict()
            stats.pop("phase_seconds", None)
            counters[seed, mask] = stats
    return residuals, counters, suites


def test_caching_is_transparent_and_effective():
    on_residuals, on_counters, on_suites = _specialize_corpus(True)
    off_residuals, off_counters, _ = _specialize_corpus(False)

    # Transparency: byte-identical residuals, identical counters.
    assert on_residuals == off_residuals
    assert on_counters == off_counters

    # Effectiveness: aggregate dispatch hit rate above 50%.
    hits = sum(s.cache_stats.dispatch_hits for s in on_suites)
    misses = sum(s.cache_stats.dispatch_misses for s in on_suites)
    assert hits + misses > 0
    rate = hits / (hits + misses)
    assert rate > 0.5, f"dispatch hit rate {rate:.2%} fell below 50%"


def test_caching_off_suites_report_no_cache_traffic():
    suite = _suite(False)
    program = generate_program(7, GEN)
    try:
        specialize_online(program,
                          _inputs(suite, program.main.arity, 0b0101),
                          suite, PE_CONFIG)
    except PEError:
        pass
    stats = suite.cache_stats
    assert stats.dispatch_hits == 0
    assert stats.vector_hits == 0
    assert stats.outcome_hits == 0
