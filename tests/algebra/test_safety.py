"""The safety checkers themselves: they accept every shipped facet and
catch deliberately broken ones (so the checkers are known to have
teeth)."""

import pytest

from repro.algebra.safety import (
    check_abstract_facet_safety, check_facet_monotonicity,
    check_facet_safety)
from repro.facets import (
    IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.abstract import derive_abstract
from repro.lang.values import FLOAT
from repro.lattice.bt import BT
from repro.lattice.pevalue import PEValue

ALL_FACETS = [SignFacet, ParityFacet, IntervalFacet, VectorSizeFacet]


class TestShippedFacetsPass:
    @pytest.mark.parametrize("facet_cls", ALL_FACETS)
    def test_safety(self, facet_cls):
        assert check_facet_safety(facet_cls()) == []

    @pytest.mark.parametrize("facet_cls", ALL_FACETS)
    def test_monotonicity(self, facet_cls):
        assert check_facet_monotonicity(facet_cls()) == []

    def test_float_sign_instance(self):
        facet = SignFacet(FLOAT)
        assert check_facet_safety(facet) == []

    @pytest.mark.parametrize("facet_cls", ALL_FACETS)
    def test_abstract_companions(self, facet_cls):
        assert check_abstract_facet_safety(
            derive_abstract(facet_cls())) == []


class TestCheckersCatchBrokenFacets:
    def test_unsafe_closed_op_detected(self):
        facet = SignFacet()
        # Claim pos + pos = neg: unsafe.
        facet.closed_ops["+"] = lambda a, b: "neg"
        violations = check_facet_safety(facet)
        assert any("+" in v for v in violations)

    def test_unsafe_open_op_detected(self):
        facet = SignFacet()
        # Claim pos < pos is always true: unsafe (2 < 1 is false).
        facet.open_ops["<"] = lambda a, b: PEValue.const(True)
        violations = check_facet_safety(facet)
        assert any("<" in v for v in violations)

    def test_bottom_producing_open_op_detected(self):
        facet = SignFacet()
        facet.open_ops["<"] = lambda a, b: PEValue.bottom()
        violations = check_facet_safety(facet)
        assert any("bottom" in v for v in violations)

    def test_non_monotone_op_detected(self):
        facet = SignFacet()
        top = facet.domain.top

        def weird(a, b):
            # More information out of less: precise on top, vague on
            # points.
            if a == top and b == top:
                return "zero"
            return top

        facet.closed_ops["+"] = weird
        violations = check_facet_monotonicity(facet)
        assert violations

    def test_unsound_abstract_facet_detected(self):
        facet = SignFacet()
        abstract = derive_abstract(facet)
        # Claim pos <~ pos is Static: the online facet answers top
        # there, so Property 6 fails.
        abstract.open_ops["<"] = lambda a, b: BT.STATIC
        violations = check_abstract_facet_safety(abstract)
        assert any("Static" in v for v in violations)
