"""Semantic algebra descriptors (Definition 1) unit tests."""

import pytest

from repro.algebra.semantic import (
    SemanticAlgebra, algebra_of, all_algebras)
from repro.lang.values import BOOL, FLOAT, INT, SORTS, VECTOR


class TestAlgebraOf:
    def test_int_algebra_operations(self):
        algebra = algebra_of(INT)
        names = {op.name for op in algebra.operations}
        assert {"+", "-", "*", "div", "mod", "<", "="} <= names
        assert "vref" not in names

    def test_vector_algebra(self):
        algebra = algebra_of(VECTOR)
        names = {op.name for op in algebra.operations}
        assert names == {"mkvec", "updvec", "vsize", "vref"}

    def test_open_closed_split(self):
        algebra = algebra_of(VECTOR)
        assert {op.name for op in algebra.closed_operations} \
            == {"mkvec", "updvec"}
        assert {op.name for op in algebra.open_operations} \
            == {"vsize", "vref"}

    def test_int_comparisons_are_open(self):
        algebra = algebra_of(INT)
        open_names = {op.name for op in algebra.open_operations}
        assert {"<", "<=", ">", ">=", "=", "!="} <= open_names
        # itof leaves the carrier: open.
        assert "itof" in open_names

    def test_bool_algebra_all_closed(self):
        algebra = algebra_of(BOOL)
        assert algebra.open_operations == ()

    def test_all_algebras_cover_sorts(self):
        assert {a.carrier for a in all_algebras()} == set(SORTS)


class TestOperation:
    def test_lookup(self):
        algebra = algebra_of(INT)
        op = algebra.operation("+")
        assert op.arity == 2
        assert op.apply([2, 3]) == 5
        with pytest.raises(KeyError):
            algebra.operation("vref")

    def test_str(self):
        algebra = algebra_of(VECTOR)
        assert "open" in str(algebra.operation("vsize"))
        assert "closed" in str(algebra.operation("updvec"))
        assert "vector" in str(algebra)
