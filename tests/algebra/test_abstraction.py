"""Abstraction functions between the three levels (Section 3.2)."""

import pytest

from repro.algebra.abstraction import (
    bt_of_args, tau_full, tau_offline, tau_online)
from repro.lang.values import Vector
from repro.lattice.bt import BT
from repro.lattice.pevalue import PEValue


class TestTauOnline:
    def test_values_become_constants(self):
        assert tau_online(3) == PEValue.const(3)
        assert tau_online(True) == PEValue.const(True)
        assert tau_online(2.5) == PEValue.const(2.5)
        v = Vector.of([1.0])
        assert tau_online(v) == PEValue.const(v)

    def test_non_values_rejected(self):
        with pytest.raises(TypeError):
            tau_online("nope")


class TestTauOffline:
    def test_constants_are_static(self):
        assert tau_offline(PEValue.const(3)) is BT.STATIC

    def test_top_is_dynamic(self):
        assert tau_offline(PEValue.top()) is BT.DYNAMIC

    def test_bottom_preserved(self):
        assert tau_offline(PEValue.bottom()) is BT.BOT

    def test_monotone(self):
        # bot <= const <= top maps to BOT <= STATIC <= DYNAMIC.
        chain = [PEValue.bottom(), PEValue.const(1), PEValue.top()]
        images = [tau_offline(x) for x in chain]
        assert images == sorted(images, key=lambda b: b.value)


class TestComposite:
    def test_tau_full(self):
        assert tau_full(42) is BT.STATIC
        assert tau_full(False) is BT.STATIC

    def test_bt_of_args_uniform_rule(self):
        assert bt_of_args([BT.STATIC, BT.STATIC]) is BT.STATIC
        assert bt_of_args([BT.STATIC, BT.DYNAMIC]) is BT.DYNAMIC
        assert bt_of_args([BT.BOT, BT.DYNAMIC]) is BT.BOT
