"""Flat lattices and finite chains.

A *flat* lattice lifts a set of incomparable points with a bottom and a
top: ``bot <= x <= top`` for every point ``x`` and distinct points are
incomparable.  The partial-evaluation domain ``Values`` (Section 3.2) is
the flat lattice over the constants; many facet domains (Sign without the
zero refinement, Parity, the Size facet of Section 6.1) are flat over a
small or infinite point set.

A *chain* is a totally ordered finite lattice; the binding-time domain
``bot <= Static <= Dynamic`` is the three-element chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.lattice.core import AbstractValue, Lattice


@dataclass(frozen=True)
class _Extreme:
    """Bottom/top sentinels, distinct from every user point."""

    label: str

    def __repr__(self) -> str:
        return self.label

    def __str__(self) -> str:
        return self.label


class FlatLattice(Lattice):
    """``bot <= point <= top`` with pairwise-incomparable points.

    ``points`` may be ``None`` for an infinite point set (e.g. all
    integers, for the Size facet); the lattice then reports itself as
    non-enumerable but is still of height 2, so fixpoints remain finite.
    """

    def __init__(self, name: str,
                 points: Sequence[AbstractValue] | None = None) -> None:
        self.name = name
        self._points = None if points is None else list(
            dict.fromkeys(points))
        self._bottom = _Extreme(f"bot[{name}]")
        self._top = _Extreme(f"top[{name}]")

    @property
    def bottom(self) -> AbstractValue:
        return self._bottom

    @property
    def top(self) -> AbstractValue:
        return self._top

    def is_point(self, element: AbstractValue) -> bool:
        """True when ``element`` is a proper point (not bottom or top)."""
        return element != self._bottom and element != self._top

    def leq(self, left: AbstractValue, right: AbstractValue) -> bool:
        if left == self._bottom or right == self._top:
            return True
        if right == self._bottom or left == self._top:
            return left == right
        return left == right

    def join(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        if left == self._bottom:
            return right
        if right == self._bottom:
            return left
        if left == right:
            return left
        return self._top

    def meet(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        if left == self._top:
            return right
        if right == self._top:
            return left
        if left == right:
            return left
        return self._bottom

    def height(self) -> int:
        return 2

    def is_enumerable(self) -> bool:
        return self._points is not None

    def elements(self) -> Iterable[AbstractValue]:
        if self._points is None:
            raise NotImplementedError(f"{self.name}: infinite point set")
        return [self._bottom, *self._points, self._top]

    def contains(self, element: AbstractValue) -> bool:
        if element == self._bottom or element == self._top:
            return True
        if self._points is None:
            return True
        return element in self._points


class ChainLattice(Lattice):
    """A finite total order, bottom first."""

    def __init__(self, name: str,
                 elements: Sequence[AbstractValue]) -> None:
        if not elements:
            raise ValueError("a chain needs at least one element")
        self.name = name
        self._elements = list(elements)
        self._rank = {e: i for i, e in enumerate(self._elements)}
        if len(self._rank) != len(self._elements):
            raise ValueError(f"{name}: duplicate chain elements")

    @property
    def bottom(self) -> AbstractValue:
        return self._elements[0]

    @property
    def top(self) -> AbstractValue:
        return self._elements[-1]

    def rank(self, element: AbstractValue) -> int:
        try:
            return self._rank[element]
        except KeyError:
            raise ValueError(
                f"{self.name}: {element!r} is not in the chain") from None

    def leq(self, left: AbstractValue, right: AbstractValue) -> bool:
        return self.rank(left) <= self.rank(right)

    def join(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        return left if self.rank(left) >= self.rank(right) else right

    def meet(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        return left if self.rank(left) <= self.rank(right) else right

    def height(self) -> int:
        return len(self._elements) - 1

    def elements(self) -> Iterable[AbstractValue]:
        return list(self._elements)
