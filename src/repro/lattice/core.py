"""Lattice abstraction used by every abstract domain in the system.

Definition 2 requires each facet domain to be an algebraic lattice of
finite height (condition 1) so fixpoint iteration terminates, and each
facet operator to be monotonic (condition 2).  This module gives those
requirements an executable form: a :class:`Lattice` bundles a carrier of
plain hashable Python values with ordering and join/meet, exposes its
height, and — when the carrier is small — can enumerate its elements so
the law checkers in :mod:`repro.lattice.laws` can verify the lattice
axioms and operator monotonicity exhaustively.

Abstract values themselves stay plain data (enums, ints, tuples,
dataclasses); all structure lives in the lattice object.  This keeps
facet operators easy to read and lets products combine values without
wrapper noise.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence

AbstractValue = Hashable


class Lattice:
    """A bounded lattice over hashable elements.

    Subclasses implement :meth:`leq` and :meth:`join`; :meth:`meet` has a
    generic (quadratic) fallback for enumerable lattices.  ``height`` is
    the length of the longest strictly increasing chain minus one; finite
    height is what Definition 2 condition 1 demands.
    """

    #: Human-readable name, used in error messages and reports.
    name: str = "lattice"

    @property
    def bottom(self) -> AbstractValue:
        raise NotImplementedError

    @property
    def top(self) -> AbstractValue:
        raise NotImplementedError

    def leq(self, left: AbstractValue, right: AbstractValue) -> bool:
        """The partial order of the lattice."""
        raise NotImplementedError

    def join(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        """Least upper bound."""
        raise NotImplementedError

    def meet(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        """Greatest lower bound (generic fallback via enumeration)."""
        if self.leq(left, right):
            return left
        if self.leq(right, left):
            return right
        best = self.bottom
        for candidate in self.elements():
            if self.leq(candidate, left) and self.leq(candidate, right) \
                    and self.leq(best, candidate):
                best = candidate
        return best

    def height(self) -> int:
        """Length of the longest strictly ascending chain, minus one.

        The generic implementation walks the Hasse diagram of an
        enumerable lattice; infinite-carrier lattices must override it
        (or :meth:`is_enumerable` must stay False and callers use a
        widening).
        """
        elements = list(self.elements())
        memo: dict[AbstractValue, int] = {}

        def depth(element: AbstractValue) -> int:
            if element in memo:
                return memo[element]
            below = [e for e in elements
                     if self.leq(e, element) and e != element]
            memo[element] = 0 if not below else 1 + max(
                depth(e) for e in below)
            return memo[element]

        return max((depth(e) for e in elements), default=0)

    def is_enumerable(self) -> bool:
        """True when :meth:`elements` can list the whole carrier."""
        return True

    def elements(self) -> Iterable[AbstractValue]:
        """All elements, for law checking; only for enumerable lattices."""
        raise NotImplementedError(
            f"{self.name}: carrier is not enumerable")

    def contains(self, element: AbstractValue) -> bool:
        """Membership test; used to validate user-supplied facet values."""
        try:
            return element in set(self.elements())
        except NotImplementedError:
            return True

    def join_all(self, values: Iterable[AbstractValue]) -> AbstractValue:
        """Least upper bound of a (possibly empty) collection."""
        result = self.bottom
        for value in values:
            result = self.join(result, value)
        return result

    def equal(self, left: AbstractValue, right: AbstractValue) -> bool:
        """Order-theoretic equality (mutual ``leq``)."""
        return self.leq(left, right) and self.leq(right, left)

    def widen(self, previous: AbstractValue, new: AbstractValue) \
            -> AbstractValue:
        """Widening operator; the default is plain join, which suffices
        for finite-height lattices.  Infinite-height domains (the
        interval facet) override this, as the paper's footnote 1 allows.
        """
        return self.join(previous, new)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class FiniteLattice(Lattice):
    """A lattice given extensionally by its elements and order relation.

    Useful for tests and for small user-defined facet domains: provide
    the element set and the set of covering pairs (or the full order),
    and joins/meets are computed from the order.
    """

    def __init__(self, name: str, elements: Sequence[AbstractValue],
                 leq_pairs: Iterable[tuple[AbstractValue, AbstractValue]]) \
            -> None:
        self.name = name
        self._elements = list(dict.fromkeys(elements))
        order: set[tuple[AbstractValue, AbstractValue]] = set()
        for element in self._elements:
            order.add((element, element))
        order.update(leq_pairs)
        # Transitive closure.
        changed = True
        while changed:
            changed = False
            for (a, b) in list(order):
                for (c, d) in list(order):
                    if b == c and (a, d) not in order:
                        order.add((a, d))
                        changed = True
        self._order = order
        bottoms = [e for e in self._elements
                   if all((e, other) in order for other in self._elements)]
        tops = [e for e in self._elements
                if all((other, e) in order for other in self._elements)]
        if len(bottoms) != 1 or len(tops) != 1:
            raise ValueError(
                f"{name}: not a bounded lattice "
                f"(bottoms={bottoms}, tops={tops})")
        self._bottom = bottoms[0]
        self._top = tops[0]

    @property
    def bottom(self) -> AbstractValue:
        return self._bottom

    @property
    def top(self) -> AbstractValue:
        return self._top

    def leq(self, left: AbstractValue, right: AbstractValue) -> bool:
        return (left, right) in self._order

    def join(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        uppers = [e for e in self._elements
                  if self.leq(left, e) and self.leq(right, e)]
        least = [u for u in uppers
                 if all(self.leq(u, other) for other in uppers)]
        if len(least) != 1:
            raise ValueError(
                f"{self.name}: no unique join of {left!r} and {right!r}")
        return least[0]

    def elements(self) -> Iterable[AbstractValue]:
        return list(self._elements)


def pointwise_leq(lattice: Lattice,
                  left: Sequence[AbstractValue],
                  right: Sequence[AbstractValue]) -> bool:
    """Component-wise order of equal-length tuples over one lattice."""
    return len(left) == len(right) and all(
        lattice.leq(l, r) for l, r in zip(left, right))


def is_monotonic(lattice_in: Lattice, lattice_out: Lattice,
                 fn: Callable[..., AbstractValue], arity: int) -> bool:
    """Exhaustively check monotonicity of ``fn`` over enumerable domains.

    This is Definition 2 condition 2 as a decision procedure for small
    facets; the hypothesis suites sample it for large ones.
    """
    elements = list(lattice_in.elements())
    if arity == 1:
        pairs = [(a, b) for a in elements for b in elements
                 if lattice_in.leq(a, b)]
        return all(lattice_out.leq(fn(a), fn(b)) for a, b in pairs)
    if arity == 2:
        comparable = [(a, b) for a in elements for b in elements
                      if lattice_in.leq(a, b)]
        for (a1, b1) in comparable:
            for (a2, b2) in comparable:
                if not lattice_out.leq(fn(a1, a2), fn(b1, b2)):
                    return False
        return True
    raise NotImplementedError("monotonicity check supports arity 1 and 2")
