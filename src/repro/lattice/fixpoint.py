"""Fixpoint iteration over finite-height lattices.

Both the facet analysis (Figure 4) and the abstract function environment
``zeta`` compute least fixpoints of monotone functionals.  Definition 2's
finite-height condition guarantees termination; for domains of infinite
height (the interval facet) the lattice's :meth:`widen` accelerates the
ascent, as the paper's footnote 1 anticipates.

Two engines are provided:

* :func:`lfp_table` — Kleene iteration of a whole-table transformer, the
  direct reading of Figure 4's ``h``;
* :class:`WorklistSolver` — a dependency-tracking worklist engine used for
  the per-call-pattern abstract function cache (a minimal-function-graph
  style fixpoint), which recomputes only entries whose inputs changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.lattice.core import AbstractValue, Lattice


@dataclass
class FixpointStats:
    """Iteration counters, reported by the analysis benchmarks."""

    iterations: int = 0
    evaluations: int = 0


def lfp_table(initial: Mapping[Hashable, AbstractValue],
              transformer: Callable[[Mapping[Hashable, AbstractValue]],
                                    Mapping[Hashable, AbstractValue]],
              lattice: Lattice,
              max_iterations: int = 10_000,
              use_widening: bool = False,
              stats: FixpointStats | None = None) \
        -> dict[Hashable, AbstractValue]:
    """Least fixpoint of a monotone table-to-table transformer.

    The transformer must be monotone in every entry; iteration starts
    from ``initial`` and joins (or widens) each step's output into the
    current table until nothing changes.
    """
    table = dict(initial)
    for _ in range(max_iterations):
        if stats is not None:
            stats.iterations += 1
        updated = transformer(table)
        changed = False
        merged = dict(table)
        for key, value in updated.items():
            old = merged.get(key, lattice.bottom)
            new = (lattice.widen(old, value) if use_widening
                   else lattice.join(old, value))
            if not lattice.leq(new, old):
                merged[key] = new
                changed = True
        if not changed:
            return merged
        table = merged
    raise RuntimeError(
        f"fixpoint did not stabilize within {max_iterations} iterations; "
        f"is the domain of finite height / the transformer monotone?")


class WorklistSolver:
    """Demand-driven fixpoint of ``cell -> value`` equations.

    Cells are arbitrary hashable keys (here: ``(function, abstract
    arguments)`` pairs).  The equation for a cell is evaluated by a
    user-supplied function that may :meth:`ask` for other cells; asking
    records a dependency edge and returns the current approximation.
    When a cell's value grows, its dependents are re-evaluated.  All
    values live in one lattice.
    """

    def __init__(self, lattice: Lattice,
                 equation: Callable[["WorklistSolver", Hashable],
                                    AbstractValue],
                 max_updates: int = 200_000,
                 use_widening: bool = False) -> None:
        self.lattice = lattice
        self.equation = equation
        self.values: dict[Hashable, AbstractValue] = {}
        self.dependents: dict[Hashable, set[Hashable]] = {}
        self.stats = FixpointStats()
        self._max_updates = max_updates
        self._use_widening = use_widening
        self._updates = 0
        self._active: list[Hashable] = []
        self._pending: list[Hashable] = []
        self._queued: set[Hashable] = set()
        self._evaluated: set[Hashable] = set()

    def ask(self, cell: Hashable) -> AbstractValue:
        """Current approximation of ``cell``; records the dependency of
        the cell currently being evaluated."""
        if self._active:
            self.dependents.setdefault(cell, set()).add(self._active[-1])
        if cell not in self._evaluated and cell not in self._queued:
            self._queued.add(cell)
            self._pending.append(cell)
        return self.values.get(cell, self.lattice.bottom)

    def drain(self) -> int:
        """Evaluate queued cells (and everything they destabilize) to
        quiescence; returns the number of cell-value *growths*.  Must be
        called from outside any equation evaluation."""
        assert not self._active, "drain() called re-entrantly"
        growths = 0
        while self._pending:
            cell = self._pending.pop()
            self._queued.discard(cell)
            self._evaluated.add(cell)
            self._updates += 1
            if self._updates > self._max_updates:
                raise RuntimeError(
                    "worklist fixpoint exceeded its update budget")
            old = self.values.get(cell, self.lattice.bottom)
            self._active.append(cell)
            try:
                raw = self.equation(self, cell)
            finally:
                self._active.pop()
            self.stats.evaluations += 1
            new = (self.lattice.widen(old, raw) if self._use_widening
                   else self.lattice.join(old, raw))
            if not self.lattice.leq(new, old):
                growths += 1
                self.values[cell] = new
                for dependent in self.dependents.get(cell, ()):
                    if dependent not in self._queued:
                        self._queued.add(dependent)
                        self._pending.append(dependent)
        return growths

    def solve(self, root: Hashable) -> AbstractValue:
        """Solve the equation system reachable from ``root``."""
        self.ask(root)
        self.drain()
        return self.values.get(root, self.lattice.bottom)
