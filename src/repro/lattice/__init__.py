"""Lattice infrastructure: ordered domains, products, fixpoints, laws."""

from repro.lattice.bt import BT, BT_LATTICE, BTLattice
from repro.lattice.core import (
    AbstractValue, FiniteLattice, Lattice, is_monotonic, pointwise_leq)
from repro.lattice.fixpoint import FixpointStats, WorklistSolver, lfp_table
from repro.lattice.flat import ChainLattice, FlatLattice
from repro.lattice.laws import (
    check_bounds, check_finite_height, check_join, check_lattice,
    check_meet, check_partial_order)
from repro.lattice.pevalue import PE_LATTICE, PEValue, PEValueLattice
from repro.lattice.product import SmashedProduct

__all__ = [
    "BT", "BT_LATTICE", "BTLattice",
    "AbstractValue", "FiniteLattice", "Lattice", "is_monotonic",
    "pointwise_leq",
    "FixpointStats", "WorklistSolver", "lfp_table",
    "ChainLattice", "FlatLattice",
    "check_bounds", "check_finite_height", "check_join", "check_lattice",
    "check_meet", "check_partial_order",
    "PE_LATTICE", "PEValue", "PEValueLattice",
    "SmashedProduct",
]
