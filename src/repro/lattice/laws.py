"""Executable lattice laws.

Definition 2 puts three structural obligations on a facet: the domain is
a lattice of finite height, the operators are monotone, and the
abstraction is safe.  This module checks the first obligation (and the
order axioms generally) on enumerable lattices; the test suites call
these checkers on every shipped facet domain and hypothesis samples them
on the non-enumerable ones.

Each checker returns a list of human-readable violation strings — empty
means the law holds — so a failing test shows exactly which elements
break which axiom.
"""

from __future__ import annotations

from itertools import product as cartesian
from typing import Iterable

from repro.lattice.core import AbstractValue, Lattice


def check_partial_order(lattice: Lattice,
                        elements: Iterable[AbstractValue] | None = None) \
        -> list[str]:
    """Reflexivity, antisymmetry and transitivity of ``leq``."""
    items = list(elements if elements is not None else lattice.elements())
    violations = []
    for a in items:
        if not lattice.leq(a, a):
            violations.append(f"not reflexive at {a!r}")
    for a, b in cartesian(items, items):
        if a != b and lattice.leq(a, b) and lattice.leq(b, a):
            violations.append(f"not antisymmetric at {a!r}, {b!r}")
    for a, b, c in cartesian(items, items, items):
        if lattice.leq(a, b) and lattice.leq(b, c) \
                and not lattice.leq(a, c):
            violations.append(f"not transitive at {a!r}, {b!r}, {c!r}")
    return violations


def check_bounds(lattice: Lattice,
                 elements: Iterable[AbstractValue] | None = None) \
        -> list[str]:
    """Bottom below and top above everything."""
    items = list(elements if elements is not None else lattice.elements())
    violations = []
    for a in items:
        if not lattice.leq(lattice.bottom, a):
            violations.append(f"bottom not below {a!r}")
        if not lattice.leq(a, lattice.top):
            violations.append(f"top not above {a!r}")
    return violations


def check_join(lattice: Lattice,
               elements: Iterable[AbstractValue] | None = None) \
        -> list[str]:
    """``join`` is a least upper bound: commutative, idempotent, an
    upper bound, and below every other upper bound."""
    items = list(elements if elements is not None else lattice.elements())
    violations = []
    for a, b in cartesian(items, items):
        j = lattice.join(a, b)
        if lattice.join(b, a) != j and not lattice.equal(
                lattice.join(b, a), j):
            violations.append(f"join not commutative at {a!r}, {b!r}")
        if not lattice.leq(a, j) or not lattice.leq(b, j):
            violations.append(f"join not an upper bound at {a!r}, {b!r}")
    for a in items:
        if not lattice.equal(lattice.join(a, a), a):
            violations.append(f"join not idempotent at {a!r}")
    for a, b, c in cartesian(items, items, items):
        if lattice.leq(a, c) and lattice.leq(b, c) \
                and not lattice.leq(lattice.join(a, b), c):
            violations.append(
                f"join not least at {a!r}, {b!r} vs bound {c!r}")
    return violations


def check_meet(lattice: Lattice,
               elements: Iterable[AbstractValue] | None = None) \
        -> list[str]:
    """``meet`` is a greatest lower bound (dual of :func:`check_join`)."""
    items = list(elements if elements is not None else lattice.elements())
    violations = []
    for a, b in cartesian(items, items):
        m = lattice.meet(a, b)
        if not lattice.leq(m, a) or not lattice.leq(m, b):
            violations.append(f"meet not a lower bound at {a!r}, {b!r}")
    for a, b, c in cartesian(items, items, items):
        if lattice.leq(c, a) and lattice.leq(c, b) \
                and not lattice.leq(c, lattice.meet(a, b)):
            violations.append(
                f"meet not greatest at {a!r}, {b!r} vs bound {c!r}")
    return violations


def check_lattice(lattice: Lattice,
                  elements: Iterable[AbstractValue] | None = None,
                  with_meet: bool = True) -> list[str]:
    """All structural laws at once."""
    items = list(elements if elements is not None else lattice.elements())
    violations = check_partial_order(lattice, items)
    violations += check_bounds(lattice, items)
    violations += check_join(lattice, items)
    if with_meet:
        violations += check_meet(lattice, items)
    return violations


def check_finite_height(lattice: Lattice, bound: int = 64) -> list[str]:
    """Fail when the reported height exceeds ``bound`` — a smoke test for
    Definition 2 condition 1 on shipped facets (the interval facet is
    exempt and must document its widening instead)."""
    height = lattice.height()
    if height > bound:
        return [f"{lattice.name}: height {height} exceeds bound {bound}"]
    return []
