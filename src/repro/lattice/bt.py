"""The binding-time domain (Section 3.2, ``Values~``).

A three-element chain::

    bot  <=  Static  <=  Dynamic

``Static`` abstracts "partially evaluates to a constant"; ``Dynamic``
abstracts "stays residual".  The abstraction from the online level is
:func:`repro.algebra.abstraction.tau_offline`.
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.lattice.core import AbstractValue
from repro.lattice.flat import ChainLattice


class BT(enum.Enum):
    """Binding-time values; comparisons follow the chain order."""

    BOT = 0
    STATIC = 1
    DYNAMIC = 2

    def __le__(self, other: "BT") -> bool:
        return self.value <= other.value

    def __lt__(self, other: "BT") -> bool:
        return self.value < other.value

    @property
    def is_static(self) -> bool:
        return self is BT.STATIC

    @property
    def is_dynamic(self) -> bool:
        return self is BT.DYNAMIC

    @property
    def is_bottom(self) -> bool:
        return self is BT.BOT

    def join(self, other: "BT") -> "BT":
        return self if self.value >= other.value else other

    def __str__(self) -> str:
        return {BT.BOT: "⊥", BT.STATIC: "Static",
                BT.DYNAMIC: "Dynamic"}[self]


class BTLattice(ChainLattice):
    """Chain-lattice wrapper over :class:`BT`."""

    def __init__(self) -> None:
        super().__init__("BindingTimes", [BT.BOT, BT.STATIC, BT.DYNAMIC])

    def elements(self) -> Iterable[AbstractValue]:
        return [BT.BOT, BT.STATIC, BT.DYNAMIC]


#: Shared lattice instance.
BT_LATTICE = BTLattice()
