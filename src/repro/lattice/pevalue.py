"""The partial-evaluation value domain ``Values`` (Section 3.2).

``Values`` is the flat lattice over the object language's constants::

    bot_Values  <=  c  <=  top_Values        (distinct constants incomparable)

* ``bot`` means "no value reaches here" (dead or divergent);
* a constant means "this expression partially evaluates to exactly c";
* ``top`` means "unknown at PE time" — the expression stays residual.

This is simultaneously the carrier of the partial-evaluation facet
(Definition 7) and the co-domain of every *open* facet operator at the
online level (Definition 2, condition 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.lang.values import Value, format_value, is_value, sort_of, \
    values_equal
from repro.lattice.core import AbstractValue, Lattice

_BOT_TAG = "bot"
_CONST_TAG = "const"
_TOP_TAG = "top"


@dataclass(frozen=True)
class PEValue:
    """One element of the ``Values`` lattice."""

    tag: str
    value: Value | None = None

    # -- constructors -------------------------------------------------
    @staticmethod
    def bottom() -> "PEValue":
        return _BOTTOM

    @staticmethod
    def top() -> "PEValue":
        return _TOP

    @staticmethod
    def const(value: Value) -> "PEValue":
        if not is_value(value):
            raise TypeError(f"not an object-language value: {value!r}")
        return PEValue(_CONST_TAG, value)

    # -- observers ----------------------------------------------------
    @property
    def is_bottom(self) -> bool:
        return self.tag == _BOT_TAG

    @property
    def is_top(self) -> bool:
        return self.tag == _TOP_TAG

    @property
    def is_const(self) -> bool:
        return self.tag == _CONST_TAG

    def constant(self) -> Value:
        """The constant carried by a ``const`` element."""
        if not self.is_const:
            raise ValueError(f"{self} carries no constant")
        assert self.value is not None or self.value is not None
        return self.value  # type: ignore[return-value]

    @property
    def sort(self) -> str | None:
        """Sort of the carried constant, if any."""
        return sort_of(self.value) if self.is_const else None  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PEValue):
            return NotImplemented
        if self.tag != other.tag:
            return False
        if self.tag != _CONST_TAG:
            return True
        return values_equal(self.value, other.value)  # type: ignore[arg-type]

    def __hash__(self) -> int:
        if self.tag != _CONST_TAG:
            return hash(self.tag)
        return hash((self.tag, sort_of(self.value), self.value))  # type: ignore[arg-type]

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥"
        if self.is_top:
            return "⊤"
        return format_value(self.value)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return f"PEValue({self})"


_BOTTOM = PEValue(_BOT_TAG)
_TOP = PEValue(_TOP_TAG)


class PEValueLattice(Lattice):
    """The flat lattice structure on :class:`PEValue`."""

    name = "Values"

    @property
    def bottom(self) -> AbstractValue:
        return _BOTTOM

    @property
    def top(self) -> AbstractValue:
        return _TOP

    def leq(self, left: AbstractValue, right: AbstractValue) -> bool:
        assert isinstance(left, PEValue) and isinstance(right, PEValue)
        if left.is_bottom or right.is_top:
            return True
        if right.is_bottom or left.is_top:
            return left == right
        return left == right

    def join(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        assert isinstance(left, PEValue) and isinstance(right, PEValue)
        if left.is_bottom:
            return right
        if right.is_bottom:
            return left
        if left == right:
            return left
        return _TOP

    def meet(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        assert isinstance(left, PEValue) and isinstance(right, PEValue)
        if left.is_top:
            return right
        if right.is_top:
            return left
        if left == right:
            return left
        return _BOTTOM

    def height(self) -> int:
        return 2

    def is_enumerable(self) -> bool:
        return False

    def contains(self, element: AbstractValue) -> bool:
        return isinstance(element, PEValue)

    def sample_elements(self) -> Iterable[AbstractValue]:
        """A representative finite sample for the law checkers."""
        return [_BOTTOM, PEValue.const(0), PEValue.const(1),
                PEValue.const(-3), PEValue.const(True),
                PEValue.const(2.5), _TOP]


#: Shared lattice instance.
PE_LATTICE = PEValueLattice()
