"""Smashed products of lattices (Definitions 5 and 9, footnote 2).

Given lattices ``D_1 ... D_m``, the smashed product identifies every tuple
with a bottom component with the product's bottom::

    smash(d_1, ..., d_m) = (d_1, ..., d_m)   if no d_i is bottom
                         = bottom            otherwise

The product of facet values a program point carries is always an element
of such a smashed product, ordered component-wise.  We represent the
product bottom by the all-bottoms tuple, which makes the component-wise
order and join correct without a separate sentinel.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lattice.core import AbstractValue, Lattice


class SmashedProduct(Lattice):
    """The smashed product of a non-empty sequence of lattices."""

    def __init__(self, name: str, components: Sequence[Lattice]) -> None:
        if not components:
            raise ValueError("a product needs at least one component")
        self.name = name
        self.components = tuple(components)

    @property
    def arity(self) -> int:
        return len(self.components)

    @property
    def bottom(self) -> AbstractValue:
        return tuple(c.bottom for c in self.components)

    @property
    def top(self) -> AbstractValue:
        return tuple(c.top for c in self.components)

    def smash(self, values: Sequence[AbstractValue]) -> tuple:
        """Build a product element, collapsing to bottom when any
        component is bottom (footnote 2)."""
        values = tuple(values)
        if len(values) != self.arity:
            raise ValueError(
                f"{self.name}: expected {self.arity} components, "
                f"got {len(values)}")
        if any(component.leq(value, component.bottom)
               for component, value in zip(self.components, values)):
            return self.bottom
        return values

    def is_bottom(self, element: Sequence[AbstractValue]) -> bool:
        return any(component.leq(value, component.bottom)
                   for component, value in zip(self.components, element))

    def leq(self, left: AbstractValue, right: AbstractValue) -> bool:
        assert isinstance(left, tuple) and isinstance(right, tuple)
        if self.is_bottom(left):
            return True
        if self.is_bottom(right):
            return False
        return all(component.leq(l, r) for component, l, r
                   in zip(self.components, left, right))

    def join(self, left: AbstractValue, right: AbstractValue) -> tuple:
        assert isinstance(left, tuple) and isinstance(right, tuple)
        if self.is_bottom(left):
            return tuple(right)
        if self.is_bottom(right):
            return tuple(left)
        return tuple(component.join(l, r) for component, l, r
                     in zip(self.components, left, right))

    def meet(self, left: AbstractValue, right: AbstractValue) -> tuple:
        assert isinstance(left, tuple) and isinstance(right, tuple)
        return self.smash([component.meet(l, r) for component, l, r
                           in zip(self.components, left, right)])

    def height(self) -> int:
        # Strict chains in a smashed product ascend in at least one
        # component at each step; the bound is the sum of the heights.
        return sum(component.height() for component in self.components)

    def is_enumerable(self) -> bool:
        return all(component.is_enumerable()
                   for component in self.components)

    def elements(self) -> Iterable[AbstractValue]:
        def rec(index: int) -> Iterable[tuple]:
            if index == self.arity:
                yield ()
                return
            for value in self.components[index].elements():
                for rest in rec(index + 1):
                    yield (value,) + rest

        seen: set[tuple] = set()
        for raw in rec(0):
            element = self.smash(raw)
            if element not in seen:
                seen.add(element)
                yield element

    def contains(self, element: AbstractValue) -> bool:
        if not isinstance(element, tuple) or len(element) != self.arity:
            return False
        return all(component.contains(value) for component, value
                   in zip(self.components, element))

    def widen(self, previous: AbstractValue, new: AbstractValue) -> tuple:
        assert isinstance(previous, tuple) and isinstance(new, tuple)
        if self.is_bottom(previous):
            return tuple(new)
        if self.is_bottom(new):
            return tuple(previous)
        return tuple(component.widen(p, n) for component, p, n
                     in zip(self.components, previous, new))
