"""repro — Parameterized Partial Evaluation (Consel & Khoo, PLDI 1991).

A complete reproduction of the paper: a first-order-plus-lambda strict
functional language (Figure 1), conventional partial evaluation
(Figure 2), the facet framework (Definitions 2-7), online parameterized
partial evaluation (Figure 3), abstract facets and the binding-time
facet (Definitions 8-10), facet analysis (Figure 4), the offline
specializer it drives, and the higher-order analysis of Figures 5-6 —
plus a facet library (Sign, Parity, Interval, Vector-Size), safety
checkers for the paper's properties, a program corpus, and benchmarks
regenerating every figure.

Quickstart::

    from repro import (FacetSuite, VectorSizeFacet, parse_program,
                       specialize_online)
    from repro.workloads import INNER_PRODUCT_SRC

    program = parse_program(INNER_PRODUCT_SRC)
    suite = FacetSuite([VectorSizeFacet()])
    inputs = [suite.input("vector", size=3)] * 2
    residual = specialize_online(program, inputs, suite).program
    print(residual)            # Figure 8

See README.md for the guided tour and DESIGN.md for the paper-to-module
map.
"""

from repro.lang import (
    Interpreter, Program, Vector, parse_expr, parse_program, pretty,
    pretty_program, run_program)
from repro.lattice import BT, PEValue
from repro.facets import (
    ConstSetFacet, Facet, FacetSuite, FacetVector, IntervalFacet,
    ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.abstract import AbstractFacet, AbstractSuite, \
    AbstractVector
from repro.online import (
    OnlineSpecializer, PEConfig, PEStats, SpecializationResult,
    UnfoldStrategy, specialize_online)
from repro.offline import (
    AnalysisResult, FacetAnalyzer, OfflineResult, OfflineSpecializer,
    analyze, analyze_higher_order, facet_table, specialize_offline)
from repro.baselines import DYN, bta, specialize_simple
from repro.workloads import WORKLOADS, generate_program, get_workload

__version__ = "1.0.0"

__all__ = [
    "Interpreter", "Program", "Vector", "parse_expr", "parse_program",
    "pretty", "pretty_program", "run_program",
    "BT", "PEValue",
    "ConstSetFacet", "Facet", "FacetSuite", "FacetVector",
    "IntervalFacet",
    "ParityFacet", "SignFacet", "VectorSizeFacet",
    "AbstractFacet", "AbstractSuite", "AbstractVector",
    "OnlineSpecializer", "PEConfig", "PEStats", "SpecializationResult",
    "UnfoldStrategy", "specialize_online",
    "AnalysisResult", "FacetAnalyzer", "OfflineResult",
    "OfflineSpecializer", "analyze", "analyze_higher_order",
    "facet_table", "specialize_offline",
    "DYN", "bta", "specialize_simple",
    "WORKLOADS", "generate_program", "get_workload",
    "__version__",
]
