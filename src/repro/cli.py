"""``ppe`` — command-line front end.

Subcommands:

* ``ppe run FILE ARGS...`` — evaluate a program on literal arguments;
  ``--backend {interp,compiled,shadow}`` picks the engine (``shadow``
  runs both and verifies they agree);
* ``ppe compile FILE`` — lower a program to native Python through
  :mod:`repro.backend` and print the emitted module;
* ``ppe specialize FILE SPEC...`` — online PPE; each SPEC is a literal
  (static), ``dyn`` (dynamic), or ``facet=value`` pairs like
  ``size=3`` / ``sign=pos`` (dynamic with facet information);
* ``ppe analyze FILE SPEC...`` — facet analysis; SPECs as above but
  literals mean Static, and the Figure 9 table is printed;
* ``ppe offline FILE SPEC...`` — analysis + offline specialization;
* ``ppe cogen emit FILE SPEC...`` — emit the program's generating
  extension as a standalone Python module (``--output PATH``; the
  module's ``specialize(inputs)`` replays the analysis' decisions with
  no re-parsing or re-analysis — see :mod:`repro.genext`);
* ``ppe cogen run FILE SPEC...`` — emit the genext in memory and
  specialize through it (the fused path the service's ``genext``
  engine serves);
* ``ppe workloads`` — list the shipped program corpus;
* ``ppe batch MANIFEST`` — serve a JSON manifest of specialization
  requests through :mod:`repro.service` (worker pool, deadlines,
  cross-request cache, graceful degradation);
* ``ppe serve`` — long-running stdin/stdout JSONL loop over the same
  service, for driving from other processes;
* ``ppe gateway`` — asyncio HTTP front door over the same service
  (:mod:`repro.gateway`): ``POST /v1/specialize`` (single, batch and
  ``?stream=1`` chunked-progress modes), ``GET /v1/health``, ``GET
  /v1/stats``; admission control via ``--max-queue`` (bounded queue,
  sheds with 429 + Retry-After), ``--quota RATE[:BURST]``
  (per-API-key token buckets) and ``--priority-key KEY`` (the
  high-priority lane);
* ``ppe store {stats,gc,verify}`` — administer the persistent
  artifact store (:mod:`repro.store`): print its snapshot, enforce a
  byte cap (``gc`` also takes ``--max-quarantine N`` to prune the
  quarantine table down to its N most recent rows), or checksum every
  row (``verify`` exits 1 when it quarantined corrupt entries — the
  scriptable health check).

Facets available from the command line: ``sign``, ``parity``,
``interval`` (``interval=lo:hi``), ``size``.

``specialize``, ``analyze`` and ``offline`` accept ``--profile [PATH]``:
a JSON report with per-phase wall-clock times (parse / analyze /
specialize / simplify), the specializer's work counters, and the facet
suite's cache hit rates is written to PATH (stderr when omitted or
``-``).  The report's ``stats.budget`` section records budget usage
and any graceful degradations (see :mod:`repro.engine.budget`).

``batch``, ``serve`` and ``gateway`` share the service flags: the
budget flags below, ``--engine``, ``--backend``, ``--store-path`` /
``--store-max-bytes``, ``--fault-plan`` and ``--health``, plus
``--workers`` / ``--deadline`` / ``--cache-size``.

``specialize``, ``offline``, ``batch`` and ``serve`` accept the budget
flags ``--max-steps`` / ``--max-residual-nodes`` /
``--max-unfold-depth`` / ``--max-wall-seconds`` (0 = unlimited).
Crossing a budget never fails the run: the engine widens at the
offending call and reports the degradations on stderr.  For ``batch``
and ``serve`` the flags are service-wide defaults; per-request
``config`` entries win.

``batch`` and ``serve`` accept ``--engine
{online,offline,genext,simple}``: the engine for requests that do not
name one themselves (``genext`` serves from per-program emitted
generating extensions, amortized across spec vectors via the worker
cache and the store's ``genext`` artifact kind).

``batch`` and ``serve`` also accept ``--backend {interp,compiled}``:
with ``compiled``, each successful residual additionally carries its
compiled-backend artifact (a ``compiled`` key on the result), cached
alongside the residual so compilation cost is amortized across
identical requests.

``batch`` and ``serve`` accept ``--store-path PATH`` (and optionally
``--store-max-bytes N``) to mount the persistent artifact store as a
second cache tier below the in-memory LRU: results survive restarts,
and an identical manifest re-run against a warm store performs zero
specializations.

``batch`` and ``serve`` accept ``--fault-plan SPEC`` (inline JSON or
a file path; also settable as ``REPRO_FAULT_PLAN``): a deterministic
seeded fault-injection plan (:mod:`repro.faults`) threaded through
every failure seam of the service — the chaos-testing entry point.
They also accept ``--health [PATH]``: after the run (``batch``) or at
shutdown (``serve``), write the service's hardening introspection —
circuit-breaker states, the poison-pill quarantine table, watchdog
recycles, injected-fault counts — as JSON to PATH, or stderr when
PATH is omitted or ``-``.  The same document answers the serve loop's
``{"op": "health"}`` op, and its counters appear in the ``--profile``
report's ``faults`` / ``breaker`` / ``quarantine`` / ``watchdog``
sections.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.backend.verify import BACKENDS
from repro.lang.parser import parse_program
from repro.lang.interp import run_program
from repro.lang.pretty import pretty_program
from repro.facets.vector import FacetSuite, FacetVector
from repro.facets.abstract.vector import AbstractSuite
from repro.lang.values import Value
from repro.observability import PhaseTimer, build_report, write_report
from repro.online.specializer import specialize_online
from repro.offline.analysis import analyze
from repro.offline.report import facet_table
from repro.offline.specializer import OfflineSpecializer
from repro.service.results import ENGINES
from repro.service.specs import SpecError, parse_spec, parse_value
from repro.service.worker import default_suite as _default_suite


def _parse_value(text: str) -> Value:
    try:
        return parse_value(text)
    except SpecError as error:
        raise SystemExit(f"ppe: {error}") from None


def _parse_spec(suite: FacetSuite, text: str) -> FacetVector | Value:
    try:
        return parse_spec(suite, text)
    except SpecError as error:
        raise SystemExit(f"ppe: {error}") from None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ppe",
        description="Parameterized partial evaluation "
                    "(Consel & Khoo, PLDI 1991)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="evaluate a program")
    run_cmd.add_argument("file", type=Path)
    run_cmd.add_argument("args", nargs="*")
    run_cmd.add_argument(
        "--backend", choices=BACKENDS, default="interp",
        help="execution engine: the tree-walking interpreter "
             "(default), natively compiled Python, or 'shadow' "
             "(both, verified against each other)")

    compile_cmd = sub.add_parser(
        "compile",
        help="lower a program to Python via the compiled backend")
    compile_cmd.add_argument("file", type=Path)
    compile_cmd.add_argument(
        "--output", type=Path, default=None, metavar="PATH",
        help="write the emitted Python to PATH (default stdout)")

    spec_cmds = []
    for name, help_text in (
            ("specialize", "online parameterized PE"),
            ("analyze", "facet analysis (Figure 4)"),
            ("offline", "facet analysis + offline specialization")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("file", type=Path)
        cmd.add_argument("specs", nargs="*")
        cmd.add_argument(
            "--profile", nargs="?", const="-", default=None,
            metavar="PATH",
            help="emit a JSON profile report (phase times, work "
                 "counters, cache hit rates) to PATH, or stderr "
                 "when PATH is omitted or '-'")
        if name != "analyze":
            spec_cmds.append(cmd)

    def _add_budget_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--max-steps", type=int, default=None, metavar="N",
            help="soft PE-step budget; past it the engine widens "
                 "instead of raising (0 = unlimited)")
        cmd.add_argument(
            "--max-residual-nodes", type=int, default=None,
            metavar="N",
            help="soft residual-size budget in AST nodes "
                 "(0 = unlimited)")
        cmd.add_argument(
            "--max-unfold-depth", type=int, default=None, metavar="N",
            help="unfold-depth cap; deeper calls residualize and "
                 "record a degrade event (0 = unlimited)")
        cmd.add_argument(
            "--max-wall-seconds", type=float, default=None,
            metavar="SECONDS",
            help="soft wall-clock budget for one specialization "
                 "(0 = unlimited)")

    for cmd in spec_cmds:
        _add_budget_flags(cmd)

    cogen_cmd = sub.add_parser(
        "cogen",
        help="emitted generating extensions (the fused cogen path)")
    cogen_sub = cogen_cmd.add_subparsers(dest="cogen_command",
                                         required=True)
    cogen_emit = cogen_sub.add_parser(
        "emit",
        help="emit the program's generating extension as Python")
    cogen_emit.add_argument(
        "--output", type=Path, default=None, metavar="PATH",
        help="write the emitted module to PATH (default stdout)")
    cogen_run = cogen_sub.add_parser(
        "run",
        help="emit the genext in memory and specialize through it")
    for cmd in (cogen_emit, cogen_run):
        cmd.add_argument("file", type=Path)
        cmd.add_argument("specs", nargs="*")

    sub.add_parser("workloads", help="list the shipped corpus")

    batch_cmd = sub.add_parser(
        "batch",
        help="specialize a JSON manifest of requests via the service")
    batch_cmd.add_argument("manifest", type=Path)
    serve_cmd = sub.add_parser(
        "serve", help="JSONL request/response loop on stdin/stdout")
    gateway_cmd = sub.add_parser(
        "gateway",
        help="asyncio HTTP front door with admission control "
             "(POST /v1/specialize, GET /v1/health, GET /v1/stats)")
    gateway_cmd.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="address to bind (default 127.0.0.1)")
    gateway_cmd.add_argument(
        "--port", type=int, default=8787, metavar="N",
        help="port to bind (0 = let the kernel pick; default 8787)")
    gateway_cmd.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="admission-queue bound: jobs queued or running before "
             "new work is shed with 429 (default 64)")
    gateway_cmd.add_argument(
        "--quota", default=None, metavar="RATE[:BURST]",
        help="per-API-key token-bucket quota: RATE admissions/second "
             "with an optional BURST cap (default: no quotas)")
    gateway_cmd.add_argument(
        "--priority-key", action="append", default=None, metavar="KEY",
        help="API key granted the high-priority lane (repeatable): "
             "jumps queued normal work and sheds last")
    gateway_cmd.add_argument(
        "--batch-max", type=int, default=8, metavar="N",
        help="max concurrent submissions drained into one service "
             "wave (default 8)")
    for cmd in (batch_cmd, serve_cmd, gateway_cmd):
        cmd.add_argument(
            "--workers", type=int, default=2, metavar="N",
            help="worker processes (0 = run requests inline; "
                 "default 2)")
        cmd.add_argument(
            "--deadline", type=float, default=None, metavar="SECONDS",
            help="default per-request deadline (requests may override)")
        cmd.add_argument(
            "--cache-size", type=int, default=256, metavar="N",
            help="cross-request residual-cache capacity "
                 "(0 disables; default 256)")
    for cmd in (batch_cmd, serve_cmd, gateway_cmd):
        _add_budget_flags(cmd)
        cmd.add_argument(
            "--engine", choices=ENGINES, default="online",
            help="engine for requests that name none themselves "
                 "('genext' serves from per-program emitted "
                 "generating extensions; default 'online')")
        cmd.add_argument(
            "--backend", choices=("interp", "compiled"),
            default="interp",
            help="with 'compiled', successful residuals additionally "
                 "carry their compiled-backend artifact (cached "
                 "alongside the residual)")
        cmd.add_argument(
            "--store-path", type=Path, default=None, metavar="PATH",
            help="mount the persistent artifact store at PATH as a "
                 "second cache tier (shared across workers and "
                 "restarts; created if missing)")
        cmd.add_argument(
            "--store-max-bytes", type=int, default=None, metavar="N",
            help="byte cap for the persistent store; past it the "
                 "least-recently-used entries are evicted "
                 "(default: unbounded)")
        cmd.add_argument(
            "--fault-plan", default=None, metavar="SPEC",
            help="deterministic fault-injection plan: inline JSON or "
                 "a file path (also: the REPRO_FAULT_PLAN variable)")
        cmd.add_argument(
            "--health", nargs="?", const="-", default=None,
            metavar="PATH",
            help="after the run, write hardening introspection "
                 "(breakers, quarantine, watchdog, injected faults) "
                 "as JSON to PATH, or stderr when omitted or '-'")
    store_cmd = sub.add_parser(
        "store",
        help="administer the persistent artifact store")
    store_sub = store_cmd.add_subparsers(dest="store_command",
                                         required=True)
    for name, help_text in (
            ("stats", "print the store snapshot as JSON"),
            ("gc", "evict least-recently-used entries past the cap"),
            ("verify", "checksum every row, quarantining corrupt "
                       "ones; exits 1 if any were corrupt")):
        cmd = store_sub.add_parser(name, help=help_text)
        cmd.add_argument(
            "--store-path", type=Path, required=True, metavar="PATH",
            help="path of the store database")
        if name == "gc":
            cmd.add_argument(
                "--store-max-bytes", type=int, default=None,
                metavar="N",
                help="byte cap to enforce (omitting it makes gc a "
                     "report-only no-op)")
            cmd.add_argument(
                "--max-quarantine", type=int, default=None,
                metavar="N",
                help="prune the quarantine table down to its N most "
                     "recently quarantined rows (omitting it leaves "
                     "the table alone)")

    batch_cmd.add_argument(
        "--output", type=Path, default=None, metavar="PATH",
        help="write the JSON results array to PATH (default stdout)")
    batch_cmd.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="PATH",
        help="emit a JSON profile report (phase times, service "
             "counters, cache hit rate) to PATH, or stderr when PATH "
             "is omitted or '-'")

    options = parser.parse_args(argv)

    if options.command == "workloads":
        from repro.workloads import WORKLOADS
        for workload in WORKLOADS.values():
            marker = " [higher-order]" if workload.higher_order else ""
            print(f"{workload.name:18} {workload.description}{marker}")
        return 0

    if options.command == "cogen":
        return _run_cogen(options)

    if options.command == "batch":
        return _run_batch(options)

    if options.command == "serve":
        return _run_serve(options)

    if options.command == "gateway":
        return _run_gateway(options)

    if options.command == "store":
        return _run_store(options)

    profile_to = getattr(options, "profile", None)
    timer = PhaseTimer()

    with timer.phase("parse"):
        program = parse_program(options.file.read_text())

    if options.command == "run":
        arguments = [_parse_value(a) for a in options.args]
        if options.backend == "interp":
            result = run_program(program, *arguments)
        else:
            from repro.backend import execute_program
            from repro.observability import BackendStats
            backend_stats = BackendStats()
            result = execute_program(program, arguments,
                                     backend=options.backend,
                                     stats=backend_stats)
            if options.backend == "shadow":
                print(f"; shadow: {backend_stats.shadow_runs} "
                      f"comparison(s), "
                      f"{backend_stats.mismatches} mismatch(es)",
                      file=sys.stderr)
        print(result)
        return 0

    if options.command == "compile":
        from repro.backend import compile_program
        compiled = compile_program(program)
        if options.output is not None:
            options.output.write_text(compiled.python_source)
        else:
            print(compiled.python_source, end="")
        print(f"; fingerprint: {compiled.fingerprint}",
              file=sys.stderr)
        return 0

    suite = _default_suite()
    specs = [_parse_spec(suite, s) for s in options.specs]

    def _emit_profile(stats=None) -> None:
        if profile_to is None:
            return
        if stats is not None:
            for name, seconds in stats.phase_seconds.items():
                timer.add(name, seconds)
        report = build_report(
            command=f"ppe {options.command} {options.file}",
            timer=timer, stats=stats, cache_stats=suite.cache_stats)
        try:
            write_report(report, profile_to)
        except OSError as error:
            raise SystemExit(
                f"ppe: cannot write profile report: {error}")

    if options.command == "specialize":
        result = specialize_online(program, specs, suite,
                                   _budget_config(options))
        print(pretty_program(result.program), end="")
        print(f"; facet evaluations: "
              f"{result.stats.facet_evaluations}", file=sys.stderr)
        _warn_degradations(result.stats)
        _emit_profile(result.stats)
        return 0

    abstract_suite = AbstractSuite(suite)
    pattern = [abstract_suite.abstract_of_online(
        s if isinstance(s, FacetVector) else suite.const_vector(s))
        for s in specs]
    with timer.phase("analyze"):
        analysis = analyze(program, pattern, abstract_suite)

    if options.command == "analyze":
        print(facet_table(analysis,
                          title=f"Facet analysis of {options.file}"))
        _emit_profile()
        return 0

    result = OfflineSpecializer(
        analysis, suite, _budget_config(options)).specialize(specs)
    print(pretty_program(result.program), end="")
    print(f"; facet evaluations: {result.stats.facet_evaluations}",
          file=sys.stderr)
    _warn_degradations(result.stats)
    _emit_profile(result.stats)
    return 0


def _budget_overrides(options: argparse.Namespace) -> dict:
    """Budget flags as PEConfig overrides; 0 means unlimited."""
    overrides = {}
    for name in ("max_steps", "max_residual_nodes",
                 "max_unfold_depth", "max_wall_seconds"):
        value = getattr(options, name, None)
        if value is not None:
            overrides[name] = None if value == 0 else value
    return overrides


def _budget_config(options: argparse.Namespace):
    from repro.online.config import PEConfig
    overrides = _budget_overrides(options)
    return PEConfig(**overrides) if overrides else None


def _warn_degradations(stats) -> None:
    if stats.degradations:
        reasons = ", ".join(
            f"{reason}: {count}" for reason, count in
            sorted(stats.degradations_by_reason.items()))
        print(f"; budget degradations: {stats.degradations} "
              f"({reasons}) — residual is correct but less "
              f"specialized", file=sys.stderr)


def _run_cogen(options: argparse.Namespace) -> int:
    """``ppe cogen {emit,run}``: the fused generating-extension path
    from the command line."""
    from repro.lang.errors import PEError
    from repro.genext import emit_genext, load_genext

    try:
        source = options.file.read_text()
    except OSError as error:
        raise SystemExit(f"ppe: cannot read program: {error}")
    try:
        emitted = emit_genext(source, list(options.specs))
    except (PEError, SpecError, ValueError) as error:
        raise SystemExit(f"ppe: {error}")
    if options.cogen_command == "emit":
        if options.output is not None:
            options.output.write_text(emitted.python_source)
        else:
            print(emitted.python_source, end="")
        print(f"; store key: {emitted.store_key}", file=sys.stderr)
        print(f"; pattern: {emitted.pattern_fingerprint}",
              file=sys.stderr)
        return 0
    module = load_genext(emitted.python_source)
    try:
        result = module.specialize_specs(list(options.specs))
    except (PEError, SpecError) as error:
        raise SystemExit(f"ppe: {error}")
    print(pretty_program(result.program), end="")
    print(f"; facet evaluations: {result.stats.facet_evaluations}",
          file=sys.stderr)
    return 0


def _run_store(options: argparse.Namespace) -> int:
    """``ppe store {stats,gc,verify}``.  ``stats`` and ``gc`` exit 0
    (their output is the report); ``verify`` exits 1 when it found —
    and quarantined — corrupt entries, so scripts can alarm on it."""
    from repro.store import ArtifactStore

    try:
        store = ArtifactStore(options.store_path)
    except OSError as error:
        raise SystemExit(f"ppe: cannot open store: {error}")
    with store:
        if options.store_command == "stats":
            payload = store.snapshot()
            payload["corrupt_quarantined"] = store.stats.store_corrupt
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if options.store_command == "gc":
            outcome = store.gc(options.store_max_bytes,
                               max_quarantine=options.max_quarantine)
            print(json.dumps(outcome, indent=2, sort_keys=True))
            return 0
        outcome = store.verify()
        # File-level corruption counts too: a damaged database is
        # quarantined at open, before verify can walk any row.
        outcome["corrupt"] = store.stats.store_corrupt
        print(json.dumps(outcome, indent=2, sort_keys=True))
        return 1 if outcome["corrupt"] else 0


def _load_fault_plan(options: argparse.Namespace):
    """The ``--fault-plan`` flag decoded, or ``None`` (the service
    then falls back to ``REPRO_FAULT_PLAN`` itself)."""
    if options.fault_plan is None:
        return None
    from repro.faults import FaultPlan
    try:
        return FaultPlan.from_spec(options.fault_plan)
    except ValueError as error:
        raise SystemExit(f"ppe: bad fault plan: {error}")


def _write_health(service, destination: str | Path) -> None:
    """``--health``: the service's hardening introspection as JSON to
    a path, or stderr for ``-``."""
    payload = json.dumps(service.health(), indent=2, sort_keys=True)
    if str(destination) == "-":
        print(payload, file=sys.stderr)
        return
    try:
        Path(destination).write_text(payload + "\n")
    except OSError as error:
        raise SystemExit(f"ppe: cannot write health report: {error}")


def _run_batch(options: argparse.Namespace) -> int:
    from repro.service import SpecializationService, load_manifest

    timer = PhaseTimer()
    try:
        text = options.manifest.read_text()
    except OSError as error:
        raise SystemExit(f"ppe: cannot read manifest: {error}")
    try:
        requests = load_manifest(text, options.manifest.parent,
                                 default_engine=options.engine)
    except (ValueError, OSError) as error:
        raise SystemExit(f"ppe: bad manifest: {error}")

    with SpecializationService(
            workers=options.workers, cache_capacity=options.cache_size,
            default_deadline=options.deadline,
            default_config=_budget_overrides(options),
            backend=options.backend,
            store_path=options.store_path,
            store_max_bytes=options.store_max_bytes,
            fault_plan=_load_fault_plan(options)) as service:
        with timer.phase("batch"):
            results = service.run_batch(requests)
        stats = service.stats
        backend_stats = service.backend_stats
        if options.health is not None:
            _write_health(service, options.health)

    payload = json.dumps([result.to_dict() for result in results],
                         indent=2, sort_keys=True)
    if options.output is not None:
        options.output.write_text(payload + "\n")
    else:
        print(payload)
    degraded = sum(1 for result in results if result.degraded)
    print(f"; {len(results)} requests, {degraded} degraded, "
          f"cache hit rate "
          f"{stats.cache_hit_rate:.0%}", file=sys.stderr)

    if options.profile is not None:
        report = build_report(
            command=f"ppe batch {options.manifest}", timer=timer,
            service_stats=stats,
            backend_stats=(backend_stats
                           if options.backend == "compiled" else None))
        try:
            write_report(report, options.profile)
        except OSError as error:
            raise SystemExit(
                f"ppe: cannot write profile report: {error}")
    return 0


def _parse_quota(spec: str | None) -> tuple[float | None, float | None]:
    """``--quota RATE[:BURST]`` decoded."""
    if spec is None:
        return None, None
    rate_text, _, burst_text = spec.partition(":")
    try:
        rate = float(rate_text)
        burst = float(burst_text) if burst_text else None
    except ValueError:
        raise SystemExit(
            f"ppe: bad --quota {spec!r}: expected RATE[:BURST]")
    if rate <= 0 or (burst is not None and burst < 1):
        raise SystemExit(
            f"ppe: bad --quota {spec!r}: RATE must be positive and "
            f"BURST >= 1")
    return rate, burst


def _run_gateway(options: argparse.Namespace) -> int:
    """``ppe gateway``: the asyncio HTTP front door, running until
    SIGINT/SIGTERM."""
    import asyncio
    import signal

    from repro.gateway import GatewayServer
    from repro.service import SpecializationService

    quota_rate, quota_burst = _parse_quota(options.quota)

    async def _main(service) -> None:
        gateway = GatewayServer(
            service, host=options.host, port=options.port,
            max_queue=options.max_queue,
            quota_rate=quota_rate, quota_burst=quota_burst,
            priority_keys=tuple(options.priority_key or ()),
            default_engine=options.engine,
            batch_max=options.batch_max)
        await gateway.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        # Handlers go in before the banner: the banner is the
        # readiness signal, and a supervisor may SIGTERM right after
        # reading it.
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loops: Ctrl-C still raises
        print(f"gateway listening on "
              f"http://{options.host}:{gateway.port}",
              file=sys.stderr, flush=True)
        try:
            await stop.wait()
        finally:
            gateway.sync_stats()
            await gateway.aclose()

    with SpecializationService(
            workers=options.workers, cache_capacity=options.cache_size,
            default_deadline=options.deadline,
            default_config=_budget_overrides(options),
            backend=options.backend,
            store_path=options.store_path,
            store_max_bytes=options.store_max_bytes,
            fault_plan=_load_fault_plan(options)) as service:
        try:
            asyncio.run(_main(service))
        except KeyboardInterrupt:
            pass
        if options.health is not None:
            _write_health(service, options.health)
    return 0


def _run_serve(options: argparse.Namespace) -> int:
    import io

    from repro.service import SpecializationService, serve

    # Undecodable bytes on stdin must not kill the loop (the line
    # iterator would raise UnicodeDecodeError before serve ever sees
    # the line): re-wrap the stream to replace them, so the garbage
    # line is answered as bad JSON like any other malformed input.
    stream_in = sys.stdin
    buffer = getattr(stream_in, "buffer", None)
    if buffer is not None:
        stream_in = io.TextIOWrapper(buffer, encoding="utf-8",
                                     errors="replace")
    with SpecializationService(
            workers=options.workers, cache_capacity=options.cache_size,
            default_deadline=options.deadline,
            default_config=_budget_overrides(options),
            backend=options.backend,
            store_path=options.store_path,
            store_max_bytes=options.store_max_bytes,
            fault_plan=_load_fault_plan(options)) as service:
        code = serve(service, stream_in, sys.stdout,
                     default_engine=options.engine)
        if options.health is not None:
            _write_health(service, options.health)
    try:
        sys.stdout.flush()
    except BrokenPipeError:
        # The consumer hung up mid-stream; point fd 1 at /dev/null so
        # the interpreter's exit-time flush does not print an
        # "Exception ignored" traceback for the same dead pipe.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return code


if __name__ == "__main__":
    raise SystemExit(main())
