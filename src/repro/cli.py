"""``ppe`` — command-line front end.

Subcommands:

* ``ppe run FILE ARGS...`` — evaluate a program on literal arguments;
* ``ppe specialize FILE SPEC...`` — online PPE; each SPEC is a literal
  (static), ``dyn`` (dynamic), or ``facet=value`` pairs like
  ``size=3`` / ``sign=pos`` (dynamic with facet information);
* ``ppe analyze FILE SPEC...`` — facet analysis; SPECs as above but
  literals mean Static, and the Figure 9 table is printed;
* ``ppe offline FILE SPEC...`` — analysis + offline specialization;
* ``ppe workloads`` — list the shipped program corpus.

Facets available from the command line: ``sign``, ``parity``,
``interval`` (``interval=lo:hi``), ``size``.

``specialize``, ``analyze`` and ``offline`` accept ``--profile [PATH]``:
a JSON report with per-phase wall-clock times (parse / analyze /
specialize / simplify), the specializer's work counters, and the facet
suite's cache hit rates is written to PATH (stderr when omitted or
``-``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lang.parser import parse_program
from repro.lang.interp import run_program
from repro.lang.pretty import pretty_program
from repro.lang.values import INT, VECTOR, Value, Vector
from repro.facets.library.interval import Interval
from repro.facets.vector import FacetSuite, FacetVector
from repro.facets import (
    IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.abstract.vector import AbstractSuite
from repro.observability import PhaseTimer, build_report, write_report
from repro.online.specializer import specialize_online
from repro.offline.analysis import analyze
from repro.offline.report import facet_table
from repro.offline.specializer import OfflineSpecializer


def _default_suite() -> FacetSuite:
    return FacetSuite([SignFacet(), ParityFacet(), IntervalFacet(),
                       VectorSizeFacet()])


def _parse_value(text: str) -> Value:
    if text == "true":
        return True
    if text == "false":
        return False
    if text.startswith("#(") and text.endswith(")"):
        items = text[2:-1].split()
        return Vector.of([float(i) for i in items])
    try:
        return int(text)
    except ValueError:
        return float(text)


def _parse_spec(suite: FacetSuite, text: str) -> FacetVector | Value:
    """``dyn``, a literal, or comma-separated ``facet=value`` pairs."""
    if text == "dyn":
        return suite.unknown(None)
    if "=" not in text:
        return _parse_value(text)
    components: dict[str, object] = {}
    sort = None
    for pair in text.split(","):
        name, _, raw = pair.partition("=")
        if name == "size":
            components["size"] = int(raw)
            sort = VECTOR
        elif name in ("sign", "parity"):
            components[name] = raw
            sort = INT
        elif name == "interval":
            lo_text, _, hi_text = raw.partition(":")
            lo = None if lo_text in ("", "-inf") else int(lo_text)
            hi = None if hi_text in ("", "inf", "+inf") else int(hi_text)
            components["interval"] = Interval(lo, hi)
            sort = INT
        else:
            raise SystemExit(f"unknown facet {name!r} in spec {text!r}")
    assert sort is not None
    return suite.input(sort, **components)  # type: ignore[arg-type]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ppe",
        description="Parameterized partial evaluation "
                    "(Consel & Khoo, PLDI 1991)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="evaluate a program")
    run_cmd.add_argument("file", type=Path)
    run_cmd.add_argument("args", nargs="*")

    for name, help_text in (
            ("specialize", "online parameterized PE"),
            ("analyze", "facet analysis (Figure 4)"),
            ("offline", "facet analysis + offline specialization")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("file", type=Path)
        cmd.add_argument("specs", nargs="*")
        cmd.add_argument(
            "--profile", nargs="?", const="-", default=None,
            metavar="PATH",
            help="emit a JSON profile report (phase times, work "
                 "counters, cache hit rates) to PATH, or stderr "
                 "when PATH is omitted or '-'")

    sub.add_parser("workloads", help="list the shipped corpus")

    options = parser.parse_args(argv)

    if options.command == "workloads":
        from repro.workloads import WORKLOADS
        for workload in WORKLOADS.values():
            marker = " [higher-order]" if workload.higher_order else ""
            print(f"{workload.name:18} {workload.description}{marker}")
        return 0

    profile_to = getattr(options, "profile", None)
    timer = PhaseTimer()

    with timer.phase("parse"):
        program = parse_program(options.file.read_text())

    if options.command == "run":
        result = run_program(program,
                             *[_parse_value(a) for a in options.args])
        print(result)
        return 0

    suite = _default_suite()
    specs = [_parse_spec(suite, s) for s in options.specs]

    def _emit_profile(stats=None) -> None:
        if profile_to is None:
            return
        if stats is not None:
            for name, seconds in stats.phase_seconds.items():
                timer.add(name, seconds)
        report = build_report(
            command=f"ppe {options.command} {options.file}",
            timer=timer, stats=stats, cache_stats=suite.cache_stats)
        try:
            write_report(report, profile_to)
        except OSError as error:
            raise SystemExit(
                f"ppe: cannot write profile report: {error}")

    if options.command == "specialize":
        result = specialize_online(program, specs, suite)
        print(pretty_program(result.program), end="")
        print(f"; facet evaluations: "
              f"{result.stats.facet_evaluations}", file=sys.stderr)
        _emit_profile(result.stats)
        return 0

    abstract_suite = AbstractSuite(suite)
    pattern = [abstract_suite.abstract_of_online(
        s if isinstance(s, FacetVector) else suite.const_vector(s))
        for s in specs]
    with timer.phase("analyze"):
        analysis = analyze(program, pattern, abstract_suite)

    if options.command == "analyze":
        print(facet_table(analysis,
                          title=f"Facet analysis of {options.file}"))
        _emit_profile()
        return 0

    result = OfflineSpecializer(analysis, suite).specialize(specs)
    print(pretty_program(result.program), end="")
    print(f"; facet evaluations: {result.stats.facet_evaluations}",
          file=sys.stderr)
    _emit_profile(result.stats)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
