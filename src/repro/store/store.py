"""The disk-backed, content-addressed artifact store.

:class:`ArtifactStore` persists JSON payloads (the service's
:meth:`~repro.service.results.SpecResult.to_dict` documents, compiled
artifacts included) keyed on request fingerprints, in one SQLite file
shared across processes and restarts.  Its contract mirrors the rest of
the serving stack: **a store problem is never the caller's problem.**

* Reads are corruption-safe.  Every row carries a SHA-256 checksum of
  its payload; a row that fails the checksum — or will not decode as
  JSON — is quarantined (moved to the ``quarantine`` table, best
  effort), counted in ``ServiceStats.store_corrupt``, and reported as
  a plain miss.  Damage below the row level (a truncated or bit-flipped
  database file that SQLite itself rejects) quarantines the whole file
  to a ``.corrupt-<n>`` sidecar and restarts empty — again a miss,
  never an exception.
* Writes are atomic.  Each ``put`` is a single ``BEGIN IMMEDIATE``
  transaction (upsert + eviction + commit); WAL journaling makes the
  commit all-or-nothing under crashes, and a failed write rolls back
  and reports ``False``.
* Eviction is LRU by a store-global access sequence under a byte cap:
  when a write pushes the payload total past ``max_bytes``, the
  least-recently-used rows go first, inside the same transaction.
* Concurrency is delegated to SQLite: WAL readers never block, writers
  queue on ``busy_timeout`` with a bounded retry on top, and every
  connection is per-process (a fork is detected by PID and reopens).

The store speaks plain dicts so it has no opinion about what it holds;
the service layer (:mod:`repro.service.scheduler`) does the
``SpecResult`` round-trip.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.faults import fault_payload, fault_point
from repro.observability.service_stats import ServiceStats
from repro.store import schema

#: Seconds SQLite itself waits on a locked database before raising.
DEFAULT_BUSY_TIMEOUT = 10.0


def _injected_locked(message: str) -> sqlite3.OperationalError:
    """The exception the store's fault seams raise for the ``error``
    kind: a locked-database error, so injection exercises the real
    contention machinery (bounded retries, ``store_errors``, degrade
    to miss) rather than an artificial code path."""
    return sqlite3.OperationalError(f"{message}: database is locked")

#: Locked-database retries on top of the busy timeout (each waits
#: ``_RETRY_SLEEP`` before trying again).
_WRITE_RETRIES = 3
_RETRY_SLEEP = 0.02


def checksum_text(payload_text: str) -> str:
    """SHA-256 hex of a serialized payload."""
    return hashlib.sha256(payload_text.encode("utf-8")).hexdigest()


def row_checksum(key: str, payload_text: str) -> str:
    """The per-row checksum: SHA-256 over ``key NUL payload``.  Binding
    the key in means a damaged b-tree can never serve one key's payload
    under another key as valid — cross-row swaps fail verification just
    like in-place damage."""
    blob = key.encode("utf-8") + b"\x00" + payload_text.encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def encode_payload(payload: Mapping[str, Any]) -> str:
    """Canonical JSON (sorted keys) so identical payloads are
    byte-identical on disk regardless of dict insertion order."""
    return json.dumps(payload, sort_keys=True)


class ArtifactStore:
    """One SQLite-backed artifact store; see module docstring."""

    def __init__(self, path: str | Path,
                 max_bytes: int | None = None,
                 stats: ServiceStats | None = None,
                 busy_timeout: float = DEFAULT_BUSY_TIMEOUT) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(
                f"max_bytes must be >= 0 or None, got {max_bytes}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.stats = stats if stats is not None else ServiceStats()
        self.busy_timeout = busy_timeout
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None
        # Open eagerly so a corrupted file is quarantined up front and
        # path problems (unwritable directory) surface at construction
        # — the one place a raise is the right answer.
        self._connection()

    # -- connection lifecycle ------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        """The per-process connection, reopened after a fork."""
        if self._conn is not None and self._pid == os.getpid():
            return self._conn
        if self._conn is not None:
            # Forked child: the inherited handle must not be used (or
            # closed — that would checkpoint under the parent).  Drop
            # the reference and open our own.
            self._conn = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = self._open()
        except sqlite3.DatabaseError:
            # The file is not a database SQLite will open (truncated
            # header, foreign schema version, flipped bytes in page
            # one): quarantine it and start empty.
            self._quarantine_file("unreadable database file")
            self._conn = self._open()
        self._pid = os.getpid()
        return self._conn

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path, timeout=self.busy_timeout, isolation_level=None)
        try:
            for pragma in schema.PRAGMAS:
                conn.execute(pragma)
            conn.execute(
                f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}")
            conn.execute("BEGIN IMMEDIATE")
            for ddl in schema.CREATE_TABLES:
                conn.execute(ddl)
            conn.execute(schema.SET_VERSION,
                         (str(schema.SCHEMA_VERSION),))
            row = conn.execute(schema.GET_VERSION).fetchone()
            conn.execute("COMMIT")
            if row is None or row[0] != str(schema.SCHEMA_VERSION):
                conn.close()
                raise sqlite3.DatabaseError(
                    f"schema version {row[0] if row else None!r} != "
                    f"{schema.SCHEMA_VERSION}")
        except BaseException:
            conn.close()
            raise
        return conn

    def _quarantine_file(self, reason: str) -> None:
        """Move the damaged database (and its WAL/SHM sidecars) aside
        and count one corruption event.  Never raises."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        self.stats.store_corrupt += 1
        for index in range(1000):
            target = self.path.with_name(
                f"{self.path.name}.corrupt-{index}")
            if not target.exists():
                break
        try:
            os.replace(self.path, target)
        except OSError:
            # Last resort: we cannot preserve the evidence, but the
            # store must come back — drop the file.
            try:
                self.path.unlink(missing_ok=True)
            except OSError:
                pass
        for suffix in ("-wal", "-shm"):
            sidecar = self.path.with_name(self.path.name + suffix)
            try:
                sidecar.unlink(missing_ok=True)
            except OSError:
                pass

    def _reset_after_corruption(self, reason: str) -> None:
        """A live connection reported ``DatabaseError`` mid-operation:
        the file is damaged below the row level.  Quarantine and
        reopen empty; the caller turns the operation into a miss."""
        self._quarantine_file(reason)
        try:
            self._conn = self._open()
            self._pid = os.getpid()
        except sqlite3.Error:
            self._conn = None

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
        self._conn = None

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reads ---------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """Look up a payload; ``None`` on miss, lock trouble, or any
        flavour of corruption.  Never raises."""
        try:
            fault_point("store.read", key=key, error=_injected_locked)
            row = self._connection().execute(
                schema.SELECT_ROW, (key,)).fetchone()
        except sqlite3.DatabaseError as error:
            if _is_locked(error):
                self.stats.store_errors += 1
            else:
                self._reset_after_corruption(str(error))
            self.stats.store_misses += 1
            return None
        except sqlite3.Error:
            self.stats.store_errors += 1
            self.stats.store_misses += 1
            return None
        if row is None:
            self.stats.store_misses += 1
            return None
        payload_text, claimed = row
        if isinstance(payload_text, str):
            # Simulated disk damage between write and read; the
            # key-bound checksum below catches it (quarantine + miss).
            payload_text = fault_payload("store.read.payload",
                                         payload_text, key=key)
        payload = self._decode_row(key, payload_text, claimed)
        if payload is None:
            self.stats.store_misses += 1
            return None
        self._touch(key)
        self.stats.store_hits += 1
        return payload

    def _decode_row(self, key: str, payload_text: object,
                    claimed: object) -> dict | None:
        """Checksum + decode; quarantines and counts a bad row."""
        if isinstance(payload_text, str) \
                and row_checksum(key, payload_text) == claimed:
            try:
                payload = json.loads(payload_text)
            except ValueError:
                payload = None
            if isinstance(payload, dict):
                return payload
        self._quarantine_row(key, payload_text, claimed,
                             "checksum/decode failure")
        return None

    def _quarantine_row(self, key: str, payload_text: object,
                        claimed: object, reason: str) -> None:
        self.stats.store_corrupt += 1
        try:
            conn = self._connection()
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(schema.QUARANTINE_ROW,
                         (key, str(payload_text), str(claimed),
                          reason, time.time()))
            conn.execute(schema.DELETE, (key,))
            conn.execute("COMMIT")
        except sqlite3.Error:
            self._rollback()

    def _touch(self, key: str) -> None:
        """Refresh recency on a hit; fire-and-forget (a lost touch
        costs LRU accuracy, not correctness)."""
        try:
            conn = self._connection()
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(schema.TOUCH, (time.time(), key))
            conn.execute("COMMIT")
        except sqlite3.Error:
            self._rollback()

    # -- writes --------------------------------------------------------
    def put(self, key: str, payload: Mapping[str, Any],
            kind: str = "result") -> bool:
        """Upsert a payload atomically, evicting LRU rows past the
        byte cap in the same transaction.  ``False`` (never an
        exception) when the write could not be committed or the
        payload alone exceeds the cap.  ``kind`` labels the row for
        reporting (``result`` or ``genext``); reads are kind-blind."""
        if kind not in schema.KINDS:
            raise ValueError(
                f"unknown artifact kind {kind!r}; expected one of "
                f"{schema.KINDS}")
        payload_text = encode_payload(payload)
        size = len(payload_text.encode("utf-8"))
        if self.max_bytes is not None and size > self.max_bytes:
            return False
        for attempt in range(_WRITE_RETRIES + 1):
            try:
                self._put_once(key, payload_text, size, kind)
            except sqlite3.DatabaseError as error:
                self._rollback()
                if _is_locked(error):
                    self.stats.store_errors += 1
                    if attempt < _WRITE_RETRIES:
                        time.sleep(_RETRY_SLEEP * (attempt + 1))
                        continue
                    return False
                self._reset_after_corruption(str(error))
                return False
            except sqlite3.Error:
                self._rollback()
                self.stats.store_errors += 1
                return False
            self.stats.store_writes += 1
            return True
        return False

    def _put_once(self, key: str, payload_text: str,
                  size: int, kind: str) -> None:
        fault_point("store.write", key=key, error=_injected_locked)
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        seq = conn.execute(schema.NEXT_SEQ).fetchone()[0]
        now = time.time()
        conn.execute(schema.UPSERT,
                     (key, payload_text,
                      row_checksum(key, payload_text),
                      kind, size, seq, now, now))
        self._evict_over_cap(conn, keep=key)
        conn.execute("COMMIT")

    def _evict_over_cap(self, conn: sqlite3.Connection,
                        keep: str | None = None) -> int:
        """Inside an open transaction: delete LRU rows until the
        payload total fits ``max_bytes``.  The just-written ``keep``
        key goes last — only if eviction alone cannot make room."""
        if self.max_bytes is None:
            return 0
        fault_point("store.evict", error=_injected_locked)
        total = conn.execute(schema.TOTAL_BYTES).fetchone()[0]
        if total <= self.max_bytes:
            return 0
        evicted = 0
        deferred: tuple[str, int] | None = None
        for key, size in conn.execute(schema.LRU_ROWS).fetchall():
            if total <= self.max_bytes:
                break
            if key == keep:
                deferred = (key, size)
                continue
            conn.execute(schema.DELETE, (key,))
            total -= size
            evicted += 1
        if total > self.max_bytes and deferred is not None:
            conn.execute(schema.DELETE, (deferred[0],))
            evicted += 1
        self.stats.store_evictions += evicted
        return evicted

    def delete(self, key: str) -> bool:
        try:
            conn = self._connection()
            conn.execute("BEGIN IMMEDIATE")
            cursor = conn.execute(schema.DELETE, (key,))
            conn.execute("COMMIT")
            return cursor.rowcount > 0
        except sqlite3.Error:
            self._rollback()
            self.stats.store_errors += 1
            return False

    def _rollback(self) -> None:
        try:
            if self._conn is not None:
                self._conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass

    # -- maintenance ---------------------------------------------------
    def gc(self, max_bytes: int | None = None,
           max_quarantine: int | None = None) -> dict:
        """Enforce a byte cap now (the store's own by default), prune
        the quarantine table down to its ``max_quarantine`` most
        recent rows, and report what went.  Used by ``ppe store gc``.
        Before this grew a quarantine bound, every corrupt row ever
        seen stayed on disk forever — gc never touched that table."""
        cap = self.max_bytes if max_bytes is None else max_bytes
        before = self.total_bytes()
        evicted = 0
        if cap is not None:
            try:
                conn = self._connection()
                conn.execute("BEGIN IMMEDIATE")
                saved = self.max_bytes
                self.max_bytes = cap
                try:
                    # gc has no freshly-written row to protect.
                    evicted = self._evict_over_cap(conn, keep=None)
                finally:
                    self.max_bytes = saved
                conn.execute("COMMIT")
            except sqlite3.DatabaseError as error:
                self._rollback()
                if _is_locked(error):
                    self.stats.store_errors += 1
                else:
                    self._reset_after_corruption(str(error))
            except sqlite3.Error:
                self._rollback()
                self.stats.store_errors += 1
        pruned = 0
        if max_quarantine is not None:
            pruned = self.prune_quarantine(max_quarantine)
        after = self.total_bytes()
        return {"evicted": evicted, "bytes_before": before,
                "bytes_after": after,
                "freed_bytes": max(before - after, 0),
                "entries": len(self),
                "quarantine_pruned": pruned,
                "quarantined": self.quarantined()}

    def prune_quarantine(self, max_rows: int) -> int:
        """Drop all but the ``max_rows`` most recently quarantined
        rows; returns how many went.  Best effort like every other
        store operation — a locked or damaged database prunes
        nothing and counts a ``store_error``."""
        if max_rows < 0:
            raise ValueError(
                f"max_rows must be >= 0, got {max_rows}")
        try:
            conn = self._connection()
            conn.execute("BEGIN IMMEDIATE")
            cursor = conn.execute(schema.PRUNE_QUARANTINE, (max_rows,))
            conn.execute("COMMIT")
            return max(cursor.rowcount, 0)
        except sqlite3.DatabaseError as error:
            self._rollback()
            if _is_locked(error):
                self.stats.store_errors += 1
            else:
                self._reset_after_corruption(str(error))
            return 0
        except sqlite3.Error:
            self._rollback()
            self.stats.store_errors += 1
            return 0

    def verify(self) -> dict:
        """Checksum every row, quarantining failures; report
        ``{"checked": n, "corrupt": k}``.  Used by
        ``ppe store verify``."""
        checked = 0
        bad: list[tuple[str, object, object]] = []
        try:
            rows = self._connection().execute(
                schema.ALL_ROWS).fetchall()
        except sqlite3.DatabaseError as error:
            if _is_locked(error):
                self.stats.store_errors += 1
                return {"checked": 0, "corrupt": 0}
            self._reset_after_corruption(str(error))
            return {"checked": 0, "corrupt": 1}
        except sqlite3.Error:
            self.stats.store_errors += 1
            return {"checked": 0, "corrupt": 0}
        for key, payload_text, claimed in rows:
            checked += 1
            ok = isinstance(payload_text, str) \
                and row_checksum(key, payload_text) == claimed
            if ok:
                try:
                    ok = isinstance(json.loads(payload_text), dict)
                except ValueError:
                    ok = False
            if not ok:
                bad.append((key, payload_text, claimed))
        for key, payload_text, claimed in bad:
            self._quarantine_row(key, payload_text, claimed,
                                 "verify: checksum/decode failure")
        return {"checked": checked, "corrupt": len(bad)}

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return self._scalar(schema.COUNT_ROWS, 0)

    def __contains__(self, key: str) -> bool:
        try:
            row = self._connection().execute(
                schema.SELECT_ROW, (key,)).fetchone()
        except sqlite3.Error:
            return False
        return row is not None

    def keys(self) -> Iterator[str]:
        """Live keys, least-recently-used first."""
        try:
            rows = self._connection().execute(
                schema.ALL_KEYS).fetchall()
        except sqlite3.Error:
            return iter(())
        return iter([key for (key,) in rows])

    def total_bytes(self) -> int:
        return self._scalar(schema.TOTAL_BYTES, 0)

    def quarantined(self) -> int:
        return self._scalar(schema.COUNT_QUARANTINED, 0)

    def _scalar(self, sql: str, default: int) -> int:
        try:
            row = self._connection().execute(sql).fetchone()
        except sqlite3.Error:
            return default
        return default if row is None else row[0]

    def kinds(self) -> dict[str, int]:
        """Live row counts per artifact kind (absent kinds omitted)."""
        try:
            rows = self._connection().execute(
                schema.COUNT_BY_KIND).fetchall()
        except sqlite3.Error:
            return {}
        return {kind: count for kind, count in rows}

    def snapshot(self) -> dict:
        """JSON-ready description for ``ppe store stats``."""
        return {
            "path": str(self.path),
            "entries": len(self),
            "bytes": self.total_bytes(),
            "max_bytes": self.max_bytes,
            "quarantined": self.quarantined(),
            "kinds": self.kinds(),
        }


def _is_locked(error: sqlite3.Error) -> bool:
    """A contention error (retry/skip) as opposed to corruption
    (quarantine and rebuild)."""
    message = str(error).lower()
    return isinstance(error, sqlite3.OperationalError) \
        and ("locked" in message or "busy" in message)
