"""Persistent content-addressed artifact store.

The cross-request :class:`~repro.service.cache.ResidualCache` and the
compiled artifacts of :mod:`repro.backend` die with the process; this
package is the disk tier below them — one SQLite file (WAL mode)
holding JSON-round-tripped results keyed on request fingerprints,
shared across worker processes and restarts:

* :class:`ArtifactStore` (:mod:`repro.store.store`) — checksummed,
  atomically-written, corruption-quarantining, LRU-evicting key/value
  store over plain dict payloads;
* :mod:`repro.store.schema` — the DDL, SQL and pragmas in one place.

The service layer mounts it as a read-through/write-behind second cache
tier (see :class:`repro.service.scheduler.SpecializationService`); the
``ppe store {stats,gc,verify}`` CLI administers it; the crash and
corruption harness in ``tests/store/`` pins the never-raise contract.
"""

from repro.store.store import (
    ArtifactStore, checksum_text, encode_payload, row_checksum)

__all__ = ["ArtifactStore", "checksum_text", "encode_payload",
           "row_checksum"]
