"""Schema and SQL of the persistent artifact store.

One module holds every piece of SQL so :mod:`repro.store.store` is pure
control flow.  The layout:

* ``artifacts`` — the content-addressed table.  ``key`` is the
  request fingerprint (:meth:`repro.service.results.SpecRequest.fingerprint`),
  ``payload`` the JSON-serialized result, ``checksum`` a SHA-256 over
  ``key NUL payload`` verified on every read (binding the key in, so a
  cross-row payload swap is as detectable as in-place damage), ``size_bytes`` the payload's
  UTF-8 length (what the byte cap meters), and ``seq`` a store-global
  monotonic counter bumped on every write *and* every hit — eviction
  orders by ``seq``, which is exact LRU without depending on wall-clock
  resolution.  ``last_access``/``hits`` are reporting-only.
* ``quarantine`` — rows that failed their checksum or would not decode.
  They are moved here (best effort) rather than deleted so a corruption
  incident stays inspectable; nothing ever reads them back.
* ``meta`` — the schema version, checked on open so a future layout
  change can migrate or refuse cleanly instead of misreading rows.

Pragmas: WAL journaling gives multi-process readers-don't-block-writers
semantics and crash atomicity; ``synchronous=NORMAL`` is the standard
WAL pairing (an OS crash may lose the last transactions but cannot
corrupt committed state); ``busy_timeout`` makes concurrent writers
queue instead of raising ``database is locked``.
"""

from __future__ import annotations

#: Bumped on any layout change; a store with a different version is
#: treated as foreign and rebuilt (the payloads are a cache — losing
#: them costs recomputation, not correctness).  v2 added the ``kind``
#: column distinguishing result rows from emitted generating
#: extensions (``genext``); v1 stores are quarantined and rebuilt.
SCHEMA_VERSION = 2

#: The artifact kinds the store recognizes.  ``result`` rows hold one
#: specialization result keyed by request fingerprint; ``genext`` rows
#: hold a program's emitted generating-extension bundle keyed by
#: ``(source, config)`` with the specs *excluded*.
KINDS = ("result", "genext")

CREATE_TABLES = (
    """
    CREATE TABLE IF NOT EXISTS artifacts (
        key         TEXT PRIMARY KEY,
        payload     TEXT NOT NULL,
        checksum    TEXT NOT NULL,
        kind        TEXT NOT NULL DEFAULT 'result',
        size_bytes  INTEGER NOT NULL,
        seq         INTEGER NOT NULL,
        created_at  REAL NOT NULL,
        last_access REAL NOT NULL,
        hits        INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS artifacts_by_seq ON artifacts (seq)
    """,
    """
    CREATE TABLE IF NOT EXISTS quarantine (
        key            TEXT,
        payload        TEXT,
        checksum       TEXT,
        reason         TEXT,
        quarantined_at REAL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
)

SET_VERSION = """
    INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)
"""

GET_VERSION = """
    SELECT value FROM meta WHERE key = 'schema_version'
"""

#: ``seq`` source: max over both the live table and a high-water mark
#: kept in ``meta`` would be overkill — evicted rows may reuse numbers,
#: which is harmless because only the *relative* order of live rows
#: matters for LRU.
NEXT_SEQ = """
    SELECT COALESCE(MAX(seq), 0) + 1 FROM artifacts
"""

UPSERT = """
    INSERT INTO artifacts
        (key, payload, checksum, kind, size_bytes, seq, created_at,
         last_access, hits)
    VALUES (?, ?, ?, ?, ?, ?, ?, ?, 0)
    ON CONFLICT (key) DO UPDATE SET
        payload = excluded.payload,
        checksum = excluded.checksum,
        kind = excluded.kind,
        size_bytes = excluded.size_bytes,
        seq = excluded.seq,
        last_access = excluded.last_access
"""

SELECT_ROW = """
    SELECT payload, checksum FROM artifacts WHERE key = ?
"""

TOUCH = """
    UPDATE artifacts
    SET seq = (SELECT COALESCE(MAX(seq), 0) + 1 FROM artifacts),
        last_access = ?, hits = hits + 1
    WHERE key = ?
"""

DELETE = """
    DELETE FROM artifacts WHERE key = ?
"""

QUARANTINE_ROW = """
    INSERT INTO quarantine (key, payload, checksum, reason,
                            quarantined_at)
    VALUES (?, ?, ?, ?, ?)
"""

TOTAL_BYTES = """
    SELECT COALESCE(SUM(size_bytes), 0) FROM artifacts
"""

COUNT_ROWS = """
    SELECT COUNT(*) FROM artifacts
"""

COUNT_BY_KIND = """
    SELECT kind, COUNT(*) FROM artifacts GROUP BY kind
"""

COUNT_QUARANTINED = """
    SELECT COUNT(*) FROM quarantine
"""

#: Keep the N most recently quarantined rows, drop the rest — the
#: quarantine table is evidence, not a live index, and ``ppe store gc
#: --max-quarantine`` bounds how much evidence accumulates.
PRUNE_QUARANTINE = """
    DELETE FROM quarantine WHERE rowid NOT IN (
        SELECT rowid FROM quarantine
        ORDER BY quarantined_at DESC, rowid DESC
        LIMIT ?
    )
"""

#: Oldest-first by the monotonic access sequence: exact LRU.
LRU_ROWS = """
    SELECT key, size_bytes FROM artifacts ORDER BY seq ASC
"""

ALL_ROWS = """
    SELECT key, payload, checksum FROM artifacts ORDER BY key
"""

ALL_KEYS = """
    SELECT key FROM artifacts ORDER BY seq ASC
"""

PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA synchronous=NORMAL",
)
