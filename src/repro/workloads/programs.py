"""The program corpus used by examples, tests and benchmarks.

Each entry is a named, parsed, validated program plus helpers to build
matching inputs.  ``inner_product`` is Figure 7 of the paper verbatim
(modulo surface syntax); the rest exercise the shipped facets the way
the paper's Section 1 motivates (signs, ranges, sizes) and give the
benchmarks scalable families.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.lang.parser import parse_program
from repro.lang.program import Program

#: Figure 7: inner product over the vector ADT.
INNER_PRODUCT_SRC = """
(define (iprod A B)
  (let ((n (vsize A)))
    (dotprod A B n)))

(define (dotprod A B n)
  (if (= n 0)
      0.0
      (+ (* (vref A n) (vref B n))
         (dotprod A B (- n 1)))))
"""

#: x^n by repeated squaring — the classic PE example; static exponent.
POWER_SRC = """
(define (power x n)
  (if (= n 0)
      1
      (if (= (mod n 2) 0)
          (square (power x (div n 2)))
          (* x (power x (- n 1))))))

(define (square y) (* y y))
"""

#: Sign-facet showcase: |x| piped through scaling; knowing only the
#: sign of the input folds every test away.
SIGN_PIPELINE_SRC = """
(define (normalize x scale)
  (if (< x 0)
      (neg (shrink (neg x) scale))
      (shrink x scale)))

(define (shrink x scale)
  (if (> x scale)
      (shrink (- x scale) scale)
      x))
"""

#: Interval-facet showcase: a table lookup whose bounds check dissolves
#: when the index range is known.
CLAMPED_LOOKUP_SRC = """
(define (lookup V i lo hi)
  (let ((j (clamp i lo hi)))
    (if (and (>= j 1) (<= j (vsize V)))
        (vref V j)
        -1.0)))

(define (clamp x lo hi) (max lo (min x hi)))
"""

#: Parity-facet showcase: alternating sum where the parity of the index
#: decides the branch.
ALTERNATING_SUM_SRC = """
(define (altsum V)
  (walk V (vsize V)))

(define (walk V n)
  (if (= n 0)
      0.0
      (if (= (mod n 2) 0)
          (+ (vref V n) (walk V (- n 1)))
          (- (walk V (- n 1)) (vref V n)))))
"""

#: Horner evaluation of a polynomial with a static coefficient count.
POLY_EVAL_SRC = """
(define (poly C x)
  (horner C x (vsize C) 0.0))

(define (horner C x n acc)
  (if (= n 0)
      acc
      (horner C x (- n 1) (+ (* acc x) (vref C n)))))
"""

#: gcd — fully static inputs collapse to a constant.
GCD_SRC = """
(define (gcd a b)
  (if (= b 0)
      a
      (gcd b (mod a b))))
"""

#: Naive fibonacci — for cache/variant stress.
FIB_SRC = """
(define (fib n)
  (if (<= n 1)
      n
      (+ (fib (- n 1)) (fib (- n 2)))))
"""

#: A small arithmetic-expression interpreter written in the object
#: language: programs are encoded as instruction vectors, which makes
#: the first Futamura projection runnable (specialize ``run`` on a
#: static code vector, dynamic input).  Opcodes: 0 halt-with-acc,
#: 1 add-constant, 2 mul-by-constant, 3 add-input, 4 negate.
MINI_VM_SRC = """
(define (run code x)
  (step code x (vsize code) 1 0.0))

(define (step code x n pc acc)
  (if (> pc n)
      acc
      (dispatch code x n pc acc (vref code pc))))

(define (dispatch code x n pc acc op)
  (if (= op 0.0)
      acc
      (if (= op 1.0)
          (step code x n (+ pc 2) (+ acc (vref code (+ pc 1))))
          (if (= op 2.0)
              (step code x n (+ pc 2) (* acc (vref code (+ pc 1))))
              (if (= op 3.0)
                  (step code x n (+ pc 1) (+ acc x))
                  (step code x n (+ pc 1) (neg acc)))))))
"""

#: Matrix-vector product with the matrix stored row-major in one
#: vector; static dimensions (carried by the Size facet on the flat
#: matrix and the input vector) unroll both loops completely.
MATVEC_SRC = """
(define (matvec M x out)
  (let ((n (vsize x)))
    (rows M x out (div (vsize M) n) n)))

(define (rows M x out i n)
  (if (= i 0)
      out
      (rows M x (updvec out i (dot M x i n n)) (- i 1) n)))

(define (dot M x i j n)
  (if (= j 0)
      0.0
      (+ (* (vref M (+ (* (- i 1) n) j)) (vref x j))
         (dot M x i (- j 1) n))))
"""

#: Binary search over a sorted vector of floats; with a static size the
#: probe sequence is static and the whole search tree unrolls.
BINARY_SEARCH_SRC = """
(define (bsearch V key)
  (walk V key 1 (vsize V)))

(define (walk V key lo hi)
  (if (> lo hi)
      0
      (let ((mid (div (+ lo hi) 2)))
        (if (= (vref V mid) key)
            mid
            (if (< (vref V mid) key)
                (walk V key (+ mid 1) hi)
                (walk V key lo (- mid 1)))))))
"""

#: Higher-order corpus entry: fold/compose pipeline for the Section 5.5
#: analysis.
HO_PIPELINE_SRC = """
(define (main V k)
  (let ((f (lambda (a) (* a k)))
        (g (lambda (a) (+ a 1.0))))
    (fold (compose f g) 0.0 V (vsize V))))

(define (compose f g)
  (lambda (a) (f (g a))))

(define (fold f acc V n)
  (if (= n 0)
      acc
      (fold f (f (+ acc (vref V n))) V (- n 1))))
"""

#: Higher-order: a conditional selecting between functions (exercises
#: T_C and Figure 6's advance application).
HO_SELECT_SRC = """
(define (main x flag)
  (let ((h (if flag
               (lambda (a) (+ a 1))
               (lambda (a) (* a 2)))))
    (h (h x))))
"""


@dataclass(frozen=True)
class Workload:
    """A named corpus entry."""

    name: str
    source: str
    description: str
    higher_order: bool = False

    def program(self) -> Program:
        return parse_program(self.source)


WORKLOADS: dict[str, Workload] = {
    w.name: w for w in [
        Workload("inner_product", INNER_PRODUCT_SRC,
                 "Figure 7: inner product over the vector ADT"),
        Workload("power", POWER_SRC,
                 "x^n by repeated squaring; classic static exponent"),
        Workload("sign_pipeline", SIGN_PIPELINE_SRC,
                 "sign-directed normalization (Sign facet showcase)"),
        Workload("clamped_lookup", CLAMPED_LOOKUP_SRC,
                 "bounds-checked lookup (Interval facet showcase)"),
        Workload("alternating_sum", ALTERNATING_SUM_SRC,
                 "parity-directed alternating sum (Parity facet)"),
        Workload("poly_eval", POLY_EVAL_SRC,
                 "Horner polynomial evaluation, static degree"),
        Workload("gcd", GCD_SRC, "Euclid's gcd"),
        Workload("fib", FIB_SRC, "naive Fibonacci"),
        Workload("mini_vm", MINI_VM_SRC,
                 "arithmetic VM; first Futamura projection target"),
        Workload("matvec", MATVEC_SRC,
                 "matrix-vector product, row-major flat matrix; "
                 "static dims unroll both loops"),
        Workload("binary_search", BINARY_SEARCH_SRC,
                 "binary search; static size unrolls the probe tree"),
        Workload("ho_pipeline", HO_PIPELINE_SRC,
                 "fold/compose pipeline (Section 5.5)",
                 higher_order=True),
        Workload("ho_select", HO_SELECT_SRC,
                 "function-valued conditional (T_C, Figure 6)",
                 higher_order=True),
    ]
}


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"no workload {name!r}; known: {known}") from None


def inner_product_of_size(n: int) -> str:
    """Source of Figure 7 — size-independent; kept for symmetry."""
    return INNER_PRODUCT_SRC


def vm_program_square_plus(c: float) -> list[float]:
    """Mini-VM code computing ``(x + c) * x`` — add-input, add-constant
    c, mul is not expressible directly on x, so: acc = x + c then
    negate/mul tricks; kept simple: acc = ((0 + x) + c) * 2."""
    return [3.0, 1.0, c, 2.0, 2.0, 0.0]
