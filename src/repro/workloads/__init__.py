"""Program corpus and random program generation."""

from repro.workloads.generator import GenConfig, generate_program
from repro.workloads.programs import (
    ALTERNATING_SUM_SRC, CLAMPED_LOOKUP_SRC, FIB_SRC, GCD_SRC,
    HO_PIPELINE_SRC, HO_SELECT_SRC, INNER_PRODUCT_SRC, MINI_VM_SRC,
    POLY_EVAL_SRC, POWER_SRC, SIGN_PIPELINE_SRC, WORKLOADS, Workload,
    get_workload, vm_program_square_plus)

__all__ = [
    "GenConfig", "generate_program",
    "ALTERNATING_SUM_SRC", "CLAMPED_LOOKUP_SRC", "FIB_SRC", "GCD_SRC",
    "HO_PIPELINE_SRC", "HO_SELECT_SRC", "INNER_PRODUCT_SRC",
    "MINI_VM_SRC", "POLY_EVAL_SRC", "POWER_SRC", "SIGN_PIPELINE_SRC",
    "WORKLOADS", "Workload", "get_workload", "vm_program_square_plus",
]
