"""Program corpus, random program generation, and the adversarial
family used by the robustness suite."""

from repro.workloads.generator import (
    ADVERSARIAL_CASES, AdversarialCase, GenConfig, adversarial_cases,
    branchy_descent, deep_static_loop, generate_program,
    mutual_pingpong, self_inlining_tree)
from repro.workloads.programs import (
    ALTERNATING_SUM_SRC, CLAMPED_LOOKUP_SRC, FIB_SRC, GCD_SRC,
    HO_PIPELINE_SRC, HO_SELECT_SRC, INNER_PRODUCT_SRC, MINI_VM_SRC,
    POLY_EVAL_SRC, POWER_SRC, SIGN_PIPELINE_SRC, WORKLOADS, Workload,
    get_workload, vm_program_square_plus)

__all__ = [
    "ADVERSARIAL_CASES", "AdversarialCase", "GenConfig",
    "adversarial_cases", "branchy_descent", "deep_static_loop",
    "generate_program", "mutual_pingpong", "self_inlining_tree",
    "ALTERNATING_SUM_SRC", "CLAMPED_LOOKUP_SRC", "FIB_SRC", "GCD_SRC",
    "HO_PIPELINE_SRC", "HO_SELECT_SRC", "INNER_PRODUCT_SRC",
    "MINI_VM_SRC", "POLY_EVAL_SRC", "POWER_SRC", "SIGN_PIPELINE_SRC",
    "WORKLOADS", "Workload", "get_workload", "vm_program_square_plus",
]
