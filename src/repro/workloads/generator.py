"""Random well-formed program generation for property-based testing.

The generator produces first-order programs that are *guaranteed to
terminate*: every recursive call decreases a designated natural-number
parameter and is guarded by a base-case test on it.  That lets the
property suites state the paper's theorems without "modulo termination"
caveats: Theorem 1 (PPE constants agree with standard evaluation),
residual correctness (the golden PE equation), and analysis soundness
(Static implies a constant at specialization time) are all checked by
running the generated programs.

Programs use the ``int`` and ``bool`` algebras (the facet-rich ones).
Shape knobs live on :class:`GenConfig`; everything is driven by a seed
so hypothesis can shrink.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.lang.ast import (
    Call, Const, Expr, FunDef, If, Let, Prim, Var)
from repro.lang.program import Program

#: Primitives the generator may emit, by result kind.  Division-like
#: operators are emitted with guarded divisors so generated programs
#: cannot error.
_INT_BINOPS = ("+", "-", "*", "min", "max")
_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class GenConfig:
    """Size and shape knobs."""

    functions: int = 3
    max_params: int = 3
    max_depth: int = 4
    let_probability: float = 0.2
    call_probability: float = 0.35
    if_probability: float = 0.4
    const_range: int = 9


def generate_program(seed: int,
                     config: GenConfig | None = None) -> Program:
    """A random, validated, terminating first-order program."""
    config = config if config is not None else GenConfig()
    rng = random.Random(seed)
    arities = [rng.randint(1, config.max_params)
               for _ in range(config.functions)]
    names = [f"f{i}" for i in range(config.functions)]
    defs = []
    for index, name in enumerate(names):
        params = tuple(f"x{j}" for j in range(arities[index]))
        body = _gen_function_body(rng, config, index, names, arities,
                                  params)
        defs.append(FunDef(name, params, body))
    program = Program(tuple(defs))
    program.validate()
    return program


def _gen_function_body(rng: random.Random, config: GenConfig,
                       index: int, names: list[str],
                       arities: list[int],
                       params: tuple[str, ...]) -> Expr:
    """Body shape: ``if x0 <= 0 then <base> else <step>`` where the
    step may recurse with ``x0 - d`` (d >= 1) — structural recursion on
    the first parameter guarantees termination."""
    ctx = _Ctx(rng, config, index, names, arities, list(params))
    base = _gen_int(ctx, depth=0, allow_rec=False)
    step = _gen_int(ctx, depth=0, allow_rec=True)
    return If(Prim("<=", (Var(params[0]), Const(0))), base, step)


@dataclass
class _Ctx:
    rng: random.Random
    config: GenConfig
    index: int
    names: list[str]
    arities: list[int]
    scope: list[str]


def _gen_int(ctx: _Ctx, depth: int, allow_rec: bool) -> Expr:
    rng, config = ctx.rng, ctx.config
    if depth >= config.max_depth:
        return _leaf(ctx)
    roll = rng.random()
    if roll < config.let_probability:
        name = f"v{depth}_{rng.randint(0, 999)}"
        bound = _gen_int(ctx, depth + 1, allow_rec)
        ctx.scope.append(name)
        try:
            body = _gen_int(ctx, depth + 1, allow_rec)
        finally:
            ctx.scope.pop()
        return Let(name, bound, body)
    if roll < config.let_probability + config.if_probability:
        test = _gen_bool(ctx, depth + 1)
        then = _gen_int(ctx, depth + 1, allow_rec)
        else_ = _gen_int(ctx, depth + 1, allow_rec)
        return If(test, then, else_)
    if allow_rec and roll < config.let_probability \
            + config.if_probability + config.call_probability:
        return _gen_call(ctx, depth)
    op = rng.choice(_INT_BINOPS)
    return Prim(op, (_gen_int(ctx, depth + 1, allow_rec),
                     _gen_int(ctx, depth + 1, allow_rec)))


def _gen_call(ctx: _Ctx, depth: int) -> Expr:
    """A recursive or forward call, always decreasing in argument 0."""
    rng = ctx.rng
    callee = rng.randrange(len(ctx.names))
    arity = ctx.arities[callee]
    decreasing = Prim("-", (Var(ctx.scope[0]),
                            Const(rng.randint(1, 3))))
    args: list[Expr] = [decreasing]
    for _ in range(arity - 1):
        args.append(_gen_int(ctx, depth + 1, allow_rec=False))
    return Call(ctx.names[callee], tuple(args))


def _gen_bool(ctx: _Ctx, depth: int) -> Expr:
    rng, config = ctx.rng, ctx.config
    if depth >= config.max_depth or rng.random() < 0.7:
        op = rng.choice(_COMPARISONS)
        return Prim(op, (_leaf(ctx), _leaf(ctx)))
    connective = rng.choice(("and", "or", "not"))
    if connective == "not":
        return Prim("not", (_gen_bool(ctx, depth + 1),))
    return Prim(connective, (_gen_bool(ctx, depth + 1),
                             _gen_bool(ctx, depth + 1)))


def _leaf(ctx: _Ctx) -> Expr:
    rng, config = ctx.rng, ctx.config
    if ctx.scope and rng.random() < 0.6:
        return Var(rng.choice(ctx.scope))
    return Const(rng.randint(-config.const_range, config.const_range))


# -- adversarial corpus ----------------------------------------------------
#
# The generated programs above are terminating *by construction*; the
# family below is the opposite: programs on which naive PE diverges or
# explodes, used by the robustness suite and the budget-overhead
# benchmark.  Each case unfolds under a *dynamic* test, so the
# exponential blowup happens at specialization time while a concrete
# run stays cheap — which is exactly what the differential oracle
# needs: the source must be runnable so the degraded residual can be
# checked against it.
#
# (A *linear* static grind — ``count (n+1) (d-1)`` style accumulation —
# is already tamed by the ``max_variants`` generalization ladder before
# any soft budget fires, so it does not belong in this family.)

@dataclass(frozen=True)
class AdversarialCase:
    """One known-exploding program for the robustness suite."""

    name: str
    description: str
    #: Program source; the goal function takes a single dynamic
    #: argument and the blowup depth is baked in as a literal.
    source: str
    #: Concrete goal arguments for the differential oracle.  Chosen so
    #: a standard evaluation of the *source* is cheap even though
    #: specialization is exponential.
    oracle_args: tuple[int, ...]


def branchy_descent(depth: int = 64) -> str:
    """Dynamic-test recursion: every unfold level residualizes a test
    on ``d`` and unfolds *both* arms, each with a distinct dynamic
    argument — a ``2^depth`` specialization tree, linear concretely."""
    return f"""
(define (main d) (walk {depth} d))
(define (walk n d)
  (if (<= n 0)
      d
      (if (< d 0)
          (walk (- n 1) (+ d 1))
          (walk (- n 1) (- d 1)))))
"""


def self_inlining_tree(depth: int = 48) -> str:
    """Self-inlining loop: the body re-inlines itself twice per level
    (both calls carry an informative static ``n``), so unfolding is
    ``2^depth`` while a concrete run is bounded by the dynamic ``d``."""
    return f"""
(define (main d) (tree {depth} d))
(define (tree n d)
  (if (<= n 0)
      d
      (if (<= d 0)
          0
          (+ (tree (- n 1) (- d 1))
             (tree (- n 1) (- d 2))))))
"""


def mutual_pingpong(depth: int = 64) -> str:
    """The branchy descent split across two mutually recursive
    functions, so degradation fires at *two* sites."""
    return f"""
(define (main d) (ping {depth} d))
(define (ping n d)
  (if (<= n 0)
      d
      (if (< d 0)
          (pong (- n 1) (+ d 1))
          (pong (- n 1) (- d 2)))))
(define (pong n d)
  (if (<= n 0)
      (- 0 d)
      (if (< d 0)
          (ping (- n 1) (+ d 2))
          (ping (- n 1) (- d 1)))))
"""


def deep_static_loop() -> str:
    """A fully static countdown: specialized on ``n = depth`` it
    unfolds ``depth`` levels before folding to a constant — the
    regression program for trampolined (stack-safe) specialization;
    it needs ``unfold_fuel > depth`` and exhausts no budget."""
    return """
(define (main n) (count n 0))
(define (count n acc)
  (if (<= n 0)
      acc
      (count (- n 1) (+ acc 1))))
"""


def adversarial_cases() -> tuple[AdversarialCase, ...]:
    """The shipped family, at scales that exhaust the *default* soft
    budgets (``PEConfig.max_steps`` / ``max_residual_nodes``) in a few
    seconds and then terminate by widening."""
    return (
        AdversarialCase(
            name="branchy-descent",
            description="binary unfold tree under a dynamic test",
            source=branchy_descent(),
            oracle_args=(-9, 0, 7)),
        AdversarialCase(
            name="self-inlining-tree",
            description="loop body re-inlined twice per unfold level",
            source=self_inlining_tree(),
            oracle_args=(0, 3, 8)),
        AdversarialCase(
            name="mutual-pingpong",
            description="exponential unfolding across two mutually "
                        "recursive sites",
            source=mutual_pingpong(),
            oracle_args=(-5, 0, 9)),
    )


#: The family at default scales, for direct iteration in tests.
ADVERSARIAL_CASES = adversarial_cases()
