"""The asyncio HTTP gateway: the specializer's network front door.

One event-loop thread accepts connections, parses requests
(:mod:`repro.gateway.protocol`), makes admission decisions
(:mod:`repro.gateway.admission`) and shapes responses
(:mod:`repro.gateway.core`); the blocking
:class:`~repro.service.scheduler.SpecializationService` runs behind
the :class:`~repro.service.submit.AsyncSubmitter` pump thread, so the
loop **never blocks on a wave** — health checks, stats and shed
decisions stay responsive while specialization grinds.

Routes:

* ``GET /v1/health`` — the service's hardening snapshot, answered
  directly on the loop (it never enters the admission queue, so it
  works precisely when the queue is full);
* ``GET /v1/stats`` — the full :class:`ServiceStats` document with a
  ``gateway`` section (connections, sheds, per-status counts,
  admission state) synced in;
* ``POST /v1/specialize`` — one request object, or ``{"requests":
  [...]}`` for a batch (admitted all-or-nothing).  A single result is
  byte-identical to the ``ppe serve`` JSONL answer for the same
  request.  With ``?stream=1`` (or ``"stream": true`` in the body)
  the response is chunked NDJSON progress events: ``queued`` per
  entry at admission, ``started``/``retrying`` as the scheduler
  dispatches, ``done`` (carrying the full result document) per
  completion.

Backpressure: admission sheds with ``429`` + ``Retry-After`` (see
:mod:`repro.gateway.admission`); protocol violations answer their
HTTP status and close; handler bugs answer a structured ``500`` and
the connection survives.  Fault seams ``gateway.accept``,
``gateway.admit`` and ``gateway.respond`` (:mod:`repro.faults`) let
the chaos harness drive all three regions deterministically.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
from time import monotonic
from typing import Any, Awaitable, Callable

from repro.faults import fault_point
from repro.gateway.admission import AdmissionController, LANE_HIGH
from repro.gateway.core import (
    build_request, decode_json_object, internal_error_payload,
    invalid_request_payload)
from repro.gateway.protocol import (
    DEFAULT_MAX_BODY_BYTES, HttpRequest, ProtocolError, chunk_bytes,
    chunked_head_bytes, json_response_bytes, last_chunk_bytes,
    read_request)
from repro.gateway.router import Router
from repro.observability.gateway_stats import GatewayStats
from repro.service.scheduler import SpecializationService
from repro.service.submit import HIGH, NORMAL, AsyncSubmitter

#: Cap on entries per batch request (one HTTP request must not be
#: able to occupy the whole admission queue forever).
DEFAULT_BATCH_LIMIT = 64


def _encode_event(event: dict) -> bytes:
    """One NDJSON progress event as a chunked-response chunk."""
    import json
    return chunk_bytes(
        (json.dumps(event, sort_keys=True) + "\n").encode("utf-8"))


class GatewayServer:
    """The HTTP front door over one specialization service."""

    def __init__(self, service: SpecializationService,
                 host: str = "127.0.0.1", port: int = 0, *,
                 max_queue: int = 64,
                 quota_rate: float | None = None,
                 quota_burst: float | None = None,
                 priority_keys: tuple[str, ...] = (),
                 high_reserve: int | None = None,
                 default_engine: str = "online",
                 batch_max: int = 8,
                 batch_limit: int = DEFAULT_BATCH_LIMIT,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.default_engine = default_engine
        self.batch_max = batch_max
        self.batch_limit = batch_limit
        self.max_body_bytes = max_body_bytes
        self.stats = GatewayStats()
        self.admission = AdmissionController(
            max_queue=max_queue, quota_rate=quota_rate,
            quota_burst=quota_burst, priority_keys=priority_keys,
            high_reserve=high_reserve)
        self.router = Router()
        self.router.add("GET", "/v1/health", self._handle_health)
        self.router.add("GET", "/v1/stats", self._handle_stats)
        self.router.add("POST", "/v1/specialize",
                        self._handle_specialize)
        self._submitter: AsyncSubmitter | None = None
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting.  With ``port=0`` the kernel picks
        a free port, published back into ``self.port``."""
        self._submitter = AsyncSubmitter(self.service,
                                         batch_max=self.batch_max)
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._submitter is not None:
            self._submitter.close()
            self._submitter = None

    async def __aenter__(self) -> "GatewayServer":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.aclose()

    # -- connection handling -------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.max_body_bytes)
                except ProtocolError as error:
                    # The byte stream cannot be trusted after a
                    # framing error: answer and close.
                    self.stats.malformed += 1
                    await self._respond(
                        writer, error.status,
                        {"ok": False, "error": str(error)},
                        extra_headers=(("Connection", "close"),),
                        seam=False)
                    break
                except (asyncio.IncompleteReadError,
                        ConnectionError):
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive
                try:
                    await self._dispatch(request, writer)
                except ConnectionError:
                    break
                except Exception as error:  # noqa: BLE001 — survive
                    # The backstop mirrors the serve loop's: no
                    # request may kill the front door.  Written
                    # without the respond seam so an injected respond
                    # fault cannot recurse.
                    self.stats.internal_errors += 1
                    await self._respond(
                        writer, 500, internal_error_payload(error),
                        seam=False)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: HttpRequest,
                        writer: asyncio.StreamWriter) -> None:
        self.stats.requests += 1
        fault_point("gateway.accept", key=request.path)
        handler, status, payload = self.router.resolve(
            request.method, request.path)
        if handler is None:
            extra = (("Allow",
                      self.router.allow_header(request.path)),) \
                if status == 405 else ()
            await self._respond(writer, status, payload,
                                extra_headers=extra)
            return
        await handler(request, writer)

    async def _respond(self, writer: asyncio.StreamWriter,
                       status: int, payload: dict,
                       extra_headers: tuple = (),
                       seam: bool = True) -> None:
        """One complete JSON response.  The ``gateway.respond`` seam
        fires *before* any byte is written, so an injected fault turns
        into a clean structured 500, never a half response."""
        if seam:
            fault_point("gateway.respond")
        writer.write(json_response_bytes(status, payload,
                                         extra_headers=extra_headers))
        self.stats.observe_status(status)
        await writer.drain()

    # -- routes --------------------------------------------------------
    async def _handle_health(self, request: HttpRequest,
                             writer: asyncio.StreamWriter) -> None:
        # Answered directly on the loop — health never queues, so it
        # keeps working while a wave has the admission queue full.
        await self._respond(writer, 200,
                            {"ok": True,
                             "health": self.service.health()})

    async def _handle_stats(self, request: HttpRequest,
                            writer: asyncio.StreamWriter) -> None:
        self.sync_stats()
        await self._respond(writer, 200,
                            {"ok": True,
                             "stats": self.service.stats_dict()})

    def sync_stats(self) -> None:
        """Publish the gateway section into the service's
        :class:`ServiceStats` (``/v1/stats``, ``--profile``)."""
        self.stats.queue_high_watermark = max(
            self.stats.queue_high_watermark,
            self.admission.high_watermark)
        detail = self.stats.as_dict()
        detail["admission"] = self.admission.snapshot()
        self.service.stats.gateway_detail = detail

    async def _handle_specialize(self, request: HttpRequest,
                                 writer: asyncio.StreamWriter) -> None:
        data, error = decode_json_object(request.json_text())
        if error is not None:
            await self._respond(writer, 400, error)
            return
        batch = "requests" in data
        stream = str(request.query.get("stream", "")).lower() \
            in ("1", "true") or data.get("stream") is True
        if batch:
            entries = data["requests"]
            if not isinstance(entries, list) or not entries:
                await self._respond(
                    writer, 400,
                    {"ok": False, "error":
                     "'requests' must be a non-empty list"})
                return
            if len(entries) > self.batch_limit:
                await self._respond(
                    writer, 400,
                    {"ok": False, "error":
                     f"batch of {len(entries)} entries exceeds the "
                     f"{self.batch_limit}-entry cap"})
                return
        else:
            # "stream" rides alongside the request fields; strip it
            # before strict validation.
            entries = [{key: value for key, value in data.items()
                        if key != "stream"}]

        api_key = request.header("x-api-key")
        fault_point("gateway.admit", key=api_key)
        decision = self.admission.try_admit(api_key,
                                            count=len(entries))
        if not decision.admitted:
            if decision.reason == "quota":
                self.stats.shed_quota += decision.count
            else:
                self.stats.shed_queue += decision.count
            retry_header = str(max(1,
                                   math.ceil(decision.retry_after)))
            await self._respond(
                writer, 429,
                {"ok": False,
                 "error": f"request shed ({decision.reason}); "
                          f"retry after {decision.retry_after}s",
                 "reason": decision.reason,
                 "retry_after": decision.retry_after},
                extra_headers=(("Retry-After", retry_header),))
            return
        self.stats.admitted += decision.count
        priority = HIGH if decision.lane == LANE_HIGH else NORMAL
        if stream:
            await self._run_streaming(writer, entries, priority)
        else:
            await self._run_buffered(writer, entries, batch, priority)

    # -- admitted work -------------------------------------------------
    def _validate(self, entries: list, priority: int,
                  progress_for: Callable[[int, Any],
                                         Callable | None] | None
                  = None) -> list:
        """Validate admitted entries, releasing the ticket of every
        invalid one immediately.  Returns per-entry items:
        ``("error", payload)`` or ``("future", future)``."""
        assert self._submitter is not None, "start() first"
        items: list[tuple[str, Any]] = []
        for index, entry in enumerate(entries):
            if not isinstance(entry, dict):
                self.admission.release()
                items.append(("error",
                              {"ok": False, "id": None, "error":
                               "expected a JSON object"}))
                continue
            try:
                spec_request = build_request(entry,
                                             self.default_engine)
            except (ValueError, OSError, TypeError) as error:
                self.admission.release()
                items.append(("error",
                              invalid_request_payload(error, entry)))
                continue
            progress = progress_for(index, entry) \
                if progress_for is not None else None
            items.append(("future", self._submitter.submit(
                spec_request, priority=priority,
                progress=progress)))
        return items

    async def _run_buffered(self, writer: asyncio.StreamWriter,
                            entries: list, batch: bool,
                            priority: int) -> None:
        started = monotonic()
        valid = 0
        try:
            items = self._validate(entries, priority)
            valid = sum(1 for kind, _ in items if kind == "future")
            results = []
            for kind, value in items:
                if kind == "error":
                    results.append(value)
                else:
                    outcome = await asyncio.wrap_future(value)
                    results.append(outcome.to_dict())
        finally:
            if valid:
                elapsed = monotonic() - started
                self.admission.release(valid,
                                       seconds=elapsed / valid)
        self.stats.completed += valid
        if batch:
            await self._respond(writer, 200,
                                {"ok": True, "results": results})
        else:
            # Byte-identical to the serve loop's JSONL answer for the
            # same request (modulo HTTP framing): the result document
            # alone, canonical encoding.
            status = 200 if items[0][0] == "future" else 400
            await self._respond(writer, status, results[0])

    async def _run_streaming(self, writer: asyncio.StreamWriter,
                             entries: list, priority: int) -> None:
        """Chunked NDJSON progress: ``queued`` per entry up front,
        ``started``/``retrying`` as the scheduler dispatches, ``done``
        (with the result document) or ``error`` per entry."""
        loop = asyncio.get_running_loop()
        events: asyncio.Queue[dict] = asyncio.Queue()
        started = monotonic()

        def progress_for(index: int, entry: dict) \
                -> Callable[[str, Any], None]:
            rid = entry.get("id")

            def on_progress(event: str, _request: Any) -> None:
                # Pump-thread context: bounce onto the loop.
                loop.call_soon_threadsafe(
                    events.put_nowait,
                    {"event": event, "index": index, "id": rid})
            return on_progress

        fault_point("gateway.respond")
        writer.write(chunked_head_bytes())
        self.stats.observe_status(200)
        self.stats.streamed += 1
        valid = 0
        try:
            items = self._validate(entries, priority, progress_for)
            for index, (kind, value) in enumerate(items):
                rid = entries[index].get("id") \
                    if isinstance(entries[index], dict) else None
                if kind == "error":
                    writer.write(_encode_event(
                        {"event": "error", "index": index,
                         "id": rid, "error": value["error"]}))
                    self.stats.events_streamed += 1
                    continue
                valid += 1
                writer.write(_encode_event(
                    {"event": "queued", "index": index, "id": rid}))
                self.stats.events_streamed += 1

                def on_done(future: Any, index: int = index,
                            rid: Any = rid) -> None:
                    error = future.exception()
                    if error is not None:
                        event = {"event": "failed", "index": index,
                                 "id": rid, "error": str(error)}
                    else:
                        event = {"event": "done", "index": index,
                                 "id": rid,
                                 "result": future.result().to_dict()}
                    loop.call_soon_threadsafe(events.put_nowait,
                                              event)
                value.add_done_callback(on_done)
            await writer.drain()
            remaining = valid
            while remaining:
                event = await events.get()
                if event["event"] in ("done", "failed"):
                    remaining -= 1
                writer.write(_encode_event(event))
                self.stats.events_streamed += 1
                await writer.drain()
            writer.write(last_chunk_bytes())
            await writer.drain()
        finally:
            if valid:
                elapsed = monotonic() - started
                self.admission.release(valid,
                                       seconds=elapsed / valid)
        self.stats.completed += valid
