"""The protocol-independent request-handling core.

Both front doors — the ``ppe serve`` stdin/stdout JSONL loop
(:mod:`repro.service.serve`) and the HTTP gateway
(:mod:`repro.gateway.server`) — accept the same caller-controlled JSON
objects, validate them into :class:`~repro.service.results.SpecRequest`
the same way, and shape the same response documents.  That logic
exists exactly once, here; the transports own only their framing
(lines vs. HTTP messages) and their concurrency story.

The contract the serve loop pinned (``tests/gateway/`` keeps it
byte-identical) is the contract the gateway inherits:

* bad JSON → ``{"ok": false, "error": "bad JSON: ..."}``;
* a non-object → ``{"ok": false, "error": "expected a JSON object"}``;
* ``{"op": ...}`` objects answer stats/health/shutdown, unknown ops
  get ``{"ok": false, "error": "unknown op ..."}``;
* a request object that fails validation answers ``{"ok": false,
  "error": ..., "id": ...}``;
* a valid request answers its
  :meth:`~repro.service.results.SpecResult.to_dict` — the service
  never raises, so neither does this layer (for input reasons);
* anything unforeseen is wrapped by :func:`internal_error_payload`.

Wire encoding is canonical everywhere: ``json.dumps(payload,
sort_keys=True)`` via :func:`encode_response`.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.faults import fault_point

# repro.service.serve imports this module, and repro.service's package
# init imports serve — so importing repro.service at this module's top
# would cycle whenever repro.gateway loads first.  The one runtime use
# (SpecRequest, in build_request) imports it lazily; the annotations
# below stay strings via `from __future__ import annotations`.
if False:  # pragma: no cover — typing only
    from repro.service.results import SpecRequest
    from repro.service.scheduler import SpecializationService


def encode_response(payload: Mapping[str, Any]) -> str:
    """The one response encoder: canonical sorted-key JSON, no
    trailing newline (transports add their own framing)."""
    return json.dumps(payload, sort_keys=True)


def decode_json_object(text: str) \
        -> tuple[dict | None, dict | None]:
    """Decode one JSON object off the wire.  Returns ``(data, None)``
    on success, ``(None, error payload)`` on bad JSON or a non-object
    — the error payload is the response to send."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        return None, {"ok": False, "error": f"bad JSON: {error}"}
    if not isinstance(data, dict):
        return None, {"ok": False, "error": "expected a JSON object"}
    return data, None


def handle_op(service: SpecializationService, data: Mapping[str, Any]) \
        -> tuple[dict | None, bool]:
    """Answer an ``{"op": ...}`` object.  Returns ``(payload, stop)``;
    payload is ``None`` when ``data`` carries no op (it is a request
    object), and ``stop`` is ``True`` only for ``shutdown``."""
    op = data.get("op")
    if op is None:
        return None, False
    if op == "shutdown":
        return {"ok": True, "op": "shutdown"}, True
    if op == "stats":
        return {"ok": True, "op": "stats",
                "stats": service.stats_dict()}, False
    if op == "health":
        return {"ok": True, "op": "health",
                "health": service.health()}, False
    return {"ok": False, "error": f"unknown op {op!r}"}, False


def build_request(data: Mapping[str, Any], default_engine: str,
                  seam: str | None = None) -> SpecRequest:
    """Validate one request object into a :class:`SpecRequest`.
    Raises :class:`ValueError` (and kin) on anything malformed; with
    ``seam`` given, passes through that fault-injection point first
    (``serve.request`` for the JSONL loop — the gateway carries its
    own seams in the connection handler instead)."""
    from repro.service.results import SpecRequest
    if seam is not None:
        fault_point(seam, key=data.get("id")
                    if isinstance(data.get("id"), str) else None)
    return SpecRequest.from_dict(data, default_engine=default_engine)


def invalid_request_payload(error: Exception,
                            data: Mapping[str, Any]) -> dict:
    """The structured answer to a request object that failed
    validation."""
    return {"ok": False, "error": str(error), "id": data.get("id")}


def handle_request_data(service: SpecializationService,
                        data: Mapping[str, Any], default_engine: str,
                        seam: str | None = "serve.request") -> dict:
    """One request object → its response payload, synchronously.
    Validation failures answer in-band; the service itself never
    raises.  (The gateway validates and runs in separate steps so
    admission control and async submission can sit between them; this
    fused path is the serve loop's.)"""
    try:
        request = build_request(data, default_engine, seam=seam)
    except (ValueError, OSError, TypeError) as error:
        return invalid_request_payload(error, data)
    return service.run_one(request).to_dict()


def internal_error_payload(error: BaseException,
                           data: object = None) -> dict:
    """The last-resort backstop payload: nothing a caller sends may
    kill a front door, so unforeseen failures are answered
    structurally."""
    return {"ok": False,
            "error": f"internal error: {type(error).__name__}: {error}",
            "id": data.get("id") if isinstance(data, Mapping)
            else None}
