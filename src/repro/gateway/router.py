"""Route table for the gateway: method + exact path → handler.

Four routes do not need pattern matching; what they do need is the
HTTP-correct distinction between an unknown path (404) and a known
path hit with the wrong method (405, with ``Allow``).
"""

from __future__ import annotations

from typing import Any, Callable


class Router:
    """Exact-path route table."""

    def __init__(self) -> None:
        self._routes: dict[tuple[str, str], Callable[..., Any]] = {}
        self._methods_by_path: dict[str, set[str]] = {}

    def add(self, method: str, path: str,
            handler: Callable[..., Any]) -> None:
        method = method.upper()
        if (method, path) in self._routes:
            raise ValueError(f"duplicate route {method} {path}")
        self._routes[(method, path)] = handler
        self._methods_by_path.setdefault(path, set()).add(method)

    def resolve(self, method: str, path: str) \
            -> tuple[Callable[..., Any] | None, int, dict | None]:
        """Returns ``(handler, 200, None)`` on a match, else
        ``(None, status, error payload)`` for 404/405."""
        handler = self._routes.get((method.upper(), path))
        if handler is not None:
            return handler, 200, None
        methods = self._methods_by_path.get(path)
        if methods:
            allow = ", ".join(sorted(methods))
            return None, 405, {
                "ok": False,
                "error": f"method {method} not allowed for {path}; "
                         f"allowed: {allow}"}
        return None, 404, {"ok": False,
                           "error": f"no such path {path}"}

    def allow_header(self, path: str) -> str:
        """The ``Allow`` header value for a 405 on ``path``."""
        return ", ".join(sorted(self._methods_by_path.get(path, ())))
