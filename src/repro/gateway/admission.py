"""Admission control: the bounded queue, quotas and priority lanes.

The gateway's backpressure contract in one place:

* **Bounded queue.**  At most ``max_queue`` specialization jobs may
  be in the house (queued or running) at once.  Past that, new work
  is *shed* — answered ``429 Too Many Requests`` with a
  ``Retry-After`` hint — instead of queuing without bound until the
  process OOMs.  Shedding is cheap (no parse, no pool traffic), which
  is the point: an overloaded server must get *faster* at saying no.
* **Per-client quotas.**  Each API key (``X-API-Key``; absent keys
  share the ``anonymous`` identity) gets a token bucket of
  ``quota_rate`` admissions/second with a ``quota_burst`` cap.  A
  client over its rate is shed with the bucket's exact refill time as
  ``Retry-After``, independent of queue room — one greedy client
  cannot starve the rest.
* **Two priority lanes.**  API keys named in ``priority_keys`` ride
  the *high* lane: their jobs jump queued normal-lane work (the
  submitter's priority queue) **and** shed last — the high lane may
  fill ``high_reserve`` slots above ``max_queue``, headroom the
  normal lane never sees.

Batch requests admit all-or-nothing: a batch of *n* takes *n* queue
slots and *n* tokens atomically, or sheds as a unit (partial
admission would make the response shape depend on load).

Retry-After for queue sheds is an EWMA of recent per-job service
time multiplied by the queue depth — an estimate of when a slot will
actually be free, not a constant.

Single-threaded by construction (everything runs on the gateway's
event loop); the injectable clock makes the tests deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import monotonic
from typing import Callable, Iterable

from repro.gateway.client_state import ANONYMOUS, ClientTable

#: Lane names; the submitter maps them onto its priority ranks.
LANE_HIGH = "high"
LANE_NORMAL = "normal"

#: Floor/ceiling on the Retry-After hint (seconds).
RETRY_AFTER_MIN = 0.05
RETRY_AFTER_MAX = 30.0

#: Seed for the service-time EWMA before any job has completed.
_EWMA_SEED_SECONDS = 0.02
_EWMA_ALPHA = 0.2


@dataclass(frozen=True)
class Decision:
    """One admission decision."""

    admitted: bool
    lane: str
    count: int = 1
    #: ``None`` when admitted; ``"queue-full"`` or ``"quota"`` when
    #: shed.
    reason: str | None = None
    #: Seconds the client should wait before retrying (0 when
    #: admitted).
    retry_after: float = 0.0


class AdmissionController:
    """Bounded-queue admission with quotas and two lanes."""

    def __init__(self, max_queue: int = 64,
                 quota_rate: float | None = None,
                 quota_burst: float | None = None,
                 priority_keys: Iterable[str] = (),
                 high_reserve: int | None = None,
                 max_clients: int = 1024,
                 clock: Callable[[], float] = monotonic) -> None:
        if max_queue < 1:
            raise ValueError(
                f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue
        #: Extra slots only the high lane may use once the shared
        #: queue is full; default one eighth of the queue, at least 1.
        self.high_reserve = high_reserve if high_reserve is not None \
            else max(1, max_queue // 8)
        if self.high_reserve < 0:
            raise ValueError(f"high_reserve must be >= 0, got "
                             f"{self.high_reserve}")
        self.priority_keys = frozenset(priority_keys)
        self.clients = ClientTable(quota_rate=quota_rate,
                                   quota_burst=quota_burst,
                                   max_clients=max_clients,
                                   clock=clock)
        self._clock = clock
        #: Jobs admitted and not yet released (queued or running).
        self.inflight = 0
        self.high_watermark = 0
        self.admitted = 0
        self.released = 0
        self.shed_queue = 0
        self.shed_quota = 0
        self._ewma_seconds = _EWMA_SEED_SECONDS

    # -- lanes ---------------------------------------------------------
    def lane_of(self, api_key: str | None) -> str:
        return LANE_HIGH if api_key is not None \
            and api_key in self.priority_keys else LANE_NORMAL

    def _capacity(self, lane: str) -> int:
        return self.max_queue + self.high_reserve \
            if lane == LANE_HIGH else self.max_queue

    # -- decisions -----------------------------------------------------
    def try_admit(self, api_key: str | None, count: int = 1) \
            -> Decision:
        """Admit ``count`` jobs for this client, or shed them all.
        An admitted decision holds ``count`` queue slots until
        :meth:`release` is called that many times."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        lane = self.lane_of(api_key)
        state = self.clients.state(api_key or ANONYMOUS)
        # Quota first: a client past its rate is shed regardless of
        # queue room, so quota answers stay stable under low load.
        if state.bucket is not None \
                and not state.bucket.try_take(float(count)):
            state.shed_quota += count
            self.shed_quota += count
            return Decision(
                admitted=False, lane=lane, count=count,
                reason="quota",
                retry_after=self._clamp(
                    state.bucket.seconds_until(float(count))))
        if self.inflight + count > self._capacity(lane):
            state.shed_queue += count
            self.shed_queue += count
            return Decision(
                admitted=False, lane=lane, count=count,
                reason="queue-full",
                retry_after=self._clamp(
                    self._ewma_seconds * max(1, self.inflight)))
        self.inflight += count
        self.high_watermark = max(self.high_watermark, self.inflight)
        self.admitted += count
        state.admitted += count
        state.lanes[lane] = state.lanes.get(lane, 0) + count
        return Decision(admitted=True, lane=lane, count=count)

    def release(self, count: int = 1,
                seconds: float | None = None) -> None:
        """Return ``count`` queue slots; ``seconds`` (per-job service
        time, when known) feeds the Retry-After estimate."""
        self.inflight = max(0, self.inflight - count)
        self.released += count
        if seconds is not None and seconds >= 0:
            self._ewma_seconds += _EWMA_ALPHA * (
                seconds - self._ewma_seconds)

    @staticmethod
    def _clamp(seconds: float) -> float:
        return round(min(RETRY_AFTER_MAX,
                         max(RETRY_AFTER_MIN, seconds)), 3)

    # -- introspection -------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready state for the gateway's stats section."""
        return {
            "max_queue": self.max_queue,
            "high_reserve": self.high_reserve,
            "inflight": self.inflight,
            "high_watermark": self.high_watermark,
            "admitted": self.admitted,
            "released": self.released,
            "shed_queue": self.shed_queue,
            "shed_quota": self.shed_quota,
            "ewma_service_seconds": round(self._ewma_seconds, 6),
            "clients": self.clients.snapshot(),
            "priority_keys": len(self.priority_keys),
        }
