"""Per-client state for the gateway: token buckets, keyed by API key.

Clients identify themselves with the ``X-API-Key`` request header;
requests without one share the ``"anonymous"`` identity (and hence
one quota bucket — anonymity is not a quota bypass).  State is held
in an LRU-bounded table so a scan of random keys cannot grow memory
without bound; evicting an idle client merely refills its bucket on
return, which errs in the client's favor.

Everything here runs on the gateway's event loop thread — no locks.
Clocks are injectable for deterministic tests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from time import monotonic
from typing import Callable

#: Clients with no ``X-API-Key`` header share this identity.
ANONYMOUS = "anonymous"


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/second refill up to
    a ``burst`` cap; each admitted request takes one token."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; ``False`` sheds."""
        self._refill()
        if self._tokens + 1e-9 < amount:
            return False
        self._tokens -= amount
        return True

    def seconds_until(self, amount: float = 1.0) -> float:
        """How long until ``amount`` tokens will be available — the
        honest ``Retry-After`` for a quota shed."""
        self._refill()
        deficit = amount - self._tokens
        return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


@dataclass
class ClientState:
    """One client's admission state and traffic counters."""

    key: str
    bucket: TokenBucket | None = None
    admitted: int = 0
    shed_quota: int = 0
    shed_queue: int = 0
    lanes: dict = field(default_factory=dict)


class ClientTable:
    """LRU-bounded per-API-key state.  With no quota configured the
    table still exists (it carries per-client counters), but buckets
    are ``None`` and every quota check passes."""

    def __init__(self, quota_rate: float | None = None,
                 quota_burst: float | None = None,
                 max_clients: int = 1024,
                 clock: Callable[[], float] = monotonic) -> None:
        if quota_rate is not None and quota_rate <= 0:
            raise ValueError(
                f"quota_rate must be positive, got {quota_rate}")
        if max_clients < 1:
            raise ValueError(
                f"max_clients must be >= 1, got {max_clients}")
        self.quota_rate = quota_rate
        #: Default burst: one second's worth of tokens, floor 1.
        self.quota_burst = quota_burst if quota_burst is not None \
            else (max(1.0, quota_rate) if quota_rate is not None
                  else None)
        self.max_clients = max_clients
        self._clock = clock
        self._clients: "OrderedDict[str, ClientState]" = OrderedDict()
        self.evictions = 0

    def state(self, key: str | None) -> ClientState:
        """The client's state, created on first sight (evicting the
        least-recently-seen client past the cap)."""
        key = key or ANONYMOUS
        state = self._clients.get(key)
        if state is None:
            bucket = None
            if self.quota_rate is not None:
                bucket = TokenBucket(self.quota_rate,
                                     self.quota_burst,
                                     clock=self._clock)
            state = ClientState(key=key, bucket=bucket)
            self._clients[key] = state
            while len(self._clients) > self.max_clients:
                self._clients.popitem(last=False)
                self.evictions += 1
        self._clients.move_to_end(key)
        return state

    def __len__(self) -> int:
        return len(self._clients)

    def snapshot(self) -> dict:
        """JSON-ready summary (bounded: counts, not the whole
        table)."""
        return {
            "clients": len(self._clients),
            "evictions": self.evictions,
            "quota_rate": self.quota_rate,
            "quota_burst": self.quota_burst,
        }
