"""``repro.gateway`` — the specializer's network front door.

An asyncio HTTP server (stdlib streams only — no new dependencies)
exposing the :class:`~repro.service.scheduler.SpecializationService`
over ``POST /v1/specialize`` (single, batch, and streaming-progress
modes), ``GET /v1/health`` and ``GET /v1/stats``, with real admission
control in front: a bounded queue that sheds with ``429`` +
``Retry-After``, per-API-key token-bucket quotas, and a two-level
priority lane.  Layers:

* :mod:`repro.gateway.core` — protocol-independent request handling,
  shared verbatim with the ``ppe serve`` JSONL loop so the two front
  doors cannot drift;
* :mod:`repro.gateway.protocol` — minimal HTTP/1.1 framing;
* :mod:`repro.gateway.client_state` — per-API-key token buckets;
* :mod:`repro.gateway.admission` — queue bounds, quotas, lanes;
* :mod:`repro.gateway.router` — method+path dispatch (404 vs 405);
* :mod:`repro.gateway.server` — the event loop, connection handling
  and streaming, over the :class:`~repro.service.submit.AsyncSubmitter`
  bridge into the blocking scheduler.

``ppe gateway`` (:mod:`repro.cli`) is the command-line entry point.
"""

from repro.gateway.admission import (AdmissionController, Decision,
                                     LANE_HIGH, LANE_NORMAL)
from repro.gateway.client_state import (ANONYMOUS, ClientTable,
                                        TokenBucket)
from repro.gateway.core import (build_request, decode_json_object,
                                encode_response, handle_op,
                                handle_request_data,
                                internal_error_payload,
                                invalid_request_payload)
from repro.gateway.protocol import (HttpRequest, ProtocolError,
                                    read_request)
from repro.gateway.router import Router
from repro.gateway.server import GatewayServer

__all__ = [
    "AdmissionController", "Decision", "LANE_HIGH", "LANE_NORMAL",
    "ANONYMOUS", "ClientTable", "TokenBucket",
    "build_request", "decode_json_object", "encode_response",
    "handle_op", "handle_request_data", "internal_error_payload",
    "invalid_request_payload",
    "HttpRequest", "ProtocolError", "read_request",
    "Router", "GatewayServer",
]
