"""Minimal HTTP/1.1 over asyncio streams — stdlib only.

The gateway speaks just enough HTTP for its four routes: request-line
+ headers + ``Content-Length`` bodies in, fixed-length JSON or chunked
NDJSON out, keep-alive by default.  Everything a client can get wrong
raises :class:`ProtocolError` with the status the server should
answer before closing the connection (after a framing error the byte
stream cannot be trusted, so the connection never survives one).

Deliberate non-features, rejected loudly rather than half-supported:
chunked *request* bodies (411), absurd header blocks (431), bodies
past the configurable cap (413).  Responses are assembled as bytes by
pure functions so tests can pin the exact wire format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence
from urllib.parse import parse_qsl, unquote

#: Reason phrases for every status the gateway emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Hard ceilings on the header block; a client that exceeds them is
#: answered 431 and disconnected.
MAX_HEADER_BYTES = 32 * 1024
MAX_HEADER_COUNT = 100

#: Default cap on request bodies (the server can lower/raise it).
DEFAULT_MAX_BODY_BYTES = 4 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed or unacceptable HTTP request; ``status`` is the
    answer to send before closing the connection."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request.  Header names are lower-cased; the query
    string is decoded into a last-wins mapping."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str | None = None) \
            -> str | None:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        return self.header("connection", "").lower() != "close"

    def json_text(self) -> str:
        """The body as UTF-8 text (bad bytes replaced, like the serve
        loop's stdin re-wrap — garbage decodes to garbage JSON, which
        is then answered as bad JSON, not a connection kill)."""
        return self.body.decode("utf-8", errors="replace")


async def _readline(reader: Any) -> bytes:
    """One CRLF/LF-terminated line, with the stream's overlong-line
    errors mapped onto :class:`ProtocolError`."""
    try:
        return await reader.readline()
    except ValueError as error:
        # asyncio.StreamReader raises ValueError (LimitOverrunError
        # internally) when a line exceeds the stream limit.
        raise ProtocolError(f"header line too long: {error}",
                            status=431) from None


async def read_request(reader: Any,
                       max_body_bytes: int = DEFAULT_MAX_BODY_BYTES) \
        -> HttpRequest | None:
    """Parse one request off the stream.  Returns ``None`` on a clean
    EOF before any byte of a request; raises :class:`ProtocolError`
    on anything malformed and :class:`asyncio.IncompleteReadError` on
    a connection dying mid-body."""
    line = await _readline(reader)
    if not line:
        return None
    try:
        text = line.decode("ascii").strip()
    except UnicodeDecodeError:
        raise ProtocolError("request line is not ASCII") from None
    if not text:
        raise ProtocolError("empty request line")
    parts = text.split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line {text!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol {version!r}")
    if not method.isalpha() or method != method.upper():
        raise ProtocolError(f"malformed method {method!r}")

    headers: dict[str, str] = {}
    header_bytes = len(line)
    while True:
        line = await _readline(reader)
        if not line:
            raise ProtocolError("connection closed inside headers")
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError(
                f"header block exceeds {MAX_HEADER_BYTES} bytes",
                status=431)
        if line in (b"\r\n", b"\n"):
            break
        text = line.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep or not name or name != name.strip():
            raise ProtocolError(f"malformed header line {text!r}")
        headers[name.lower()] = value.strip()
        if len(headers) > MAX_HEADER_COUNT:
            raise ProtocolError(
                f"more than {MAX_HEADER_COUNT} headers", status=431)

    if "transfer-encoding" in headers:
        raise ProtocolError(
            "chunked request bodies are not supported; send "
            "Content-Length", status=411)
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(
            f"bad Content-Length {length_text!r}") from None
    if length < 0:
        raise ProtocolError(f"negative Content-Length {length}")
    if length > max_body_bytes:
        raise ProtocolError(
            f"request body of {length} bytes exceeds the "
            f"{max_body_bytes}-byte cap", status=413)
    body = await reader.readexactly(length) if length else b""

    raw_path, _, raw_query = target.partition("?")
    query = {name: value
             for name, value in parse_qsl(raw_query,
                                          keep_blank_values=True)}
    return HttpRequest(method=method, path=unquote(raw_path),
                       query=query, headers=headers, body=body)


# -- response assembly ------------------------------------------------------

def _head(status: int, headers: Sequence[tuple[str, str]]) -> str:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return "\r\n".join(lines) + "\r\n\r\n"


def response_bytes(status: int, body: bytes = b"", *,
                   content_type: str = "application/json",
                   extra_headers: Sequence[tuple[str, str]] = ()) \
        -> bytes:
    """A complete fixed-length response."""
    headers = [("Content-Type", content_type),
               ("Content-Length", str(len(body))),
               *extra_headers]
    return _head(status, headers).encode("ascii") + body


def json_response_bytes(status: int, payload: Mapping[str, Any], *,
                        extra_headers: Sequence[tuple[str, str]] = ()) \
        -> bytes:
    """A complete JSON response (canonical sorted-key encoding, one
    trailing newline — the HTTP shape of the JSONL wire format)."""
    import json
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response_bytes(status, body, extra_headers=extra_headers)


def chunked_head_bytes(status: int = 200, *,
                       content_type: str = "application/x-ndjson",
                       extra_headers: Sequence[tuple[str, str]] = ()) \
        -> bytes:
    """The head of a chunked (streaming) response."""
    headers = [("Content-Type", content_type),
               ("Transfer-Encoding", "chunked"),
               *extra_headers]
    return _head(status, headers).encode("ascii")


def chunk_bytes(data: bytes) -> bytes:
    """One chunk of a chunked response."""
    return f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"


def last_chunk_bytes() -> bytes:
    """The terminating chunk."""
    return b"0\r\n\r\n"
