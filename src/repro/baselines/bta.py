"""Conventional binding-time analysis — the baseline the facet analysis
generalizes (Section 5.4: "it is essentially a conventional binding time
analysis ... extended to compute facet information").

Implemented as facet analysis over the *empty* facet suite: the only
abstract facet left is the binding-time facet of Definition 10, so the
analysis computes exactly the classic Static/Dynamic division.  The
wrapper exposes the conventional vocabulary (divisions, S/D patterns)
and is used both as a baseline in benchmarks and as a differential
oracle in tests (facet analysis with no facets must coincide with BTA;
facet analysis with facets must refine it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lang.ast import Expr
from repro.lang.program import Program
from repro.lattice.bt import BT
from repro.facets.abstract.vector import AbstractSuite, AbstractVector
from repro.facets.vector import FacetSuite
from repro.offline.analysis import (
    AnalysisConfig, AnalysisResult, FacetAnalyzer)

#: Conventional division letters.
S = "S"
D = "D"


@dataclass(frozen=True)
class Division:
    """A classic known/unknown division for one function."""

    args: tuple[BT, ...]
    result: BT

    def pattern(self) -> str:
        letters = "".join(S if bt.is_static else D for bt in self.args)
        result = S if self.result.is_static else D
        return f"{letters}->{result}"


@dataclass(frozen=True)
class BTAResult:
    """Binding times for every function and expression."""

    analysis: AnalysisResult
    divisions: dict[str, Division]

    def bt_of(self, expr: Expr) -> BT:
        return self.analysis.value_of(expr).bt


def bta(program: Program, pattern: Sequence[str | BT],
        config: AnalysisConfig | None = None) -> BTAResult:
    """Run conventional BTA on a goal-function S/D pattern.

    ``pattern`` entries are ``"S"``/``"D"`` strings or :class:`BT`
    values.
    """
    suite = AbstractSuite(FacetSuite())
    inputs = [_to_vector(suite, entry) for entry in pattern]
    analyzer = FacetAnalyzer(program, suite, config)
    analysis = analyzer.analyze(inputs)
    divisions = {
        name: Division(tuple(a.bt for a in signature.args),
                       signature.result.bt)
        for name, signature in analysis.signatures.items()}
    return BTAResult(analysis, divisions)


def _to_vector(suite: AbstractSuite, entry: str | BT) -> AbstractVector:
    if isinstance(entry, BT):
        bt = entry
    elif entry in (S, "s"):
        bt = BT.STATIC
    elif entry in (D, "d"):
        bt = BT.DYNAMIC
    else:
        raise ValueError(f"division entries are 'S' or 'D', got "
                         f"{entry!r}")
    return suite.static(None) if bt.is_static else suite.dynamic(None)
