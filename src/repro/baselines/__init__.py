"""Baselines the paper compares against: Figure 2's simple PE and
conventional binding-time analysis."""

from repro.baselines.bta import BTAResult, D, Division, S, bta
from repro.baselines.simple_pe import (
    DYN, SimplePEResult, SimplePartialEvaluator, specialize_simple)

__all__ = [
    "BTAResult", "D", "Division", "S", "bta",
    "DYN", "SimplePEResult", "SimplePartialEvaluator",
    "specialize_simple",
]
