"""Conventional (simple) partial evaluation — Figure 2 of the paper.

This is the baseline ``SPE``: partial evaluation with *only* concrete
values.  An expression reduces exactly when it is built from constants;
``SK_P`` folds a primitive only when every argument partially evaluated
to a constant.  There are no facets, no abstract values — specializing
the inner-product program with this evaluator and a dynamic vector gets
nothing, which is the paper's motivation.

The implementation deliberately parallels
:class:`repro.online.specializer.OnlineSpecializer` (same ``APP``
strategy, same cache discipline, same counters) so the
``bench_decisions`` and ``bench_online_vs_offline`` comparisons measure
the *facet machinery*, not incidental engineering differences.
Semantically, ``SPE`` coincides with online PPE run with an empty facet
suite — a property the test suite checks program-by-program.

Like the online engine, ``SPE`` runs its recursion on a generator
trampoline (constant Python stack depth, no ``sys.setrecursionlimit``)
and meters its work against the :class:`~repro.engine.budget.Budget`
derived from the config, degrading gracefully — widen the call, emit a
residual call, record a :class:`~repro.engine.budget.DegradeEvent` —
when a soft budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.engine.budget import STEP_STRIDE, DegradeEvent
from repro.engine.errors import BudgetExhausted, engine_guard
from repro.engine.trampoline import run_trampoline
from repro.lang.ast import (
    App, Call, Const, Expr, FunDef, If, Lam, Let, Prim, Var,
    count_occurrences)
from repro.lang.errors import EvalError, PEError
from repro.lang.primitives import apply_primitive, fold_would_blow_up
from repro.lang.program import Program
from repro.lang.values import is_value
from repro.online.config import PEConfig, PEStats, UnfoldStrategy
from repro.transform.cleanup import canonical_names, drop_unreachable
from repro.transform.simplify import definitely_total, simplify_program

#: Marker for a dynamic input position.
DYN = object()


@dataclass(frozen=True)
class SimplePEResult:
    """Residual program and counters from one ``SPE`` run."""

    program: Program
    raw_program: Program
    stats: PEStats
    goal_params: tuple[str, ...]


class SimplePartialEvaluator:
    """``SPE_Prog`` of Figure 2."""

    def __init__(self, program: Program,
                 config: PEConfig | None = None) -> None:
        program.validate()
        self.program = program
        self.functions = program.functions()
        self.config = config if config is not None else PEConfig()
        self.stats = PEStats()
        self.budget = self.config.make_budget()
        self._cache: dict[Hashable, tuple[str, tuple[int, ...],
                                          tuple[str, ...]]] = {}
        self._residuals: list[FunDef | None] = []
        self._taken = set(self.functions)
        self._counters: dict[str, int] = {}
        self._gensym = 0

    def specialize(self, inputs: Sequence[object]) -> SimplePEResult:
        """Specialize on a known/unknown division: each input is a
        concrete value or the :data:`DYN` marker."""
        main = self.program.main
        if len(inputs) != main.arity:
            raise PEError(
                f"{main.name}: expected {main.arity} inputs, "
                f"got {len(inputs)}")
        with engine_guard("simple partial evaluation"):
            env: dict[str, Expr] = {}
            goal_params = []
            for param, value in zip(main.params, inputs):
                if value is DYN:
                    env[param] = Var(param)
                    goal_params.append(param)
                elif is_value(value):
                    env[param] = Const(value)
                else:
                    raise PEError(
                        f"input for {param!r} must be a value or "
                        f"DYN, got {value!r}")
            self.budget.start()
            try:
                body = run_trampoline(self._pe(main.body, env, depth=0))
            finally:
                self.budget.charge_steps(self.stats.steps)
                self.stats.budget_used = self.budget.used()
            goal = FunDef(main.name, tuple(goal_params), body)
            raw = Program((goal, *[d for d in self._residuals
                                   if d is not None]))
            cleaned = raw
            if self.config.simplify:
                cleaned = simplify_program(cleaned)
            if self.config.tidy:
                cleaned = canonical_names(drop_unreachable(cleaned))
            return SimplePEResult(cleaned, raw, self.stats,
                                  tuple(goal_params))

    # -- SPE ----------------------------------------------------------------
    def _pe(self, expr: Expr, env: Mapping[str, Expr],
            depth: int):
        self._tick()
        if isinstance(expr, Const):
            return expr
        if isinstance(expr, Var):
            return env.get(expr.name, expr)
        if isinstance(expr, Prim):
            args = []
            for a in expr.args:
                args.append((yield self._pe(a, env, depth)))
            return self._sk_p(expr.op, args)
        if isinstance(expr, If):
            test = yield self._pe(expr.test, env, depth)
            self.stats.decisions += 1
            if isinstance(test, Const) and isinstance(test.value, bool):
                self.stats.if_reductions += 1
                branch = expr.then if test.value else expr.else_
                return (yield self._pe(branch, env, depth))
            then = yield self._pe(expr.then, env, depth)
            else_ = yield self._pe(expr.else_, env, depth)
            self.budget.charge_nodes()
            return If(test, then, else_)
        if isinstance(expr, Let):
            bound = yield self._pe(expr.bound, env, depth)
            if isinstance(bound, (Const, Var)):
                inner = dict(env)
                inner[expr.name] = bound
                return (yield self._pe(expr.body, inner, depth))
            fresh = self._fresh(expr.name)
            inner = dict(env)
            inner[expr.name] = Var(fresh)
            body = yield self._pe(expr.body, inner, depth)
            if count_occurrences(body, fresh) == 0 \
                    and definitely_total(bound):
                return body
            self.budget.charge_nodes()
            return Let(fresh, bound, body)
        if isinstance(expr, Call):
            args = []
            for a in expr.args:
                args.append((yield self._pe(a, env, depth)))
            return (yield self._app(expr.fn, args, depth))
        if isinstance(expr, Lam):
            inner = dict(env)
            renamed = []
            for param in expr.params:
                fresh = self._fresh(param)
                renamed.append(fresh)
                inner[param] = Var(fresh)
            body = yield self._pe(expr.body, inner, depth)
            self.budget.charge_nodes()
            return Lam(tuple(renamed), body)
        if isinstance(expr, App):
            fn = yield self._pe(expr.fn, env, depth)
            args = []
            for a in expr.args:
                args.append((yield self._pe(a, env, depth)))
            self.stats.decisions += 1
            if isinstance(fn, Lam) and depth < self.config.unfold_fuel:
                reason = self.budget.exhausted
                if reason is None and self.budget.blocks_unfold(depth):
                    reason = "unfold_depth"
                if reason is not None:
                    self._degrade("<lambda>", reason, depth,
                                  "residual-call")
                else:
                    self.stats.unfoldings += 1
                    fundef = FunDef("<lambda>", fn.params, fn.body)
                    return (yield self._unfold(fundef, args, depth + 1))
            if isinstance(fn, Var) and fn.name in self.functions \
                    and fn.name not in env:
                return (yield self._app(fn.name, args, depth))
            self.budget.charge_nodes()
            return App(fn, tuple(args))
        raise PEError(f"unknown expression node {expr!r}")

    def _sk_p(self, op: str, args: Sequence[Expr]) -> Expr:
        """``SK_P``: fold when every argument is a constant."""
        self.stats.facet_evaluations += 1
        self.stats.decisions += 1
        if all(isinstance(a, Const) for a in args):
            values = [a.value for a in args]  # type: ignore[union-attr]
            if fold_would_blow_up(op, values):
                self.budget.charge_nodes()
                return Prim(op, tuple(args))
            try:
                value = apply_primitive(op, values)
            except EvalError:
                self.budget.charge_nodes()
                return Prim(op, tuple(args))
            self.stats.record_fold("pe")
            return Const(value)
        self.budget.charge_nodes()
        return Prim(op, tuple(args))

    # -- APP ------------------------------------------------------------------
    def _app(self, fn: str, args: Sequence[Expr], depth: int):
        fundef = self.functions.get(fn)
        if fundef is None:
            raise PEError(f"call to unknown function {fn!r}")
        self.stats.decisions += 1
        reason = self.budget.exhausted
        if reason is not None:
            self._degrade(fundef.name, reason, depth, "widened-call")
            return (yield self._specialize_call(fundef, args,
                                                widen=True))
        if self._should_unfold(args, depth):
            if self.budget.blocks_unfold(depth):
                self._degrade(fundef.name, "unfold_depth", depth,
                              "residual-call")
            else:
                self.stats.unfoldings += 1
                return (yield self._unfold(fundef, args, depth + 1))
        return (yield self._specialize_call(fundef, args))

    def _should_unfold(self, args: Sequence[Expr], depth: int) -> bool:
        strategy = self.config.unfold_strategy
        if strategy is UnfoldStrategy.NEVER:
            return False
        if depth >= self.config.unfold_fuel:
            return False
        if strategy is UnfoldStrategy.ALWAYS:
            return True
        return any(isinstance(a, Const) for a in args)

    def _unfold(self, fundef: FunDef, args: Sequence[Expr],
                depth: int):
        env: dict[str, Expr] = {}
        lets: list[tuple[str, Expr]] = []
        for param, arg in zip(fundef.params, args):
            if isinstance(arg, (Const, Var)) \
                    or count_occurrences(fundef.body, param) <= 1:
                env[param] = arg
            else:
                fresh = self._fresh(param)
                lets.append((fresh, arg))
                env[param] = Var(fresh)
        body = yield self._pe(fundef.body, env, depth)
        for fresh, bound in reversed(lets):
            if count_occurrences(body, fresh) == 0 \
                    and definitely_total(bound):
                continue
            self.budget.charge_nodes()
            body = Let(fresh, bound, body)
        return body

    def _specialize_call(self, fundef: FunDef,
                         args: Sequence[Expr], widen: bool = False):
        variants = sum(1 for key in self._cache if key[0] == fundef.name)
        # A budget-forced widening collapses onto the all-dynamic
        # variant, exactly like running out of max_variants.
        generalize = widen or variants >= self.config.max_variants
        pattern: list[Hashable] = [fundef.name]
        for arg in args:
            if isinstance(arg, Const) and not generalize:
                pattern.append(("c", type(arg.value).__name__, arg.value))
            else:
                pattern.append("?")
        key = tuple(pattern)
        if generalize:
            self.stats.generalizations += 1
        positions = tuple(i for i, part in enumerate(pattern[1:])
                          if part == "?")
        entry = self._cache.get(key)
        if entry is None:
            name = self._fresh_fn(fundef.name)
            params = tuple(fundef.params[i] for i in positions)
            slot = len(self._residuals)
            self._residuals.append(None)
            self._cache[key] = (name, positions, params)
            self.stats.specializations += 1
            env = {}
            for i, param in enumerate(fundef.params):
                env[param] = Var(param) if i in positions \
                    else args[i]
            body = yield self._pe(fundef.body, env, depth=0)
            self._residuals[slot] = FunDef(name, params, body)
            entry = self._cache[key]
        else:
            self.stats.cache_hits += 1
        name, positions, _params = entry
        self.budget.charge_nodes()
        return Call(name, tuple(args[i] for i in positions))

    # -- plumbing ----------------------------------------------------------------
    def _fresh(self, base: str) -> str:
        self._gensym += 1
        return f"{base}!{self._gensym}"

    def _fresh_fn(self, base: str) -> str:
        count = self._counters.get(base, 0) + 1
        candidate = f"{base}!{count}"
        while candidate in self._taken:
            count += 1
            candidate = f"{base}!{count}"
        self._counters[base] = count
        self._taken.add(candidate)
        return candidate

    def _degrade(self, site: str, reason: str, depth: int,
                 action: str) -> None:
        if self.config.strict_budgets:
            raise BudgetExhausted(
                f"budget exceeded ({reason}) at {site!r}; "
                f"strict_budgets=True turns degradation into an error",
                dimension=reason,
                limit=self.budget.limits().get(reason),
                used=self.budget.used().get(reason))
        self.stats.record_degrade(DegradeEvent(
            site=site, reason=reason, action=action, depth=depth,
            step=self.stats.steps))

    def _tick(self) -> None:
        steps = self.stats.steps = self.stats.steps + 1
        if steps > self.config.fuel:
            raise BudgetExhausted(
                f"partial evaluation exceeded {self.config.fuel} steps",
                dimension="fuel", limit=self.config.fuel,
                used=self.stats.steps)
        if self.budget.limited and steps & (STEP_STRIDE - 1) == 0:
            self.budget.charge_steps(steps)


def specialize_simple(program: Program, inputs: Sequence[object],
                      config: PEConfig | None = None) -> SimplePEResult:
    """One-shot conventional partial evaluation (Figure 2)."""
    return SimplePartialEvaluator(program, config).specialize(inputs)
