"""Resource governance for the specialization engines.

Online parameterized PE (Figure 3) is not guaranteed to terminate:
unfolding under dynamic tests and facet refinement can diverge or
produce exponential residuals.  Following the explicit-control school
(generalization/widening in Puebla-Albert-Hermenegildo's framework and
Gallagher & Glück's specialization-with-abstract-interpretation), the
engines meter their work against a :class:`Budget` and — on exhaustion
— **degrade instead of raising**: the offending call's facet vector is
widened to Dynamic (top), a residual call is emitted instead of
unfolding further, and a :class:`DegradeEvent` records the site and the
exhausted dimension.  The result is a correct but less-specialized
residual; correctness is never traded, only precision.

Four dimensions are metered:

* ``steps`` — total PE valuation steps, the same unit as
  ``PEStats.steps``: the engines keep counting on their own stats
  object and *sync* the meter every :data:`STEP_STRIDE` steps
  (:meth:`charge_steps`), so the per-step cost on the hot path is one
  bitmask test — exhaustion may be detected up to ``STEP_STRIDE - 1``
  steps late, which is negligible against budgets in the thousands;
* ``wall_clock`` — elapsed seconds since :meth:`start`, sampled at the
  same sync points;
* ``residual_nodes`` — residual AST nodes constructed so far;
* ``unfold_depth`` — a visible cap on call-unfolding depth (unlike
  ``unfold_fuel``, crossing it records a :class:`DegradeEvent`).

A dimension set to ``None`` is unlimited.  ``Budget.unlimited()`` (all
``None``) short-circuits every check through :attr:`limited`, so a run
without governance pays a single attribute test per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

#: How many steps pass between engine→meter syncs (and wall-clock
#: samples).  A power of two: the engines gate the sync on
#: ``steps & (STEP_STRIDE - 1) == 0``.
STEP_STRIDE = 64

#: The budget dimensions, in reporting order.
DIMENSIONS = ("steps", "wall_clock", "residual_nodes", "unfold_depth")


@dataclass(frozen=True)
class DegradeEvent:
    """One graceful-degradation decision taken by an engine."""

    #: Source-function name of the call the engine degraded at
    #: (``"<lambda>"`` for beta-redexes).
    site: str
    #: The exhausted budget dimension that forced the decision.
    reason: str
    #: What the engine did instead: ``widened-call`` (facet vector
    #: widened to Dynamic, generic residual call emitted) or
    #: ``residual-call`` (unfold refused, precise specialization kept).
    action: str
    #: Unfold depth at the decision point.
    depth: int
    #: ``PEStats.steps`` when the event fired.
    step: int

    def as_dict(self) -> dict:
        return {"site": self.site, "reason": self.reason,
                "action": self.action, "depth": self.depth,
                "step": self.step}


class Budget:
    """A mutable resource meter for one specialization run.

    The engines call :meth:`charge_steps` every :data:`STEP_STRIDE`
    ``_pe`` dispatches (plus once at the end of the run, so the final
    count is exact) and :meth:`charge_nodes` when residual nodes are
    built; decision points
    read :attr:`exhausted` (the first dimension that ran out, or
    ``None``) and :meth:`blocks_unfold`.  Exhaustion is *sticky*: once
    a dimension fires the budget stays exhausted for the rest of the
    run, so every later decision degrades consistently.
    """

    __slots__ = ("max_steps", "max_unfold_depth", "max_residual_nodes",
                 "max_wall_seconds", "steps", "residual_nodes",
                 "started_at", "exhausted", "limited")

    def __init__(self, max_steps: int | None = None,
                 max_unfold_depth: int | None = None,
                 max_residual_nodes: int | None = None,
                 max_wall_seconds: float | None = None) -> None:
        self.max_steps = max_steps
        self.max_unfold_depth = max_unfold_depth
        self.max_residual_nodes = max_residual_nodes
        self.max_wall_seconds = max_wall_seconds
        self.steps = 0
        self.residual_nodes = 0
        self.started_at: float | None = None
        #: First exhausted dimension, or ``None``.
        self.exhausted: str | None = None
        #: Any dimension finite?  Checked once per step on the hot
        #: path; an unlimited budget costs one attribute read.
        self.limited = any(
            limit is not None
            for limit in (max_steps, max_unfold_depth,
                          max_residual_nodes, max_wall_seconds))

    @classmethod
    def unlimited(cls) -> "Budget":
        return cls()

    def start(self) -> None:
        """(Re)start the wall clock; counters keep accumulating."""
        self.started_at = perf_counter()

    # -- metering ------------------------------------------------------
    def charge_steps(self, steps: int) -> None:
        """Sync the absolute step count from the engine's counter."""
        self.steps = steps
        if self.exhausted is not None:
            return
        if self.max_steps is not None and steps > self.max_steps:
            self.exhausted = "steps"
            return
        if self.max_wall_seconds is not None \
                and self.started_at is not None \
                and perf_counter() - self.started_at \
                >= self.max_wall_seconds:
            self.exhausted = "wall_clock"

    def charge_nodes(self, count: int = 1) -> None:
        nodes = self.residual_nodes = self.residual_nodes + count
        if self.exhausted is None \
                and self.max_residual_nodes is not None \
                and nodes > self.max_residual_nodes:
            self.exhausted = "residual_nodes"

    def blocks_unfold(self, depth: int) -> bool:
        """Would unfolding at ``depth`` cross the unfold-depth cap?"""
        return self.max_unfold_depth is not None \
            and depth >= self.max_unfold_depth

    # -- reporting -----------------------------------------------------
    def limits(self) -> dict:
        return {"steps": self.max_steps,
                "wall_clock": self.max_wall_seconds,
                "residual_nodes": self.max_residual_nodes,
                "unfold_depth": self.max_unfold_depth}

    def used(self) -> dict:
        """Deterministic usage counters (wall-clock is reported through
        the phase timers, keeping this snapshot reproducible)."""
        return {"steps": self.steps,
                "residual_nodes": self.residual_nodes}
