"""Engine-wide infrastructure: resource budgets and the failure taxonomy.

This package sits *below* the individual engines (``repro.online``,
``repro.offline``, ``repro.baselines``) and above nothing: it has no
dependencies inside the repo, so every layer — the language substrate
included — can build on it without cycles.

* :mod:`repro.engine.budget` — the :class:`Budget` meter the
  specializers check at every valuation step and call decision, plus
  the :class:`DegradeEvent` records they emit when they trade
  precision for termination;
* :mod:`repro.engine.errors` — the :class:`ReproError` taxonomy
  (``BudgetExhausted`` / ``SpecializationError`` / ``FacetError`` /
  ``ProgramError``) and the :func:`engine_guard` entry-point wrapper
  that keeps bare Python exceptions from escaping the engine.
"""

from repro.engine.budget import (
    DIMENSIONS, Budget, DegradeEvent, STEP_STRIDE)
from repro.engine.errors import (
    BudgetExhausted, FacetError, ProgramError, ReproError,
    SpecializationError, classify, engine_guard)

__all__ = [
    "Budget", "BudgetExhausted", "DIMENSIONS", "DegradeEvent",
    "FacetError", "ProgramError", "ReproError", "SpecializationError",
    "STEP_STRIDE", "classify", "engine_guard",
]
