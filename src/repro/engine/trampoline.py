"""A generator trampoline for the specializers' deep recursion.

``PE`` recurses as deeply as the subject program unfolds; Python's C
stack does not, and raising ``sys.setrecursionlimit`` (the engines'
historical band-aid) merely moves the crash from ``RecursionError`` to
a segfault.  Instead, each ``_pe*`` method is written as a *generator*
that ``yield``\\ s the sub-computation (another generator) it needs
next and receives that computation's return value back from the
driver below, which keeps the pending work on an explicit
heap-allocated stack.  The Python call stack stays a constant handful
of frames deep no matter how far specialization unfolds.

The transformation preserves evaluation order exactly — a ``yield`` is
resumed at the same point a direct call would have returned to — so
residual programs, gensym numbering and counters are identical to the
direct-recursive engines', byte for byte.

Convention used by the engines: recursive descents are plain
``value = yield self._pe(...)``; only a dispatcher delegating to its
one immediate helper may use ``yield from`` (the delegation chain is
bounded, so resumption cost stays O(1) per step).
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["run_trampoline"]


def run_trampoline(root: Iterator) -> Any:
    """Run a generator-based recursion to completion and return its
    ``StopIteration`` value.

    Yielded values must themselves be generators (sub-computations);
    each is pushed on the stack, driven to completion, and its return
    value sent back into the generator that yielded it.
    """
    stack = [root]
    result = None
    try:
        while stack:
            gen = stack[-1]
            try:
                sub = gen.send(result)
            except StopIteration as done:
                stack.pop()
                result = done.value
                continue
            stack.append(sub)
            result = None
    finally:
        # On an escaping exception, close suspended generators so any
        # cleanup code in them cannot fire at GC time instead.
        for gen in reversed(stack):
            gen.close()
    return result
