"""The structured failure taxonomy of the specialization engine.

Every exception the engine can raise derives from :class:`ReproError`,
split by *who is at fault*:

* :class:`ProgramError` — the subject program: it does not lex, parse
  or validate, or a static subcomputation failed.  The language
  substrate's :class:`repro.lang.errors.LangError` hierarchy is rooted
  here.
* :class:`SpecializationError` — the specializer itself: internal
  invariant violations and any unexpected Python exception caught at an
  engine entry point (see :func:`engine_guard`).  The legacy
  :class:`repro.lang.errors.PEError` sits under both this class and
  :class:`ProgramError` because historically it covered both kinds of
  failure; new engine code should raise the precise class.
* :class:`FacetError` — the facet algebra: a product of facet values
  violating Definition 6, or a facet operator misbehaving.
* :class:`BudgetExhausted` — a resource budget was spent and the
  caller asked for strict enforcement (``PEConfig(strict_budgets=
  True)``), or the hard ``fuel`` backstop overran.  The default
  engines never raise this for soft budgets — they degrade by
  widening instead (see :mod:`repro.engine.budget`).

The contract enforced by :func:`engine_guard` is the robustness
north-star of the engine: **no bare Python exception escapes** — a
caller that catches :class:`ReproError` has caught everything the
engine can throw.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class ReproError(Exception):
    """Base class of every error raised by the repro engine."""


class ProgramError(ReproError):
    """The subject program is at fault (syntax, validation, a failing
    static subcomputation)."""


class SpecializationError(ReproError):
    """The specializer is at fault: an internal invariant broke, or an
    unexpected exception was caught at an engine entry point."""


class FacetError(ReproError):
    """The facet algebra is at fault (e.g. a Definition 6 violation)."""


class BudgetExhausted(ReproError):
    """A resource budget ran out under strict enforcement, or the hard
    ``fuel`` backstop overran.

    Carries the exhausted ``dimension`` (``steps``, ``wall_clock``,
    ``residual_nodes``, ``unfold_depth`` or ``fuel``) plus the limit
    and the usage observed when it fired.
    """

    def __init__(self, message: str, dimension: str,
                 limit: float | int | None = None,
                 used: float | int | None = None) -> None:
        super().__init__(message)
        self.dimension = dimension
        self.limit = limit
        self.used = used


@contextmanager
def engine_guard(stage: str) -> Iterator[None]:
    """Entry-point guard: let :class:`ReproError` through untouched,
    wrap anything else as a :class:`SpecializationError` so callers
    never see a bare Python exception from the engine."""
    try:
        yield
    except ReproError:
        raise
    except Exception as error:  # noqa: BLE001 — the taxonomy boundary
        raise SpecializationError(
            f"internal error during {stage}: "
            f"{type(error).__name__}: {error}") from error


def classify(error: BaseException) -> str:
    """Taxonomy bucket of an exception, for reporting (the service's
    failure accounting uses it): ``budget`` / ``program`` / ``facet``
    / ``specialization`` / ``internal``."""
    if isinstance(error, BudgetExhausted):
        return "budget"
    if isinstance(error, FacetError):
        return "facet"
    if isinstance(error, ProgramError):
        return "program"
    if isinstance(error, SpecializationError):
        return "specialization"
    return "internal"
