"""Semantic algebras (Definition 1) as first-class objects.

A semantic algebra ``[D; O]`` is a carrier plus the operations on it.
For this language the carriers are the value sorts and the operations
are the primitive instances whose carrier matches — Section 3.2's
open/closed split falls out of each instance's signature.  These objects
exist so the safety checkers in :mod:`repro.algebra.safety` can speak
the paper's vocabulary, and so users defining new facets can enumerate
exactly the operators their facet may abstract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.lang.primitives import (
    PRIMITIVES, PrimSig, primitives_for_carrier)
from repro.lang.values import SORTS, Value


@dataclass(frozen=True)
class Operation:
    """One operator of a semantic algebra: a primitive instance."""

    name: str
    sig: PrimSig

    @property
    def is_closed(self) -> bool:
        return self.sig.is_closed

    @property
    def is_open(self) -> bool:
        return self.sig.is_open

    @property
    def arity(self) -> int:
        return self.sig.arity

    def apply(self, args: Sequence[Value]) -> Value:
        from repro.lang.primitives import apply_primitive
        return apply_primitive(self.name, args)

    def __str__(self) -> str:
        kind = "closed" if self.is_closed else "open"
        args = " x ".join(self.sig.arg_sorts)
        return f"{self.name} : {args} -> {self.sig.result_sort} ({kind})"


@dataclass(frozen=True)
class SemanticAlgebra:
    """``[D; O]`` for one carrier sort."""

    carrier: str
    operations: tuple[Operation, ...]

    @property
    def open_operations(self) -> tuple[Operation, ...]:
        return tuple(op for op in self.operations if op.is_open)

    @property
    def closed_operations(self) -> tuple[Operation, ...]:
        return tuple(op for op in self.operations if op.is_closed)

    def operation(self, name: str) -> Operation:
        for op in self.operations:
            if op.name == name:
                return op
        raise KeyError(f"{self.carrier} algebra has no operator "
                       f"{name!r}")

    def __str__(self) -> str:
        ops = ", ".join(op.name for op in self.operations)
        return f"[{self.carrier}; {{{ops}}}]"


def algebra_of(carrier: str) -> SemanticAlgebra:
    """The semantic algebra of one value sort, from the primitive
    registry."""
    operations = tuple(Operation(name, sig)
                       for name, sig in primitives_for_carrier(carrier))
    return SemanticAlgebra(carrier, operations)


def all_algebras() -> Iterator[SemanticAlgebra]:
    """Every basic algebra of the language."""
    for sort in SORTS:
        yield algebra_of(sort)
