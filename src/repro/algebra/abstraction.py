"""The abstraction functions relating the three semantic levels
(Section 3.2).

The paper stacks three algebras for every domain:

* **standard semantics** — concrete values ``d in D``;
* **online partial evaluation** — elements of the flat ``Values``
  lattice: ``tau_online`` maps a value to the constant denoting it (the
  paper's ``T^ = K^-1``, the "textual representation");
* **offline partial evaluation** — binding times: ``tau_offline`` maps a
  ``Values`` element to ``Static`` exactly when it is a constant (the
  paper's ``T~``).

Their composite ``tau_offline . tau_online`` abstracts standard values
straight to binding times, used by the Gamma functions of Figure 4's
``K~``.
"""

from __future__ import annotations

from repro.lang.values import Value, is_value
from repro.lattice.bt import BT
from repro.lattice.pevalue import PEValue


def tau_online(value: Value) -> PEValue:
    """``T^ : Values -> Values^`` — concrete value to its constant."""
    if not is_value(value):
        raise TypeError(f"not an object-language value: {value!r}")
    return PEValue.const(value)


def tau_offline(pe: PEValue) -> BT:
    """``T~ : Values^ -> Values~`` — constants are Static, top is
    Dynamic, bottom stays bottom."""
    if pe.is_bottom:
        return BT.BOT
    if pe.is_const:
        return BT.STATIC
    return BT.DYNAMIC


def tau_full(value: Value) -> BT:
    """``T~ . T^`` — any proper concrete value is Static."""
    return tau_offline(tau_online(value))


def bt_of_args(args: list[BT]) -> BT:
    """The uniform binding-time rule (Definition 10's operator body):
    bottom-strict, Static when all arguments are Static, else Dynamic."""
    if any(arg.is_bottom for arg in args):
        return BT.BOT
    if all(arg.is_static for arg in args):
        return BT.STATIC
    return BT.DYNAMIC
