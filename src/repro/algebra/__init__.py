"""The algebraic framework of Section 3: semantic algebras, abstraction
functions between the three levels, and executable safety criteria."""

from repro.algebra.abstraction import (
    bt_of_args, tau_full, tau_offline, tau_online)
from repro.algebra.safety import (
    DEFAULT_SAMPLES, check_abstract_facet_safety, check_facet_safety,
    check_facet_monotonicity)
from repro.algebra.semantic import (
    Operation, SemanticAlgebra, algebra_of, all_algebras)

__all__ = [
    "bt_of_args", "tau_full", "tau_offline", "tau_online",
    "DEFAULT_SAMPLES", "check_abstract_facet_safety",
    "check_facet_safety", "check_facet_monotonicity",
    "Operation", "SemanticAlgebra", "algebra_of", "all_algebras",
]
