"""Executable safety criteria: Definition 2 condition 5, Properties 1,
2 and 6, and operator monotonicity — the obligations a user-defined
facet must meet, as checkers the test suite runs on every shipped facet.

All checkers sample: concrete values come from per-sort default sample
sets (overridable), abstract values from each facet's
``sample_abstract_values``.  A checker returns human-readable violation
strings; an empty list means the sampled obligation holds.  The
hypothesis suites drive the same checkers with randomized samples.
"""

from __future__ import annotations

from itertools import product as cartesian
from typing import Mapping, Sequence

from repro.lang.errors import EvalError
from repro.lang.primitives import PrimSig, apply_primitive
from repro.lang.values import BOOL, FLOAT, INT, VECTOR, Value, Vector
from repro.lattice.bt import BT
from repro.lattice.pevalue import PEValue
from repro.algebra.abstraction import tau_offline, tau_online
from repro.algebra.semantic import algebra_of
from repro.facets.abstract.base import AbstractFacet
from repro.facets.base import Facet

#: Default concrete sample values per sort — small but adversarial
#: (zero, signs, parities, singleton and empty vectors).
DEFAULT_SAMPLES: dict[str, tuple[Value, ...]] = {
    INT: (-7, -2, -1, 0, 1, 2, 3, 8),
    FLOAT: (-2.5, -1.0, 0.0, 0.5, 1.0, 3.25),
    BOOL: (True, False),
    VECTOR: (Vector.of([]), Vector.of([1.0]), Vector.of([1.0, -2.0]),
             Vector.of([0.5, 2.0, -3.0])),
}


def _concrete_tuples(sig: PrimSig,
                     samples: Mapping[str, Sequence[Value]],
                     limit: int) -> list[tuple[Value, ...]]:
    pools = [samples.get(sort, ()) for sort in sig.arg_sorts]
    tuples = []
    for combo in cartesian(*pools):
        tuples.append(combo)
        if len(tuples) >= limit:
            break
    return tuples


def _abstract_candidates(facet: Facet, sort: str,
                         value: Value) -> list[object]:
    """Abstract arguments related to ``value`` by the logical relation:
    the exact abstraction plus everything above it (sampled)."""
    if sort == facet.carrier:
        exact = facet.abstract(value)
        above = [a for a in facet.sample_abstract_values()
                 if facet.domain.leq(exact, a)]
        return above or [exact]
    return [PEValue.const(value), PEValue.top()]


def check_facet_safety(facet: Facet,
                       samples: Mapping[str, Sequence[Value]]
                       | None = None,
                       per_op_limit: int = 4_096) -> list[str]:
    """Definition 2 condition 5 / Property 1 for one facet, sampled.

    Closed:  ``alpha(p(d...)) <= p^(a...)``  whenever ``alpha(d) <= a``.
    Open:    ``tau(p(d...))  <= p^(a...)``  in the flat Values order —
    equivalently Property 2: a constant answer must be *the* constant.
    """
    samples = dict(DEFAULT_SAMPLES) if samples is None else dict(samples)
    violations: list[str] = []
    algebra = algebra_of(facet.carrier)
    for op in algebra.operations:
        table = facet.closed_ops if op.is_closed else facet.open_ops
        if op.name not in table:
            continue  # defaults are trivially safe
        for concrete in _concrete_tuples(op.sig, samples, per_op_limit):
            try:
                result = apply_primitive(op.name, concrete)
            except EvalError:
                continue  # p(d...) = bottom: vacuously safe
            candidate_lists = [
                _abstract_candidates(facet, sort, value)
                for sort, value in zip(op.sig.arg_sorts, concrete)]
            for abstract_args in cartesian(*candidate_lists):
                if op.is_closed:
                    got = facet.apply_closed(op.name, op.sig,
                                             list(abstract_args))
                    want = facet.abstract(result)
                    if not facet.domain.leq(want, got):
                        violations.append(
                            f"{facet.name}.{op.name}{concrete}: "
                            f"alpha(result)={want!r} not below "
                            f"{got!r} for abstract args "
                            f"{abstract_args!r}")
                else:
                    got_pe = facet.apply_open(op.name, op.sig,
                                              list(abstract_args))
                    if got_pe.is_const and \
                            got_pe != tau_online(result):
                        violations.append(
                            f"{facet.name}.{op.name}{concrete}: open "
                            f"operator produced {got_pe} but the "
                            f"concrete result is {result!r} (args "
                            f"{abstract_args!r})")
                    if got_pe.is_bottom:
                        violations.append(
                            f"{facet.name}.{op.name}{concrete}: open "
                            f"operator produced bottom on non-bottom "
                            f"arguments {abstract_args!r}")
    return violations


def check_facet_monotonicity(facet: Facet,
                             per_op_limit: int = 20_000) -> list[str]:
    """Definition 2 condition 2 for one facet, sampled exhaustively over
    the facet's abstract-value sample (plus PE values for foreign
    positions)."""
    violations: list[str] = []
    abstract = list(facet.sample_abstract_values())
    pe_samples = [PEValue.bottom(), PEValue.const(1), PEValue.const(2),
                  PEValue.top()]
    pe_lattice = PEValue.bottom()  # placeholder; order checked via leq
    from repro.lattice.pevalue import PE_LATTICE
    algebra = algebra_of(facet.carrier)
    for op in algebra.operations:
        table = facet.closed_ops if op.is_closed else facet.open_ops
        if op.name not in table:
            continue
        pools = []
        for sort in op.sig.arg_sorts:
            pools.append(abstract if sort == facet.carrier
                         else pe_samples)
        combos = []
        for combo in cartesian(*pools):
            combos.append(combo)
            if len(combos) * len(combos) > per_op_limit:
                break

        def arg_leq(sorts, left, right) -> bool:
            for sort, l, r in zip(sorts, left, right):
                if sort == facet.carrier:
                    if not facet.domain.leq(l, r):
                        return False
                elif not PE_LATTICE.leq(l, r):
                    return False
            return True

        for left in combos:
            for right in combos:
                if not arg_leq(op.sig.arg_sorts, left, right):
                    continue
                if op.is_closed:
                    out_l = facet.apply_closed(op.name, op.sig,
                                               list(left))
                    out_r = facet.apply_closed(op.name, op.sig,
                                               list(right))
                    if not facet.domain.leq(out_l, out_r):
                        violations.append(
                            f"{facet.name}.{op.name}: not monotone at "
                            f"{left!r} <= {right!r}: {out_l!r} !<= "
                            f"{out_r!r}")
                else:
                    out_l = facet.apply_open(op.name, op.sig, list(left))
                    out_r = facet.apply_open(op.name, op.sig,
                                             list(right))
                    if not PE_LATTICE.leq(out_l, out_r):
                        violations.append(
                            f"{facet.name}.{op.name}: not monotone at "
                            f"{left!r} <= {right!r}: {out_l} !<= "
                            f"{out_r}")
    return violations


def check_abstract_facet_safety(abstract: AbstractFacet,
                                per_op_limit: int = 4_096) -> list[str]:
    """Property 6, sampled: where the abstract facet answers Static, the
    online facet must answer a constant, for every online argument tuple
    related under ``alpha~``; and the abstract operators must abstract
    the online closed operators (Definition 8's safety)."""
    online = abstract.online
    violations: list[str] = []
    online_samples = list(online.sample_abstract_values())
    pe_samples = [PEValue.const(0), PEValue.const(2), PEValue.top()]
    algebra = algebra_of(online.carrier)
    for op in algebra.operations:
        table = abstract.closed_ops if op.is_closed \
            else abstract.open_ops
        if op.name not in table:
            continue
        pools = []
        for sort in op.sig.arg_sorts:
            pools.append(online_samples if sort == online.carrier
                         else pe_samples)
        combos = []
        for combo in cartesian(*pools):
            combos.append(combo)
            if len(combos) >= per_op_limit:
                break
        for online_args in combos:
            if any(_online_arg_is_bottom(online, op.sig, i, a)
                   for i, a in enumerate(online_args)):
                continue
            abstract_args = [
                abstract.abstract_of_facet(a)
                if sort == online.carrier else tau_offline(a)
                for sort, a in zip(op.sig.arg_sorts, online_args)]
            if op.is_open:
                got = abstract.apply_open(op.name, op.sig,
                                          abstract_args)
                if got is BT.STATIC:
                    online_out = online.apply_open(op.name, op.sig,
                                                   list(online_args))
                    if not (online_out.is_const
                            or online_out.is_bottom):
                        violations.append(
                            f"{abstract.name}.{op.name}: Static at "
                            f"{abstract_args!r} but the online facet "
                            f"answers {online_out} at "
                            f"{online_args!r}")
            else:
                got = abstract.apply_closed(op.name, op.sig,
                                            abstract_args)
                online_out = online.apply_closed(op.name, op.sig,
                                                 list(online_args))
                want = abstract.abstract_of_facet(online_out)
                if not abstract.domain.leq(want, got):
                    violations.append(
                        f"{abstract.name}.{op.name}: "
                        f"alpha~(online result)={want!r} not below "
                        f"{got!r} at {online_args!r}")
    return violations


def _online_arg_is_bottom(online: Facet, sig: PrimSig, index: int,
                          arg: object) -> bool:
    if sig.arg_sorts[index] == online.carrier:
        return online.domain.leq(arg, online.domain.bottom)
    assert isinstance(arg, PEValue)
    return arg.is_bottom
