"""Offline parameterized partial evaluation (Section 5)."""

from repro.offline.analysis import (
    AnalysisConfig, AnalysisResult, CallAnnotation, FacetAnalyzer, FOLD,
    IfAnnotation, PrimAnnotation, RESIDUAL, Signature, TRIGGER, analyze)
from repro.offline.cogen import (
    GenExtResult, GeneratingExtension, make_generating_extension)
from repro.offline.higher_order import (
    TC, AbsClosure, HOAnalysisResult, HOConfig, HigherOrderAnalyzer,
    JoinFn, TopFn, analyze_higher_order)
from repro.offline.polyvariant import (
    PolyvariantAnalyzer, PolyvariantResult, Variant,
    analyze_polyvariant)
from repro.offline.report import (
    Row, analysis_rows, facet_table, signature_lines)
from repro.offline.specializer import (
    OfflineResult, OfflineSpecializer, specialize_offline)

__all__ = [
    "AnalysisConfig", "AnalysisResult", "CallAnnotation", "FacetAnalyzer",
    "FOLD", "IfAnnotation", "PrimAnnotation", "RESIDUAL", "Signature",
    "TRIGGER", "analyze",
    "GenExtResult", "GeneratingExtension", "make_generating_extension",
    "TC", "AbsClosure", "HOAnalysisResult", "HOConfig",
    "HigherOrderAnalyzer", "JoinFn", "TopFn", "analyze_higher_order",
    "PolyvariantAnalyzer", "PolyvariantResult", "Variant",
    "analyze_polyvariant",
    "Row", "analysis_rows", "facet_table", "signature_lines",
    "OfflineResult", "OfflineSpecializer", "specialize_offline",
]
