"""Offline parameterized specialization (Section 5).

The offline specializer does **not** search for reductions: the facet
analysis already decided, per program point, what happens there —

* ``FOLD``: every argument is static; execute the primitive concretely;
* ``TRIGGER(j)``: facet ``j``'s open operator produces the constant; run
  exactly that operator (this is "selects the corresponding reduction
  operations prior to specialization");
* ``RESIDUAL``: emit residual code; compute closed facet operators only
  for the facets the analysis marked *needed* in the enclosing function
  (for the inner-product example that means: size computation in
  ``iprod`` only, none in ``dotProd`` — the paper's Section 6.2
  observation).

Conditionals reduce exactly where the analysis marked the test Static;
calls use the same ``APP`` strategy as the online specializer, but cache
keys only contain the facet components the *callee* needs, which makes
specialization patterns coarser and cache hits more frequent.

The specializer still threads facet vectors — it must, to have the
actual constants (the vector size 3) available where the analysis said a
facet triggers — but per function it tracks only the needed facets, and
its per-primitive work is O(needed) instead of O(all facets): the
efficiency claim of the introduction, measured by
``benchmarks/bench_decisions.py``.

Inputs must match the analyzed pattern (be at or below it in the
abstract order); mismatched inputs are rejected at entry.  Inside a
matching run, a Static annotation can still meet a residual value in
one case only — a static subexpression *errored* (the paper's "modulo
termination" bottom caveat) — and then the specializer residualizes, so
the error surfaces at run time instead of specialization time.

Like the online engine, the walk runs on the generator trampoline of
:mod:`repro.engine.trampoline` (constant Python stack depth) and meters
its work against the config's :class:`~repro.engine.budget.Budget`.
Budget-forced widening collapses a call onto the all-dynamic variant
(the lenient rung-2 path) — safe here because a Static annotation
meeting a residual value residualizes via the bottom caveat above.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Mapping, Sequence

from repro.engine.budget import STEP_STRIDE, DegradeEvent
from repro.engine.errors import BudgetExhausted, engine_guard
from repro.engine.trampoline import run_trampoline
from repro.lang.ast import (
    Call, Const, Expr, FunDef, If, Let, Prim, Var, count_occurrences)
from repro.lang.errors import EvalError, PEError
from repro.lang.primitives import apply_primitive, fold_would_blow_up
from repro.lang.program import Program
from repro.lang.values import Value, is_value
from repro.lattice.pevalue import PEValue
from repro.facets.vector import FacetSuite, FacetVector
from repro.offline.analysis import (
    AnalysisResult, CallAnnotation, FOLD, IfAnnotation, PrimAnnotation,
    RESIDUAL, TRIGGER)
from repro.online.cache import SpecCache, dynamic_positions, make_key
from repro.online.config import PEConfig, PEStats, UnfoldStrategy
from repro.transform.cleanup import canonical_names, drop_unreachable
from repro.transform.simplify import definitely_total, simplify_program


@dataclass(frozen=True)
class OfflineResult:
    """Residual program and counters from one offline run."""

    program: Program
    raw_program: Program
    stats: PEStats
    goal_params: tuple[str, ...]
    analysis: AnalysisResult


@dataclass
class _Binding:
    expr: Expr
    vector: FacetVector


class OfflineSpecializer:
    """The specialization phase of offline parameterized PE."""

    def __init__(self, analysis: AnalysisResult,
                 suite: FacetSuite,
                 config: PEConfig | None = None) -> None:
        self.analysis = analysis
        self.program = analysis.program
        self.functions = self.program.functions()
        self.suite = suite
        self.config = config if config is not None else PEConfig()
        self.stats = PEStats()
        self.cache = SpecCache(reserved_names=list(self.functions))
        self.budget = self.config.make_budget()
        self._gensym = 0
        #: facet-name -> Facet, for trigger dispatch.
        self._facets = {facet.name: facet for facet in suite.facets}
        #: ``(needed, sort) -> None | (keep flags)``: ``None`` means
        #: every facet of the sort is needed (restrict is identity).
        self._restrict_masks: dict[tuple, object] = {}
        #: ``(needed, carrier) -> ((facet, needed?), ...)``: the
        #: closed-op plan of :meth:`_residual_prim` (un-needed slots
        #: take the facet's top without a set probe).
        self._closed_plans: dict[tuple, tuple] = {}

    # -- entry point ---------------------------------------------------------
    def specialize(self, inputs: Sequence[FacetVector | Value]) \
            -> OfflineResult:
        """Specialize on inputs matching the analyzed pattern."""
        main = self.program.main
        if len(inputs) != main.arity:
            raise PEError(
                f"{main.name}: expected {main.arity} inputs, "
                f"got {len(inputs)}")
        with engine_guard("offline specialization"):
            vectors = [self.suite.const_vector(value) if is_value(value)
                       else value for value in inputs]
            self._check_pattern(vectors)

            needed = self.analysis.needed_facets.get(main.name,
                                                     frozenset())
            env: dict[str, _Binding] = {}
            goal_params = []
            for param, vector in zip(main.params, vectors):
                vector = self._restrict(vector, needed)
                if vector.pe.is_const:
                    env[param] = _Binding(Const(vector.pe.constant()),
                                          vector)
                else:
                    env[param] = _Binding(Var(param), vector)
                    goal_params.append(param)

            self.budget.start()
            started = perf_counter()
            try:
                body, _ = run_trampoline(
                    self._pe(main.body, env, main.name, depth=0))
            finally:
                self.stats.record_phase("specialize",
                                        perf_counter() - started)
                self.budget.charge_steps(self.stats.steps)
                self.stats.budget_used = self.budget.used()

            goal = FunDef(main.name, tuple(goal_params), body)
            raw = Program((goal, *self.cache.residual_defs()))
            cleaned = raw
            started = perf_counter()
            if self.config.simplify:
                cleaned = simplify_program(cleaned)
            if self.config.tidy:
                cleaned = canonical_names(drop_unreachable(cleaned))
            self.stats.record_phase("simplify",
                                    perf_counter() - started)
            return OfflineResult(cleaned, raw, self.stats,
                                 tuple(goal_params), self.analysis)

    def _check_pattern(self, vectors: Sequence[FacetVector]) -> None:
        """Inputs must lie at or below the analyzed abstract pattern."""
        if self.config.lenient:
            # Lenient mode accepts off-pattern inputs; broken Static
            # promises residualize instead of folding.
            return
        abstract = [self.analysis.suite.abstract_of_online(v)
                    for v in vectors]
        for i, (given, analyzed) in enumerate(
                zip(abstract, self.analysis.inputs)):
            if not self.analysis.suite.leq(given, analyzed):
                raise PEError(
                    f"input {i} ({given}) does not match the analyzed "
                    f"pattern ({analyzed}); rerun the facet analysis "
                    f"for this division")

    # -- restricted facet tracking ---------------------------------------------
    def _needed(self, fn: str) -> frozenset[str]:
        return self.analysis.needed_facets.get(fn, frozenset())

    def _restrict(self, vector: FacetVector,
                  needed: frozenset[str]) -> FacetVector:
        """Drop (top out) components of facets the function does not
        need, so the run does no work to maintain them."""
        key = (needed, vector.sort)
        try:
            mask = self._restrict_masks[key]
        except KeyError:
            facets = self.suite.facets_for(vector.sort)
            keep = tuple(facet.name in needed for facet in facets)
            mask = None if all(keep) else keep
            self._restrict_masks[key] = mask
        if mask is None:
            return vector
        facets = self.suite.facets_for(vector.sort)
        user = tuple(component if kept else facet.domain.top
                     for kept, facet, component
                     in zip(mask, facets, vector.user))
        return self.suite.make_vector(vector.sort, vector.pe, user)

    def _const_vector(self, value: Value,
                      needed: frozenset[str]) -> FacetVector:
        return self._restrict(self.suite.const_vector(value), needed)

    # -- the specialization walk -------------------------------------------------
    def _leaf(self, expr: Expr, env: Mapping[str, _Binding],
              fn: str) -> tuple[Expr, FacetVector] | None:
        """Evaluate a leaf node without a trampoline round trip (the
        same work — including the fuel tick — as :meth:`_pe`'s leaf
        cases); ``None`` for non-leaves."""
        if isinstance(expr, Var):
            self._tick()
            binding = env.get(expr.name)
            if binding is None:
                raise PEError(f"unbound variable {expr.name!r}")
            return binding.expr, binding.vector
        if isinstance(expr, Const):
            self._tick()
            return expr, self._const_vector(expr.value,
                                            self._needed(fn))
        return None

    def _pe(self, expr: Expr, env: Mapping[str, _Binding], fn: str,
            depth: int):
        self._tick()
        if isinstance(expr, Const):
            return expr, self._const_vector(expr.value, self._needed(fn))
        if isinstance(expr, Var):
            binding = env.get(expr.name)
            if binding is None:
                raise PEError(f"unbound variable {expr.name!r}")
            return binding.expr, binding.vector
        if isinstance(expr, Prim):
            return (yield from self._pe_prim(expr, env, fn, depth))
        if isinstance(expr, If):
            return (yield from self._pe_if(expr, env, fn, depth))
        if isinstance(expr, Let):
            return (yield from self._pe_let(expr, env, fn, depth))
        if isinstance(expr, Call):
            return (yield from self._pe_call(expr, env, fn, depth))
        raise PEError(
            f"higher-order node {type(expr).__name__} reached the "
            f"first-order offline specializer")

    def _pe_prim(self, expr: Prim, env: Mapping[str, _Binding],
                 fn: str, depth: int):
        needed = self._needed(fn)
        residual_args = []
        vectors = []
        for arg in expr.args:
            pair = self._leaf(arg, env, fn)
            arg_expr, arg_vector = pair if pair is not None \
                else (yield self._pe(arg, env, fn, depth))
            residual_args.append(arg_expr)
            vectors.append(arg_vector)
        annotation = self.analysis.annotation_of(expr)
        action = annotation.action \
            if isinstance(annotation, PrimAnnotation) else RESIDUAL

        if action == FOLD:
            if all(isinstance(a, Const) for a in residual_args):
                values = [
                    a.value for a in residual_args]  # type: ignore[union-attr]
                if fold_would_blow_up(expr.op, values):
                    return self._residual_prim(expr.op, residual_args,
                                               vectors, fn)
                try:
                    value = apply_primitive(expr.op, values)
                except EvalError:
                    return self._residual_prim(expr.op, residual_args,
                                               vectors, fn)
                self.stats.facet_evaluations += 1
                self.stats.record_fold("pe")
                return (Const(value),
                        self._const_vector(value, needed))
            # Inputs were pattern-checked at entry, so a residual
            # argument under a Static annotation can only be the
            # paper's "modulo termination" caveat: a static
            # subexpression errored (bottom) and was residualized.
            # Residualize here too — the error stays at run time.
            return self._residual_prim(expr.op, residual_args, vectors,
                                       fn)

        if action == TRIGGER:
            assert isinstance(annotation, PrimAnnotation)
            producer = annotation.producer or ""
            facet = self._facets.get(producer)
            outcome = None
            if facet is not None:
                sig = self.suite.resolve_sig(expr.op, vectors)
                if sig is not None:
                    projected = self.suite.project_args(
                        facet, sig, vectors)
                    self.stats.facet_evaluations += 1
                    outcome = facet.apply_open(expr.op, sig, projected)
            if outcome is not None and outcome.is_const:
                self.stats.record_fold(producer)
                value = outcome.constant()
                return (Const(value),
                        self._const_vector(value, needed))
            # Same bottom-caveat reasoning as FOLD above.
            return self._residual_prim(expr.op, residual_args, vectors,
                                       fn)

        return self._residual_prim(expr.op, residual_args, vectors, fn)

    def _residual_prim(self, op: str, residual_args: Sequence[Expr],
                       vectors: Sequence[FacetVector],
                       fn: str) -> tuple[Expr, FacetVector]:
        """Residual primitive: maintain only the needed facets' closed
        components for downstream triggers."""
        needed = self._needed(fn)
        sig = self.suite.resolve_sig(op, vectors)
        residual = Prim(op, tuple(residual_args))
        self.budget.charge_nodes()
        if sig is None:
            return residual, self.suite.unknown(None)
        if any(self.suite.is_bottom(v) for v in vectors):
            return residual, self.suite.bottom(sig.result_sort)
        if sig.is_closed:
            plan_key = (needed, sig.carrier)
            try:
                plan = self._closed_plans[plan_key]
            except KeyError:
                plan = tuple(
                    (facet, facet.name in needed)
                    for facet in self.suite.facets_for(sig.carrier))
                self._closed_plans[plan_key] = plan
            components = []
            for facet, is_needed in plan:
                if is_needed:
                    projected = self.suite.project_args(
                        facet, sig, vectors)
                    self.stats.facet_evaluations += 1
                    components.append(
                        facet.apply_closed(op, sig, projected))
                else:
                    components.append(facet.domain.top)
            vector = self.suite.smash(self.suite.make_vector(
                sig.result_sort, PEValue.top(), tuple(components)))
            return residual, vector
        return residual, self.suite.unknown(sig.result_sort)

    def _pe_if(self, expr: If, env: Mapping[str, _Binding], fn: str,
               depth: int):
        annotation = self.analysis.annotation_of(expr)
        static_test = isinstance(annotation, IfAnnotation) \
            and annotation.test_bt.is_static
        pair = self._leaf(expr.test, env, fn)
        test_expr, _ = pair if pair is not None \
            else (yield self._pe(expr.test, env, fn, depth))
        if static_test:
            if isinstance(test_expr, Const) \
                    and isinstance(test_expr.value, bool):
                self.stats.if_reductions += 1
                branch = expr.then if test_expr.value else expr.else_
                pair = self._leaf(branch, env, fn)
                if pair is not None:
                    return pair
                return (yield self._pe(branch, env, fn, depth))
            # Bottom caveat again: the static test errored upstream and
            # was residualized; keep the conditional residual.
        pair = self._leaf(expr.then, env, fn)
        then_expr, then_vector = pair if pair is not None \
            else (yield self._pe(expr.then, env, fn, depth))
        pair = self._leaf(expr.else_, env, fn)
        else_expr, else_vector = pair if pair is not None \
            else (yield self._pe(expr.else_, env, fn, depth))
        joined = self.suite.join(then_vector, else_vector)
        self.budget.charge_nodes()
        return If(test_expr, then_expr, else_expr), joined

    def _pe_let(self, expr: Let, env: Mapping[str, _Binding], fn: str,
                depth: int):
        pair = self._leaf(expr.bound, env, fn)
        bound_expr, bound_vector = pair if pair is not None \
            else (yield self._pe(expr.bound, env, fn, depth))
        if isinstance(bound_expr, (Const, Var)):
            inner = dict(env)
            inner[expr.name] = _Binding(bound_expr, bound_vector)
            pair = self._leaf(expr.body, inner, fn)
            if pair is not None:
                return pair
            return (yield self._pe(expr.body, inner, fn, depth))
        fresh = self._fresh(expr.name)
        inner = dict(env)
        inner[expr.name] = _Binding(Var(fresh), bound_vector)
        pair = self._leaf(expr.body, inner, fn)
        body_expr, body_vector = pair if pair is not None \
            else (yield self._pe(expr.body, inner, fn, depth))
        if count_occurrences(body_expr, fresh) == 0 \
                and definitely_total(bound_expr):
            return body_expr, body_vector
        self.budget.charge_nodes()
        return Let(fresh, bound_expr, body_expr), body_vector

    # -- APP -----------------------------------------------------------------------
    def _pe_call(self, expr: Call, env: Mapping[str, _Binding],
                 fn: str, depth: int):
        fundef = self.functions.get(expr.fn)
        if fundef is None:
            raise PEError(f"call to unknown function {expr.fn!r}")
        callee_needed = self._needed(expr.fn)
        residual_args = []
        vectors = []
        for arg in expr.args:
            pair = self._leaf(arg, env, fn)
            arg_expr, arg_vector = pair if pair is not None \
                else (yield self._pe(arg, env, fn, depth))
            residual_args.append(arg_expr)
            # The callee only tracks its needed facets.
            vectors.append(self._restrict(arg_vector, callee_needed))
        self.stats.decisions += 1
        reason = self.budget.exhausted
        if reason is not None:
            self._degrade(fundef.name, reason, depth, "widened-call")
            return (yield self._specialize_call(
                fundef, residual_args, vectors, widen=True))
        if self._should_unfold(vectors, depth):
            if self.budget.blocks_unfold(depth):
                self._degrade(fundef.name, "unfold_depth", depth,
                              "residual-call")
            else:
                self.stats.unfoldings += 1
                return (yield self._unfold(fundef, residual_args,
                                           vectors, depth + 1))
        return (yield self._specialize_call(fundef, residual_args,
                                            vectors))

    def _should_unfold(self, vectors: Sequence[FacetVector],
                       depth: int) -> bool:
        strategy = self.config.unfold_strategy
        if strategy is UnfoldStrategy.NEVER:
            return False
        if depth >= self.config.unfold_fuel:
            return False
        if strategy is UnfoldStrategy.ALWAYS:
            return True
        return any(self._informative(vector) for vector in vectors)

    def _informative(self, vector: FacetVector) -> bool:
        if vector.pe.is_const:
            return True
        facets = self.suite.facets_for(vector.sort)
        return any(not facet.domain.leq(facet.domain.top, component)
                   for facet, component in zip(facets, vector.user))

    def _unfold(self, fundef: FunDef, residual_args: Sequence[Expr],
                vectors: Sequence[FacetVector],
                depth: int):
        env: dict[str, _Binding] = {}
        lets: list[tuple[str, Expr]] = []
        for param, arg_expr, vector in zip(fundef.params, residual_args,
                                           vectors):
            trivial = isinstance(arg_expr, (Const, Var))
            if trivial or count_occurrences(fundef.body, param) <= 1:
                env[param] = _Binding(arg_expr, vector)
            else:
                fresh = self._fresh(param)
                lets.append((fresh, arg_expr))
                env[param] = _Binding(Var(fresh), vector)
        pair = self._leaf(fundef.body, env, fundef.name)
        body_expr, body_vector = pair if pair is not None \
            else (yield self._pe(fundef.body, env, fundef.name, depth))
        for fresh, bound in reversed(lets):
            if count_occurrences(body_expr, fresh) == 0 \
                    and definitely_total(bound):
                continue
            self.budget.charge_nodes()
            body_expr = Let(fresh, bound, body_expr)
        return body_expr, body_vector

    def _specialize_call(self, fundef: FunDef,
                         residual_args: Sequence[Expr],
                         vectors: Sequence[FacetVector],
                         widen: bool = False):
        variants = self.cache.variants_of(fundef.name)
        rung = 0
        if widen:
            # Budget-forced widening: collapse onto the all-dynamic
            # variant.  Unlike the variant-blowup case below this never
            # raises — a Static annotation meeting a now-dynamic value
            # residualizes via the bottom caveat, so correctness holds.
            rung = 2
            self.stats.generalizations += 1
            vectors = [self.suite.unknown(v.sort) for v in vectors]
        elif variants >= 2 * self.config.max_variants:
            # Static data grows under dynamic control.  Classic offline
            # PE diverges here: making the argument dynamic would break
            # the analysis's Static promises.  Lenient mode residualizes
            # the mismatches; otherwise fail with advice.
            if not self.config.lenient:
                raise PEError(
                    f"{fundef.name}: more than "
                    f"{2 * self.config.max_variants} specialization "
                    f"variants — static data grows under dynamic "
                    f"control; re-analyze with a generalized division "
                    f"or set PEConfig(lenient=True)")
            rung = 2
            self.stats.generalizations += 1
            vectors = [self.suite.unknown(v.sort) for v in vectors]
        elif variants >= self.config.max_variants:
            rung = 1
            self.stats.generalizations += 1
            vectors = [self.suite.unknown(v.sort) if not v.pe.is_const
                       else v for v in vectors]
        key = make_key(self.suite, fundef.name, vectors, rung)
        positions = dynamic_positions(vectors, rung)
        entry = self.cache.lookup(key)
        if entry is None:
            entry = self.cache.register(
                key, fundef.name, positions,
                tuple(fundef.params[i] for i in positions))
            self.stats.specializations += 1
            env: dict[str, _Binding] = {}
            for i, (param, vector) in enumerate(
                    zip(fundef.params, vectors)):
                if i in positions:
                    env[param] = _Binding(Var(param), vector)
                else:
                    env[param] = _Binding(
                        Const(vector.pe.constant()), vector)
            pair = self._leaf(fundef.body, env, fundef.name)
            body_expr, _ = pair if pair is not None \
                else (yield self._pe(fundef.body, env, fundef.name,
                                     depth=0))
            self.cache.finish(
                entry, FunDef(entry.name, entry.params, body_expr))
        else:
            self.stats.cache_hits += 1
        call_args = tuple(residual_args[i]
                          for i in entry.dynamic_positions)
        self.budget.charge_nodes()
        return Call(entry.name, call_args), self.suite.unknown(None)

    # -- plumbing --------------------------------------------------------------------
    def _fresh(self, base: str) -> str:
        self._gensym += 1
        return f"{base}!{self._gensym}"

    def _degrade(self, site: str, reason: str, depth: int,
                 action: str) -> None:
        if self.config.strict_budgets:
            raise BudgetExhausted(
                f"budget exceeded ({reason}) at {site!r}; "
                f"strict_budgets=True turns degradation into an error",
                dimension=reason,
                limit=self.budget.limits().get(reason),
                used=self.budget.used().get(reason))
        self.stats.record_degrade(DegradeEvent(
            site=site, reason=reason, action=action, depth=depth,
            step=self.stats.steps))

    def _tick(self) -> None:
        steps = self.stats.steps = self.stats.steps + 1
        if steps > self.config.fuel:
            raise BudgetExhausted(
                f"specialization exceeded {self.config.fuel} steps",
                dimension="fuel", limit=self.config.fuel,
                used=self.stats.steps)
        if self.budget.limited and steps & (STEP_STRIDE - 1) == 0:
            self.budget.charge_steps(steps)


def specialize_offline(program: Program,
                       inputs: Sequence[FacetVector | Value],
                       suite: FacetSuite,
                       analysis: AnalysisResult | None = None,
                       config: PEConfig | None = None) -> OfflineResult:
    """Analyze (if no analysis is supplied) and specialize.

    When reusing one analysis across many input instances — the whole
    point of the offline strategy — run
    :func:`repro.offline.analysis.analyze` once and pass its result.
    """
    if analysis is None:
        from repro.facets.abstract.vector import AbstractSuite
        abstract_suite = AbstractSuite(suite)
        pattern = [abstract_suite.abstract_of_online(
            v if not is_value(v) else suite.const_vector(v))
            for v in inputs]
        from repro.offline.analysis import analyze as run_analysis
        analysis = run_analysis(program, pattern, abstract_suite)
    return OfflineSpecializer(analysis, suite, config).specialize(inputs)
