"""Polyvariant facet analysis — a precision extension over Figure 4.

Figure 4's ``SigEnv`` holds *one* signature per function: argument
vectors from different call sites are joined (monovariant).  When one
function is called both statically and dynamically, the join poisons
the static call site::

    (define (main s d) (+ (helper s) (helper d)))
    (define (helper v) (+ v 1))

Monovariantly, ``helper : <Dynamic> -> <Dynamic>`` — the ``helper s``
call site loses its static result.  A *polyvariant* analysis keeps one
signature per distinct abstract argument pattern, so ``helper`` gets
both ``<Static> -> <Static>`` and ``<Dynamic> -> <Dynamic>`` variants.

The machinery is already there: the first-order analyzer's abstract
function environment ``zeta`` is a worklist fixpoint over
``(function, abstract arguments)`` cells — exactly the polyvariant
signatures, computed but then collapsed into ``pi``.  This module runs
the same engine and *keeps* the cells.  Precision is inherited from the
underlying evaluation; termination from the same finite-height/widening
arguments, with the analyzer's per-function cell cap bounding the
number of variants (past it, patterns generalize).

The result maps each function to its list of variants.  It is an
analysis-level extension: the offline specializer keeps consuming the
monovariant annotations (specializing per-variant is what its
cache keys already do at spec time); the benchmark
``bench_polyvariance.py`` measures the precision gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lang.program import Program
from repro.lang.values import Value
from repro.lattice.bt import BT
from repro.facets.abstract.vector import AbstractSuite, AbstractVector
from repro.facets.vector import FacetSuite
from repro.offline.analysis import (
    AnalysisConfig, AnalysisResult, FacetAnalyzer, Signature)


@dataclass(frozen=True)
class Variant:
    """One polyvariant signature: a distinct argument pattern and the
    result the function produces for it."""

    args: tuple[AbstractVector, ...]
    result: AbstractVector

    def __str__(self) -> str:
        rendered = " x ".join(str(a) for a in self.args)
        return f"{rendered} -> {self.result}"


@dataclass
class PolyvariantResult:
    """Monovariant result plus the per-pattern variants."""

    base: AnalysisResult
    variants: dict[str, tuple[Variant, ...]]

    @property
    def signatures(self) -> dict[str, Signature]:
        return self.base.signatures

    def variant_count(self, name: str) -> int:
        return len(self.variants.get(name, ()))

    def best_result_bt(self, name: str) -> BT:
        """The most precise result binding time any variant achieves —
        the quantity monovariance destroys."""
        variants = self.variants.get(name, ())
        if not variants:
            return self.base.signatures[name].result.bt
        best = BT.DYNAMIC
        for variant in variants:
            if variant.result.bt < best:
                best = variant.result.bt
        return best

    def report(self) -> str:
        lines = []
        for name in self.base.signatures:
            lines.append(f"{name}:")
            lines.append(f"  monovariant: "
                         f"{self.base.signatures[name]}")
            for variant in self.variants.get(name, ()):
                lines.append(f"  variant:     {variant}")
        return "\n".join(lines)


class PolyvariantAnalyzer(FacetAnalyzer):
    """The Figure 4 engine, with ``zeta``'s cells kept as variants."""

    def analyze_polyvariant(
            self, inputs: Sequence[AbstractVector | Value]) \
            -> PolyvariantResult:
        base = self.analyze(inputs)
        # Recover zeta's cells: they ARE the polyvariant signatures.
        variants: dict[str, list[Variant]] = {}
        for name, cells in self._cells_per_fn.items():
            seen: set[tuple] = set()
            for cell in cells:
                value = self._last_solver_values.get(cell)
                if value is None:
                    continue
                _name, args = cell
                key = (args, value)
                if key in seen:
                    continue
                seen.add(key)
                variants.setdefault(name, []).append(
                    Variant(args, value))
        # The goal function is never called, so it has no cell; its
        # lone variant is the monovariant signature.  Same for any
        # function the fixpoint reached only through joined signatures.
        for name, signature in base.signatures.items():
            if not variants.get(name):
                variants[name] = [Variant(signature.args,
                                          signature.result)]
        ordered = {name: tuple(entries)
                   for name, entries in variants.items()}
        return PolyvariantResult(base, ordered)

    def _call_result(self, name, args, solver):  # type: ignore[override]
        """Unlike Figure 4, do NOT short-circuit calls with Dynamic
        arguments to ``(Dynamic, T, ..., T)``: evaluating the body per
        argument pattern is exactly what polyvariance means, and facet
        components under a Dynamic binding time (``<Dynamic, pos>``)
        still sharpen the result."""
        if any(self.suite.is_bottom(a) for a in args):
            return self.suite.bottom(None)
        return self._zeta_ask(solver, name, args)

    # Capture the solver's final values (the base class discards the
    # solver when analyze() returns).
    def _analyze(self, inputs):  # type: ignore[override]
        result = super()._analyze(inputs)
        return result

    def _zeta_ask(self, solver, name, args):  # type: ignore[override]
        value = super()._zeta_ask(solver, name, args)
        self._last_solver_values = solver.values
        return value

    _last_solver_values: dict = {}


def analyze_polyvariant(program: Program,
                        inputs: Sequence[AbstractVector | Value],
                        suite: FacetSuite | AbstractSuite | None = None,
                        config: AnalysisConfig | None = None) \
        -> PolyvariantResult:
    """One-shot polyvariant facet analysis."""
    analyzer = PolyvariantAnalyzer(program, suite, config)
    analyzer._last_solver_values = {}
    return analyzer.analyze_polyvariant(inputs)
