"""Generating extensions: the self-application payoff, made concrete.

The paper's motivation for the offline strategy is that a specializer
simple enough to be *self-applied* yields, by the second Futamura
projection, a **generating extension** of the subject program — a
dedicated specializer for that one program, with all interpretation of
annotations compiled away.  Writing the specializer in the object
language and self-applying it is out of scope (FUTURE.md), but the
artifact self-application would produce can be built directly, because
the facet analysis already decided everything per program point: this
module *stages* the offline specializer, compiling the annotated AST of
each function into a tree of Python closures once, so that every later
specialization only executes decisions — no annotation lookup, no
dispatch on node type, no signature resolution.

This is the "cogen by hand" construction of the offline-PE literature
(Holst & Launchbury; Birkedal & Welinder's ML cogen), and it
operationalizes the paper's claim (iii): the facet analysis makes the
specialization phase simple enough to compile.

``make_generating_extension(analysis, suite)`` returns a
:class:`GeneratingExtension` whose ``specialize(inputs)`` produces the
same residual programs as :class:`~repro.offline.specializer.
OfflineSpecializer` (a property the test suite checks program-by-
program) but faster — ``benchmarks/bench_cogen.py`` measures the gap.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.lang.ast import (
    Call, Const, Expr, FunDef, If, Let, Prim, Var, count_occurrences)
from repro.lang.errors import EvalError, PEError
from repro.lang.primitives import apply_primitive, fold_would_blow_up
from repro.lang.program import Program
from repro.lang.values import Value, is_value
from repro.lattice.pevalue import PEValue
from repro.facets.vector import FacetSuite, FacetVector
from repro.offline.analysis import (
    AnalysisResult, FOLD, IfAnnotation, PrimAnnotation, TRIGGER)
from repro.online.cache import SpecCache, dynamic_positions, make_key
from repro.online.config import PEConfig, PEStats, UnfoldStrategy
from repro.transform.cleanup import canonical_names, drop_unreachable
from repro.transform.simplify import definitely_total, simplify_program

_RECURSION_LIMIT = 100_000

#: A staged expression: environment and context in, residual pair out.
Staged = Callable[[dict, "_Ctx"], tuple[Expr, FacetVector]]


@dataclass
class _Ctx:
    """Per-specialization mutable state (cache, stats, gensym)."""

    cache: SpecCache
    stats: PEStats
    depth: int = 0
    gensym: int = 0

    def fresh(self, base: str) -> str:
        self.gensym += 1
        return f"{base}!{self.gensym}"


@dataclass(frozen=True)
class GenExtResult:
    """Residual program from one generating-extension run."""

    program: Program
    raw_program: Program
    stats: PEStats
    goal_params: tuple[str, ...]


class GeneratingExtension:
    """A compiled specializer for one program + analysis + suite."""

    def __init__(self, analysis: AnalysisResult, suite: FacetSuite,
                 config: PEConfig | None = None) -> None:
        self.analysis = analysis
        self.program = analysis.program
        self.suite = suite
        self.config = config if config is not None else PEConfig()
        self._facets = {facet.name: facet for facet in suite.facets}
        #: fn name -> staged body closure (compiled on first use to
        #: allow recursion).
        self._compiled: dict[str, Staged] = {}
        self._needed = analysis.needed_facets
        for fundef in self.program.defs:
            self._compiled[fundef.name] = self._compile(
                fundef.body, fundef.name)

    # -- driving ----------------------------------------------------------
    def specialize(self, inputs: Sequence[FacetVector | Value]) \
            -> GenExtResult:
        main = self.program.main
        if len(inputs) != main.arity:
            raise PEError(
                f"{main.name}: expected {main.arity} inputs, "
                f"got {len(inputs)}")
        vectors = [self.suite.const_vector(value) if is_value(value)
                   else value for value in inputs]
        self._check_pattern(vectors)
        needed = self._needed.get(main.name, frozenset())
        env: dict[str, tuple[Expr, FacetVector]] = {}
        goal_params = []
        for param, vector in zip(main.params, vectors):
            vector = self._restrict(vector, needed)
            if vector.pe.is_const:
                env[param] = (Const(vector.pe.constant()), vector)
            else:
                env[param] = (Var(param), vector)
                goal_params.append(param)
        ctx = _Ctx(SpecCache(reserved_names=list(
            self.program.functions())), PEStats())
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, _RECURSION_LIMIT))
        try:
            body, _ = self._compiled[main.name](env, ctx)
        finally:
            sys.setrecursionlimit(old_limit)
        goal = FunDef(main.name, tuple(goal_params), body)
        raw = Program((goal, *ctx.cache.residual_defs()))
        cleaned = raw
        if self.config.simplify:
            cleaned = simplify_program(cleaned)
        if self.config.tidy:
            cleaned = canonical_names(drop_unreachable(cleaned))
        return GenExtResult(cleaned, raw, ctx.stats,
                            tuple(goal_params))

    def _check_pattern(self, vectors: Sequence[FacetVector]) -> None:
        """Inputs must lie at or below the analyzed abstract pattern
        (mirrors the unstaged offline specializer)."""
        if self.config.lenient:
            # Lenient mode accepts off-pattern inputs; broken Static
            # promises residualize instead of folding.
            return
        abstract = [self.analysis.suite.abstract_of_online(v)
                    for v in vectors]
        for i, (given, analyzed) in enumerate(
                zip(abstract, self.analysis.inputs)):
            if not self.analysis.suite.leq(given, analyzed):
                raise PEError(
                    f"input {i} ({given}) does not match the analyzed "
                    f"pattern ({analyzed}); rerun the facet analysis "
                    f"for this division")

    def _restrict(self, vector: FacetVector,
                  needed: frozenset[str]) -> FacetVector:
        facets = self.suite.facets_for(vector.sort)
        if all(facet.name in needed for facet in facets):
            return vector
        user = tuple(component if facet.name in needed
                     else facet.domain.top
                     for facet, component in zip(facets, vector.user))
        return self.suite.make_vector(vector.sort, vector.pe, user)

    # -- compilation --------------------------------------------------------
    def _compile(self, expr: Expr, fn: str) -> Staged:
        """Stage one expression: all annotation dispatch happens here,
        once; the returned closure only executes."""
        if isinstance(expr, Const):
            needed = self._needed.get(fn, frozenset())
            pair = (expr, self._restrict(
                self.suite.const_vector(expr.value), needed))
            return lambda env, ctx: pair
        if isinstance(expr, Var):
            name = expr.name
            return lambda env, ctx: env[name]
        if isinstance(expr, Prim):
            return self._compile_prim(expr, fn)
        if isinstance(expr, If):
            return self._compile_if(expr, fn)
        if isinstance(expr, Let):
            return self._compile_let(expr, fn)
        if isinstance(expr, Call):
            return self._compile_call(expr, fn)
        raise PEError(
            f"higher-order node {type(expr).__name__} reached the "
            f"generating extension")

    def _compile_prim(self, expr: Prim, fn: str) -> Staged:
        compiled_args = [self._compile(a, fn) for a in expr.args]
        annotation = self.analysis.annotation_of(expr)
        op = expr.op
        needed = self._needed.get(fn, frozenset())
        suite = self.suite
        lenient = self.config.lenient

        if isinstance(annotation, PrimAnnotation) \
                and annotation.action == FOLD:
            def fold(env, ctx):
                residual = [c(env, ctx) for c in compiled_args]
                values = []
                for arg_expr, _ in residual:
                    if not isinstance(arg_expr, Const):
                        # Bottom caveat: a static subexpression
                        # errored and was residualized upstream.
                        return self._residual_prim_now(
                            op, residual, fn, ctx)
                    values.append(arg_expr.value)
                if fold_would_blow_up(op, values):
                    return self._residual_prim_now(op, residual, fn,
                                                   ctx)
                try:
                    value = apply_primitive(op, values)
                except EvalError:
                    return self._residual_prim_now(op, residual, fn,
                                                   ctx)
                ctx.stats.facet_evaluations += 1
                ctx.stats.record_fold("pe")
                return (Const(value),
                        self._restrict(suite.const_vector(value),
                                       needed))
            return fold

        if isinstance(annotation, PrimAnnotation) \
                and annotation.action == TRIGGER:
            facet = self._facets.get(annotation.producer or "")

            def trigger(env, ctx):
                residual = [c(env, ctx) for c in compiled_args]
                vectors = [pair[1] for pair in residual]
                outcome = None
                if facet is not None:
                    sig = suite.resolve_sig(op, vectors)
                    if sig is not None:
                        projected = suite.project_args(facet, sig,
                                                        vectors)
                        ctx.stats.facet_evaluations += 1
                        outcome = facet.apply_open(op, sig, projected)
                if outcome is not None and outcome.is_const:
                    ctx.stats.record_fold(facet.name)
                    value = outcome.constant()
                    return (Const(value),
                            self._restrict(suite.const_vector(value),
                                           needed))
                # Bottom caveat (see the FOLD case).
                return self._residual_prim_now(op, residual, fn, ctx)
            return trigger

        def residual_prim(env, ctx):
            residual = [c(env, ctx) for c in compiled_args]
            return self._residual_prim_now(op, residual, fn, ctx)
        return residual_prim

    def _residual_prim_now(self, op: str, residual, fn: str,
                           ctx: _Ctx) -> tuple[Expr, FacetVector]:
        suite = self.suite
        needed = self._needed.get(fn, frozenset())
        vectors = [pair[1] for pair in residual]
        args = tuple(pair[0] for pair in residual)
        sig = suite.resolve_sig(op, vectors)
        residual_expr = Prim(op, args)
        if sig is None:
            return residual_expr, suite.unknown(None)
        if any(suite.is_bottom(v) for v in vectors):
            return residual_expr, suite.bottom(sig.result_sort)
        if sig.is_closed:
            components = []
            for facet in suite.facets_for(sig.carrier):
                if facet.name in needed:
                    projected = suite.project_args(facet, sig,
                                                    vectors)
                    ctx.stats.facet_evaluations += 1
                    components.append(
                        facet.apply_closed(op, sig, projected))
                else:
                    components.append(facet.domain.top)
            vector = suite.smash(suite.make_vector(
                sig.result_sort, PEValue.top(), tuple(components)))
            return residual_expr, vector
        return residual_expr, suite.unknown(sig.result_sort)

    def _compile_if(self, expr: If, fn: str) -> Staged:
        test = self._compile(expr.test, fn)
        then = self._compile(expr.then, fn)
        else_ = self._compile(expr.else_, fn)
        annotation = self.analysis.annotation_of(expr)
        static_test = isinstance(annotation, IfAnnotation) \
            and annotation.test_bt.is_static
        suite = self.suite
        lenient = self.config.lenient

        if static_test:
            def reduce(env, ctx):
                test_expr, _ = test(env, ctx)
                if isinstance(test_expr, Const) \
                        and isinstance(test_expr.value, bool):
                    ctx.stats.if_reductions += 1
                    branch = then if test_expr.value else else_
                    return branch(env, ctx)
                # Bottom caveat: the static test errored upstream.
                return _build_if(test_expr, then(env, ctx),
                                 else_(env, ctx), suite)
            return reduce

        def residual_if(env, ctx):
            test_expr, _ = test(env, ctx)
            return _build_if(test_expr, then(env, ctx),
                             else_(env, ctx), suite)
        return residual_if

    def _compile_let(self, expr: Let, fn: str) -> Staged:
        bound = self._compile(expr.bound, fn)
        body = self._compile(expr.body, fn)
        name = expr.name

        def staged_let(env, ctx):
            bound_pair = bound(env, ctx)
            bound_expr, bound_vector = bound_pair
            if isinstance(bound_expr, (Const, Var)):
                inner = dict(env)
                inner[name] = bound_pair
                return body(inner, ctx)
            fresh = ctx.fresh(name)
            inner = dict(env)
            inner[name] = (Var(fresh), bound_vector)
            body_expr, body_vector = body(inner, ctx)
            if count_occurrences(body_expr, fresh) == 0 \
                    and definitely_total(bound_expr):
                return body_expr, body_vector
            return Let(fresh, bound_expr, body_expr), body_vector
        return staged_let

    def _compile_call(self, expr: Call, fn: str) -> Staged:
        compiled_args = [self._compile(a, fn) for a in expr.args]
        fundef = self.program.get(expr.fn)
        callee = expr.fn
        callee_needed = self._needed.get(callee, frozenset())
        suite = self.suite
        config = self.config
        def staged_call(env, ctx):
            residual = [c(env, ctx) for c in compiled_args]
            vectors = [self._restrict(pair[1], callee_needed)
                       for pair in residual]
            args = [pair[0] for pair in residual]
            ctx.stats.decisions += 1
            # The unfold-or-specialize decision stays a run-time one:
            # individual call sites can be more precise than the
            # analyzed (joined) signature suggests.
            unfold = False
            if config.unfold_strategy is not UnfoldStrategy.NEVER \
                    and ctx.depth < config.unfold_fuel:
                if config.unfold_strategy is UnfoldStrategy.ALWAYS:
                    unfold = True
                else:
                    unfold = any(self._informative(v) for v in vectors)
            if unfold:
                ctx.stats.unfoldings += 1
                return self._unfold(fundef, args, vectors, ctx)
            return self._specialize_call(fundef, args, vectors, ctx)
        return staged_call

    def _informative(self, vector: FacetVector) -> bool:
        if vector.pe.is_const:
            return True
        facets = self.suite.facets_for(vector.sort)
        return any(not facet.domain.leq(facet.domain.top, component)
                   for facet, component in zip(facets, vector.user))

    def _unfold(self, fundef: FunDef, args, vectors,
                ctx: _Ctx) -> tuple[Expr, FacetVector]:
        env: dict[str, tuple[Expr, FacetVector]] = {}
        lets: list[tuple[str, Expr]] = []
        for param, arg_expr, vector in zip(fundef.params, args,
                                           vectors):
            trivial = isinstance(arg_expr, (Const, Var))
            if trivial or count_occurrences(fundef.body, param) <= 1:
                env[param] = (arg_expr, vector)
            else:
                fresh = ctx.fresh(param)
                lets.append((fresh, arg_expr))
                env[param] = (Var(fresh), vector)
        ctx.depth += 1
        try:
            body_expr, body_vector = self._compiled[fundef.name](env,
                                                                 ctx)
        finally:
            ctx.depth -= 1
        for fresh, bound in reversed(lets):
            if count_occurrences(body_expr, fresh) == 0 \
                    and definitely_total(bound):
                continue
            body_expr = Let(fresh, bound, body_expr)
        return body_expr, body_vector

    def _specialize_call(self, fundef: FunDef, args, vectors,
                         ctx: _Ctx) -> tuple[Expr, FacetVector]:
        variants = ctx.cache.variants_of(fundef.name)
        rung = 0
        if variants >= 2 * self.config.max_variants:
            if not self.config.lenient:
                raise PEError(
                    f"{fundef.name}: too many specialization "
                    f"variants; re-analyze with a generalized "
                    f"division or set PEConfig(lenient=True)")
            rung = 2
            ctx.stats.generalizations += 1
            vectors = [self.suite.unknown(v.sort) for v in vectors]
        elif variants >= self.config.max_variants:
            rung = 1
            ctx.stats.generalizations += 1
            vectors = [self.suite.unknown(v.sort) if not v.pe.is_const
                       else v for v in vectors]
        key = make_key(self.suite, fundef.name, vectors, rung)
        positions = dynamic_positions(vectors, rung)
        entry = ctx.cache.lookup(key)
        if entry is None:
            entry = ctx.cache.register(
                key, fundef.name, positions,
                tuple(fundef.params[i] for i in positions))
            ctx.stats.specializations += 1
            env: dict[str, tuple[Expr, FacetVector]] = {}
            for i, (param, vector) in enumerate(
                    zip(fundef.params, vectors)):
                if i in positions:
                    env[param] = (Var(param), vector)
                else:
                    env[param] = (Const(vector.pe.constant()), vector)
            saved_depth = ctx.depth
            ctx.depth = 0
            try:
                body_expr, _ = self._compiled[fundef.name](env, ctx)
            finally:
                ctx.depth = saved_depth
            ctx.cache.finish(
                entry, FunDef(entry.name, entry.params, body_expr))
        else:
            ctx.stats.cache_hits += 1
        call_args = tuple(args[i] for i in entry.dynamic_positions)
        return Call(entry.name, call_args), self.suite.unknown(None)


def _build_if(test_expr: Expr, then_pair, else_pair,
              suite: FacetSuite) -> tuple[Expr, FacetVector]:
    then_expr, then_vector = then_pair
    else_expr, else_vector = else_pair
    return (If(test_expr, then_expr, else_expr),
            suite.join(then_vector, else_vector))


def make_generating_extension(analysis: AnalysisResult,
                              suite: FacetSuite,
                              config: PEConfig | None = None) \
        -> GeneratingExtension:
    """Compile the analyzed program into its generating extension."""
    return GeneratingExtension(analysis, suite, config)
