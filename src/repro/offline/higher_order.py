"""Higher-order facet analysis — Figures 5 and 6, Section 5.5.

The abstract value domain becomes ``AV = S~D + (AV^n -> AV)``: an
expression's abstract value is either a first-order abstract vector or
an *abstract function*.  Three ingredients from the paper:

* **Abstract closures.**  ``lambda`` evaluates to an abstract closure
  over the abstract environment; application evaluates the body.  Named
  top-level functions referenced first-class become closures too.
* **The unknown operator ``T_C``.**  When a conditional with a Dynamic
  test would return a function, the analysis cannot know which, so it
  returns the top operator ``T_C`` — and, because those functions will
  then never be applied during specialization, it applies each branch's
  function to *appropriate strongest* (all-top) arguments "in advance"
  so their bodies still contribute facet signatures (Figure 6's
  conditional rule).  The same advance-application happens when an
  application is discarded because an argument is Dynamic.
* **Termination.**  The paper adopts Hudak and Young's restriction to
  functions of bounded order/depth.  Operationally we bound the nesting
  depth of abstract applications and the number of distinct argument
  patterns memoized per closure; past either bound, arguments are
  generalized to top.  Recursion through closures is resolved by a
  worklist fixpoint over memo cells, the same engine as the first-order
  analysis.

The result carries facet signatures for every *named* function (the
``SigEnv`` of Figure 6) plus binding times for the goal expression —
enough for an offline specializer front-end and for the Section 5.5
benchmarks.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence, Union

from repro.lang.ast import (
    App, Call, Const, Expr, FunDef, If, Lam, Let, Prim, Var)
from repro.lang.errors import PEError
from repro.lang.program import Program
from repro.lang.values import Value, is_value
from repro.lattice.bt import BT
from repro.lattice.core import Lattice
from repro.lattice.fixpoint import FixpointStats, WorklistSolver
from repro.facets.abstract.vector import AbstractSuite, AbstractVector
from repro.facets.vector import FacetSuite

_RECURSION_LIMIT = 100_000


@dataclass(frozen=True)
class TopFn:
    """``T_C``: the unknown operator — top of the functional summand."""

    def __str__(self) -> str:
        return "T_C"


TC = TopFn()


@dataclass(frozen=True)
class AbsClosure:
    """An abstract function value.

    ``code`` identifies the lambda node or named function; ``env`` is
    the captured abstract environment (sorted name/value pairs, which
    makes closures hashable and memoizable); ``params``/``body`` drive
    application.
    """

    code: str
    params: tuple[str, ...]
    body: Expr = field(compare=False, hash=False)
    env: tuple[tuple[str, "AV"], ...]

    @property
    def arity(self) -> int:
        return len(self.params)

    def __str__(self) -> str:
        return f"<absfun {self.code}/{self.arity}>"


@dataclass(frozen=True)
class JoinFn:
    """The pointwise least upper bound of same-arity abstract functions
    (the ``lub`` of Section 5.5)."""

    members: tuple[AbsClosure, ...]

    @property
    def arity(self) -> int:
        return self.members[0].arity

    def __str__(self) -> str:
        inner = " | ".join(str(m) for m in self.members)
        return f"<{inner}>"


AV = Union[AbstractVector, AbsClosure, JoinFn, TopFn]


@dataclass(frozen=True)
class HOConfig:
    """Hudak-Young style termination bounds."""

    max_apply_depth: int = 64
    max_cells_per_closure: int = 16
    max_iterations: int = 1_000


@dataclass
class HOAnalysisResult:
    """Signatures and per-expression values for a higher-order program."""

    program: Program
    suite: AbstractSuite
    inputs: tuple[AV, ...]
    #: fn -> (argument AVs joined over call sites, result AV).
    signatures: dict[str, tuple[tuple[AV, ...], AV]]
    #: id(expr) -> AV for nodes of the goal function's body.
    expr_values: dict[int, AV]
    result: AV
    stats: FixpointStats

    def bt_of_result(self) -> BT:
        if isinstance(self.result, AbstractVector):
            return self.result.bt
        return BT.DYNAMIC


class _AVLattice(Lattice):
    """Lattice structure on ``AV`` for the memo fixpoint."""

    name = "AV"

    def __init__(self, suite: AbstractSuite) -> None:
        self.suite = suite

    @property
    def bottom(self) -> AV:
        return self.suite.bottom(None)

    @property
    def top(self) -> AV:
        return TC

    def leq(self, left: AV, right: AV) -> bool:
        if isinstance(right, TopFn):
            return True
        if isinstance(left, TopFn):
            return False
        if isinstance(left, AbstractVector) \
                and isinstance(right, AbstractVector):
            return self.suite.leq(left, right)
        if isinstance(left, AbstractVector):
            # A bottom vector is the global bottom of AV.
            return self.suite.is_bottom(left)
        if isinstance(right, AbstractVector):
            return False
        return frozenset(_members(left)) <= frozenset(_members(right))

    def join(self, left: AV, right: AV) -> AV:
        if isinstance(left, TopFn) or isinstance(right, TopFn):
            return TC
        if isinstance(left, AbstractVector) \
                and isinstance(right, AbstractVector):
            return self.suite.join(left, right)
        if isinstance(left, AbstractVector):
            return right if self.suite.is_bottom(left) else TC
        if isinstance(right, AbstractVector):
            return left if self.suite.is_bottom(right) else TC
        members = tuple(dict.fromkeys(_members(left) + _members(right)))
        if len({m.arity for m in members}) != 1:
            return TC  # the paper's err/T_C case for arity clashes
        if len(members) == 1:
            return members[0]
        return JoinFn(members)

    def is_enumerable(self) -> bool:
        return False

    def contains(self, element: AV) -> bool:
        return isinstance(element, (AbstractVector, AbsClosure, JoinFn,
                                    TopFn))


def _members(value: AbsClosure | JoinFn) -> tuple[AbsClosure, ...]:
    if isinstance(value, JoinFn):
        return value.members
    return (value,)


class HigherOrderAnalyzer:
    """Figures 5-6 for one program and abstract suite."""

    def __init__(self, program: Program,
                 suite: FacetSuite | AbstractSuite | None = None,
                 config: HOConfig | None = None) -> None:
        program.validate()
        self.program = program
        self.functions = program.functions()
        if suite is None:
            suite = AbstractSuite(FacetSuite())
        elif isinstance(suite, FacetSuite):
            suite = AbstractSuite(suite)
        self.suite = suite
        self.config = config if config is not None else HOConfig()
        self.stats = FixpointStats()
        self._lattice = _AVLattice(suite)
        self._cells_per_closure: dict[str, set[Hashable]] = {}
        #: fn -> (joined args, joined result); the SigEnv pi.
        self._signatures: dict[str, tuple[tuple[AV, ...], AV]] = {}
        self._solver: WorklistSolver | None = None
        self._advance_applied: set[Hashable] = set()

    # -- entry point ---------------------------------------------------------
    def analyze(self, inputs: Sequence[AV | Value]) -> HOAnalysisResult:
        main = self.program.main
        if len(inputs) != main.arity:
            raise PEError(
                f"{main.name}: expected {main.arity} inputs, "
                f"got {len(inputs)}")
        input_avs: tuple[AV, ...] = tuple(
            self.suite.const_vector(value) if is_value(value) else value
            for value in inputs)

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, _RECURSION_LIMIT))
        try:
            return self._analyze(input_avs)
        finally:
            sys.setrecursionlimit(old_limit)

    def _analyze(self, inputs: tuple[AV, ...]) -> HOAnalysisResult:
        solver = WorklistSolver(self._lattice, self._cell_equation)
        self._solver = solver
        main = self.program.main
        goal = self._closure_of(main)
        root = ("apply", goal, inputs)
        for _ in range(self.config.max_iterations):
            self.stats.iterations += 1
            before = dict(solver.values)
            solver.ask(root)
            solver.drain()
            if dict(solver.values) == before and \
                    solver.values.get(root) is not None:
                break
        result = solver.values.get(root, self._lattice.bottom)
        self._record_signature(main.name, inputs, result)

        # Final recording pass over the goal body for expression values.
        expr_values: dict[int, AV] = {}
        env = dict(zip(main.params, inputs))
        self._eval(main.body, env, depth=0, record=expr_values)
        solver.drain()

        self.stats.evaluations = solver.stats.evaluations
        return HOAnalysisResult(self.program, self.suite, inputs,
                                dict(self._signatures), expr_values,
                                result, self.stats)

    # -- closures --------------------------------------------------------------
    def _closure_of(self, fundef: FunDef) -> AbsClosure:
        return AbsClosure(fundef.name, fundef.params, fundef.body, ())

    def _lambda_closure(self, expr: Lam,
                        env: Mapping[str, AV]) -> AbsClosure:
        free = sorted(set(env) & _free_vars_cached(expr))
        captured = tuple((name, env[name]) for name in free)
        return AbsClosure(f"lam@{id(expr):x}", expr.params, expr.body,
                          captured)

    # -- the memoized application fixpoint ---------------------------------------
    def _cell_equation(self, solver: WorklistSolver,
                       cell: Hashable) -> AV:
        _tag, closure, args = cell
        env = dict(closure.env)
        env.update(zip(closure.params, args))
        return self._eval(closure.body, env, depth=0, record=None)

    def _apply(self, fn: AV, args: tuple[AV, ...], depth: int,
               record: dict[int, AV] | None) -> AV:
        if isinstance(fn, TopFn):
            return TC
        if isinstance(fn, AbstractVector):
            if self.suite.is_bottom(fn):
                # "No information yet" mid-fixpoint: stay bottom so the
                # ascending iteration can still reach the precise value.
                return self._lattice.bottom
            # Applying a proper first-order value is a program error;
            # be conservative.
            return self.suite.dynamic(None)
        results: list[AV] = []
        for member in _members(fn):
            if member.arity != len(args):
                results.append(TC)
                continue
            results.append(self._apply_one(member, args, depth, record))
        out: AV = self._lattice.bottom
        for r in results:
            out = self._lattice.join(out, r)
        return out

    def _apply_one(self, closure: AbsClosure, args: tuple[AV, ...],
                   depth: int, record: dict[int, AV] | None) -> AV:
        if depth >= self.config.max_apply_depth:
            return TC
        args = self._bound_cell(closure, args)
        cell = ("apply", closure, args)
        assert self._solver is not None
        if record is not None:
            # Recording pass: evaluate inline so subexpression values of
            # the *goal* body are captured; memoized cells cover the
            # rest.
            value = self._solver.ask(cell)
            result = self._record_result(closure, args, value)
            return result
        value = self._solver.ask(cell)
        return self._record_result(closure, args, value)

    def _record_result(self, closure: AbsClosure, args: tuple[AV, ...],
                       value: AV) -> AV:
        if closure.code in self.functions:
            self._record_signature(closure.code, args, value)
        return value

    def _bound_cell(self, closure: AbsClosure,
                    args: tuple[AV, ...]) -> tuple[AV, ...]:
        cells = self._cells_per_closure.setdefault(closure.code, set())
        key = args
        if key not in cells and \
                len(cells) >= self.config.max_cells_per_closure:
            key = tuple(self._generalize(a) for a in args)
        cells.add(key)
        return key

    def _generalize(self, value: AV) -> AV:
        if isinstance(value, AbstractVector):
            return self.suite.dynamic(value.sort)
        return TC

    def _record_signature(self, name: str, args: tuple[AV, ...],
                          result: AV) -> None:
        old = self._signatures.get(name)
        if old is None:
            self._signatures[name] = (args, result)
            return
        old_args, old_result = old
        joined = tuple(self._lattice.join(o, n)
                       for o, n in zip(old_args, args))
        self._signatures[name] = (joined,
                                  self._lattice.join(old_result, result))

    # -- E~ ------------------------------------------------------------------------
    def _eval(self, expr: Expr, env: Mapping[str, AV], depth: int,
              record: dict[int, AV] | None) -> AV:
        value = self._eval_node(expr, env, depth, record)
        if record is not None:
            previous = record.get(id(expr))
            record[id(expr)] = value if previous is None \
                else self._lattice.join(previous, value)
        return value

    def _eval_node(self, expr: Expr, env: Mapping[str, AV], depth: int,
                   record: dict[int, AV] | None) -> AV:
        if isinstance(expr, Const):
            return self.suite.const_vector(expr.value)
        if isinstance(expr, Var):
            value = env.get(expr.name)
            if value is not None:
                return value
            fundef = self.functions.get(expr.name)
            if fundef is not None:
                return self._closure_of(fundef)
            raise PEError(f"unbound variable {expr.name!r}")
        if isinstance(expr, Prim):
            args = [self._eval(a, env, depth, record) for a in expr.args]
            vectors = [a if isinstance(a, AbstractVector)
                       else self.suite.dynamic(None) for a in args]
            return self.suite.apply_prim(expr.op, vectors).vector
        if isinstance(expr, If):
            return self._eval_if(expr, env, depth, record)
        if isinstance(expr, Let):
            bound = self._eval(expr.bound, env, depth, record)
            inner = dict(env)
            inner[expr.name] = bound
            return self._eval(expr.body, inner, depth, record)
        if isinstance(expr, Lam):
            return self._lambda_closure(expr, env)
        if isinstance(expr, Call):
            fundef = self.functions[expr.fn]
            args = tuple(self._eval(a, env, depth, record)
                         for a in expr.args)
            return self._apply_site(self._closure_of(fundef), args,
                                    depth, record)
        if isinstance(expr, App):
            fn = self._eval(expr.fn, env, depth, record)
            args = tuple(self._eval(a, env, depth, record)
                         for a in expr.args)
            return self._apply_site(fn, args, depth, record)
        raise PEError(f"unknown expression node {expr!r}")

    def _eval_if(self, expr: If, env: Mapping[str, AV], depth: int,
                 record: dict[int, AV] | None) -> AV:
        test = self._eval(expr.test, env, depth, record)
        then = self._eval(expr.then, env, depth, record)
        else_ = self._eval(expr.else_, env, depth, record)
        if isinstance(test, AbstractVector) and self.suite.is_bottom(test):
            return self._lattice.bottom
        static_test = isinstance(test, AbstractVector) \
            and test.bt.is_static
        joined = self._lattice.join(then, else_)
        if static_test:
            return joined
        if isinstance(joined, AbstractVector):
            if self.suite.is_bottom(joined):
                return joined
            return AbstractVector(joined.sort, BT.DYNAMIC, joined.user)
        # Dynamic test selecting among functions: the result is T_C and
        # the branch functions will never be applied at specialization
        # time — apply them to strongest arguments "in advance" so their
        # bodies still contribute signatures (Figure 6).
        for branch in (then, else_):
            self._advance_apply(branch, depth)
        return TC

    def _apply_site(self, fn: AV, args: tuple[AV, ...], depth: int,
                    record: dict[int, AV] | None) -> AV:
        dynamic_arg = any(isinstance(a, AbstractVector)
                          and a.bt.is_dynamic for a in args)
        result = self._apply(fn, args, depth + 1, record)
        if not dynamic_arg:
            return result
        # Figure 5's call rule: a Dynamic argument coarsens the result;
        # a functional result cannot be applied at specialization time,
        # so it degrades to T_C (and gets advance-applied, Figure 6).
        if isinstance(result, AbstractVector):
            if self.suite.is_bottom(result):
                return result
            return self.suite.dynamic(result.sort)
        self._advance_apply(result, depth)
        return TC

    def _advance_apply(self, value: AV, depth: int) -> None:
        if not isinstance(value, (AbsClosure, JoinFn)):
            return
        for member in _members(value):
            key = ("advance", member)
            if key in self._advance_applied:
                continue
            self._advance_applied.add(key)
            tops = tuple(TC if _looks_functional(member, i)
                         else self.suite.dynamic(None)
                         for i in range(member.arity))
            self._apply_one(member, tops, depth + 1, record=None)


def _looks_functional(closure: AbsClosure, index: int) -> bool:
    """Heuristic for the "appropriate strongest element": a parameter
    that appears in operator position gets ``T_C``, anything else the
    dynamic vector."""
    param = closure.params[index]
    stack = [closure.body]
    while stack:
        node = stack.pop()
        if isinstance(node, App) and isinstance(node.fn, Var) \
                and node.fn.name == param:
            return True
        stack.extend(node.children())
    return False


def _free_vars_cached(expr: Lam) -> frozenset[str]:
    # No id()-keyed caching here: ids are reused after garbage
    # collection and a stale entry would capture the wrong environment.
    from repro.lang.ast import free_vars
    return free_vars(expr)


def analyze_higher_order(program: Program,
                         inputs: Sequence[AV | Value],
                         suite: FacetSuite | AbstractSuite | None = None,
                         config: HOConfig | None = None) \
        -> HOAnalysisResult:
    """One-shot higher-order facet analysis (Figures 5-6)."""
    return HigherOrderAnalyzer(program, suite, config).analyze(inputs)
