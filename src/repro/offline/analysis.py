"""Facet analysis — Figure 4 of the paper.

A generalized binding-time analysis: given abstract facet values for the
goal function's parameters (e.g. ``<Dynamic, s>`` — dynamic vectors of
static size), compute for every function its *facet signature* in
``S~D^{n+1}`` — an abstract vector per parameter plus one for the result
— and, for every expression, the abstract vector it evaluates to.

The implementation follows the figure's two cooperating valuation
functions:

* ``E~`` (here :meth:`FacetAnalyzer._eval`) computes the abstract value
  of an expression; calls go through the abstract function environment
  ``zeta``, realized as a worklist fixpoint over ``(function, abstract
  arguments)`` cells (:class:`~repro.lattice.fixpoint.WorklistSolver`).
  Per the figure, a call with any Dynamic-binding-time argument is
  approximated by ``(Dynamic, T, ..., T)`` without consulting ``zeta``.
* ``A~`` (signature collection) records each call site's argument
  vectors into the signature environment ``pi``; the global fixpoint
  ``h`` re-analyzes every function under its joined signature until
  nothing grows.

Termination: every shipped abstract domain has finite height except
facets derived from infinite-height online domains (the interval
facet); when the suite reports :meth:`needs_widening`, joins in ``pi``
and ``zeta`` widen (footnote 1), and the number of distinct ``zeta``
cells per function is capped, generalizing past the cap.

After convergence a final recording pass fills two tables the offline
specializer and the Figure 9 report consume: per-expression abstract
vectors, and per-node *annotations* saying what the specializer may do
at that node (fold, trigger facet ``j``'s open operator, reduce this
conditional, ...).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.lang.ast import (
    App, Call, Const, Expr, FunDef, If, Lam, Let, Prim, Var)
from repro.lang.errors import PEError
from repro.lang.program import Program, is_first_order
from repro.lang.values import Value, is_value
from repro.lattice.bt import BT
from repro.lattice.core import Lattice
from repro.lattice.fixpoint import FixpointStats, WorklistSolver
from repro.facets.abstract.vector import (
    AbstractOutcome, AbstractSuite, AbstractVector)
from repro.facets.vector import FacetSuite

_RECURSION_LIMIT = 100_000


@dataclass(frozen=True)
class AnalysisConfig:
    """Tunables of the analysis fixpoint."""

    #: Cap on distinct ``zeta`` cells per function before argument
    #: generalization (only matters for infinite abstract domains).
    max_cells_per_function: int = 32
    #: Cap on global ``h`` iterations (safety net; finite-height domains
    #: converge long before).
    max_iterations: int = 1_000


@dataclass(frozen=True)
class Signature:
    """One function's facet signature: ``S~D^{n+1}``."""

    args: tuple[AbstractVector, ...]
    result: AbstractVector

    def __str__(self) -> str:
        rendered = " x ".join(str(a) for a in self.args)
        return f"{rendered} -> {self.result}"


# -- annotations consumed by the offline specializer -----------------------

#: Primitive actions.
FOLD = "fold"          # all arguments Static: evaluate concretely
TRIGGER = "trigger"    # facet ``producer`` will yield the constant
RESIDUAL = "residual"  # keep the primitive residual


@dataclass(frozen=True)
class PrimAnnotation:
    action: str
    producer: str | None
    vector: AbstractVector


@dataclass(frozen=True)
class IfAnnotation:
    #: Binding time of the test: Static means the specializer reduces
    #: this conditional.
    test_bt: BT
    vector: AbstractVector


@dataclass(frozen=True)
class CallAnnotation:
    fn: str
    #: Abstract argument vectors at this site (joined over iterations).
    args: tuple[AbstractVector, ...]
    vector: AbstractVector


@dataclass
class AnalysisResult:
    """Everything the facet analysis learned."""

    program: Program
    suite: AbstractSuite
    inputs: tuple[AbstractVector, ...]
    signatures: dict[str, Signature]
    #: ``id(expr) -> AbstractVector`` for every analyzed node.
    expr_values: dict[int, AbstractVector]
    #: ``id(expr) -> PrimAnnotation | IfAnnotation | CallAnnotation``.
    annotations: dict[int, object]
    #: Per function, the facets whose values the specializer must track
    #: (transitively closed over calls) — the paper's observation that
    #: "size facet computation is only required for iprod".
    needed_facets: dict[str, frozenset[str]]
    stats: FixpointStats

    def value_of(self, expr: Expr) -> AbstractVector:
        return self.expr_values[id(expr)]

    def annotation_of(self, expr: Expr) -> object | None:
        return self.annotations.get(id(expr))


class _VectorLattice(Lattice):
    """Adapter exposing an :class:`AbstractSuite`'s vectors as a lattice
    (for the worklist solver); elements may also be tuples of vectors."""

    name = "S~D"

    def __init__(self, suite: AbstractSuite) -> None:
        self.suite = suite

    @property
    def bottom(self):
        return self.suite.bottom(None)

    @property
    def top(self):
        return self.suite.dynamic(None)

    def leq(self, left, right) -> bool:
        return self.suite.leq(left, right)

    def join(self, left, right):
        return self.suite.join(left, right)

    def widen(self, previous, new):
        return self.suite.widen(previous, new)

    def is_enumerable(self) -> bool:
        return False

    def contains(self, element) -> bool:
        return isinstance(element, AbstractVector)


class FacetAnalyzer:
    """Figure 4's ``M~`` for one program and abstract suite."""

    def __init__(self, program: Program,
                 suite: FacetSuite | AbstractSuite | None = None,
                 config: AnalysisConfig | None = None) -> None:
        program.validate()
        if not is_first_order(program):
            raise PEError(
                "Figure 4's facet analysis is first-order; use "
                "repro.offline.higher_order for this program")
        self.program = program
        self.functions = program.functions()
        if suite is None:
            suite = AbstractSuite(FacetSuite())
        elif isinstance(suite, FacetSuite):
            suite = AbstractSuite(suite)
        self.suite = suite
        self.config = config if config is not None else AnalysisConfig()
        self.stats = FixpointStats()
        self._lattice = _VectorLattice(suite)
        self._widen = suite.needs_widening()
        self._cells_per_fn: dict[str, set[Hashable]] = {}
        self._general_args: dict[str, tuple[AbstractVector, ...]] = {}

    # -- entry point ---------------------------------------------------------
    def analyze(self, inputs: Sequence[AbstractVector | Value]) \
            -> AnalysisResult:
        main = self.program.main
        if len(inputs) != main.arity:
            raise PEError(
                f"{main.name}: expected {main.arity} inputs, "
                f"got {len(inputs)}")
        input_vectors = tuple(
            self.suite.const_vector(value) if is_value(value) else value
            for value in inputs)

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, _RECURSION_LIMIT))
        try:
            return self._analyze(input_vectors)
        finally:
            sys.setrecursionlimit(old_limit)

    def _analyze(self, inputs: tuple[AbstractVector, ...]) \
            -> AnalysisResult:
        solver = WorklistSolver(self._lattice, self._zeta_equation,
                                use_widening=self._widen)

        # The global fixpoint ``h``: argument signatures per function.
        arg_sigs: dict[str, tuple[AbstractVector, ...]] = {
            self.program.main.name: inputs}
        for _ in range(self.config.max_iterations):
            self.stats.iterations += 1
            pending: dict[str, tuple[AbstractVector, ...]] = {}
            for name, args in list(arg_sigs.items()):
                fundef = self.functions[name]
                env = dict(zip(fundef.params, args))
                self._eval(fundef.body, env, solver,
                           record=None, callsites=pending)
            # Settle the abstract function environment ``zeta`` before
            # judging convergence: growing cell values destabilize the
            # signatures just like growing argument patterns do.
            changed = solver.drain() > 0
            for name, args in pending.items():
                old = arg_sigs.get(name)
                if old is None:
                    arg_sigs[name] = args
                    changed = True
                    continue
                merged = tuple(self._merge(o, n)
                               for o, n in zip(old, args))
                if any(not self.suite.leq(m, o)
                       for m, o in zip(merged, old)):
                    arg_sigs[name] = merged
                    changed = True
            if not changed:
                break
        else:
            raise PEError("facet analysis did not converge; "
                          "raise AnalysisConfig.max_iterations")

        # Final recording pass: expression values and annotations.
        solver.drain()
        expr_values: dict[int, AbstractVector] = {}
        annotations: dict[int, object] = {}
        signatures: dict[str, Signature] = {}
        recorder = (expr_values, annotations)
        for name, args in arg_sigs.items():
            fundef = self.functions[name]
            env = dict(zip(fundef.params, args))
            result = self._eval(fundef.body, env, solver,
                                record=recorder, callsites={})
            signatures[name] = Signature(args, result)

        needed = self._compute_needed_facets(signatures, annotations)
        self.stats.evaluations += solver.stats.evaluations
        return AnalysisResult(self.program, self.suite, inputs,
                              signatures, expr_values, annotations,
                              needed, self.stats)

    def _merge(self, old: AbstractVector,
               new: AbstractVector) -> AbstractVector:
        if self._widen:
            return self.suite.widen(old, new)
        return self.suite.join(old, new)

    # -- zeta: the abstract function environment -------------------------------
    def _zeta_equation(self, solver: WorklistSolver,
                       cell: Hashable) -> AbstractVector:
        name, args = cell
        fundef = self.functions[name]
        env = dict(zip(fundef.params, args))
        return self._eval(fundef.body, env, solver,
                          record=None, callsites={})

    def _zeta_ask(self, solver: WorklistSolver, name: str,
                  args: tuple[AbstractVector, ...]) -> AbstractVector:
        cells = self._cells_per_fn.setdefault(name, set())
        key = (name, args)
        if key not in cells and \
                len(cells) >= self.config.max_cells_per_function:
            # Generalize: collapse excess variants into one widened cell.
            general = self._general_args.get(name)
            if general is None:
                general = tuple(self.suite.dynamic(a.sort) for a in args)
            else:
                general = tuple(self._merge(g, a)
                                for g, a in zip(general, args))
            self._general_args[name] = general
            key = (name, general)
        cells.add(key)
        return solver.ask(key)

    # -- E~: abstract evaluation ------------------------------------------------
    def _eval(self, expr: Expr, env: Mapping[str, AbstractVector],
              solver: WorklistSolver,
              record: tuple[dict, dict] | None,
              callsites: dict[str, tuple[AbstractVector, ...]]) \
            -> AbstractVector:
        value = self._eval_node(expr, env, solver, record, callsites)
        if record is not None:
            expr_values, _ = record
            previous = expr_values.get(id(expr))
            expr_values[id(expr)] = value if previous is None \
                else self.suite.join(previous, value)
        return value

    def _eval_node(self, expr: Expr,
                   env: Mapping[str, AbstractVector],
                   solver: WorklistSolver,
                   record: tuple[dict, dict] | None,
                   callsites: dict[str, tuple[AbstractVector, ...]]) \
            -> AbstractVector:
        if isinstance(expr, Const):
            return self.suite.const_vector(expr.value)
        if isinstance(expr, Var):
            vector = env.get(expr.name)
            if vector is None:
                raise PEError(f"unbound variable {expr.name!r} during "
                              f"analysis")
            return vector
        if isinstance(expr, Prim):
            args = [self._eval(a, env, solver, record, callsites)
                    for a in expr.args]
            outcome = self.suite.apply_prim(expr.op, args)
            if record is not None:
                self._annotate_prim(record[1], expr, outcome)
            return outcome.vector
        if isinstance(expr, If):
            test = self._eval(expr.test, env, solver, record, callsites)
            then = self._eval(expr.then, env, solver, record, callsites)
            else_ = self._eval(expr.else_, env, solver, record,
                               callsites)
            if record is not None:
                record[1][id(expr)] = IfAnnotation(
                    test.bt, self._if_vector(test, then, else_))
            return self._if_vector(test, then, else_)
        if isinstance(expr, Let):
            bound = self._eval(expr.bound, env, solver, record,
                               callsites)
            inner = dict(env)
            inner[expr.name] = bound
            return self._eval(expr.body, inner, solver, record,
                              callsites)
        if isinstance(expr, Call):
            args = tuple(self._eval(a, env, solver, record, callsites)
                         for a in expr.args)
            old = callsites.get(expr.fn)
            callsites[expr.fn] = args if old is None else tuple(
                self._merge(o, n) for o, n in zip(old, args))
            result = self._call_result(expr.fn, args, solver)
            if record is not None:
                record[1][id(expr)] = CallAnnotation(expr.fn, args,
                                                     result)
            return result
        raise PEError(
            f"higher-order node {type(expr).__name__} reached the "
            f"first-order analysis")

    def _if_vector(self, test: AbstractVector, then: AbstractVector,
                   else_: AbstractVector) -> AbstractVector:
        """Figure 4's conditional rule."""
        if self.suite.is_bottom(test):
            return self.suite.bottom(None)
        joined = self.suite.join(then, else_)
        if test.bt.is_static:
            return joined
        if self.suite.is_bottom(joined):
            return self.suite.bottom(joined.sort)
        # Dynamic test: the value is residual even if both branches are
        # static — force the binding time to Dynamic, keep facet joins.
        return AbstractVector(joined.sort, BT.DYNAMIC, joined.user)

    def _call_result(self, name: str,
                     args: tuple[AbstractVector, ...],
                     solver: WorklistSolver) -> AbstractVector:
        """Figure 4's call rule: any Dynamic argument short-circuits to
        ``(Dynamic, T, ..., T)``; otherwise ask ``zeta``."""
        if any(self.suite.is_bottom(a) for a in args):
            return self.suite.bottom(None)
        if any(a.bt.is_dynamic for a in args):
            return self.suite.dynamic(None)
        return self._zeta_ask(solver, name, args)

    # -- annotations ------------------------------------------------------------
    def _annotate_prim(self, annotations: dict, expr: Prim,
                       outcome: AbstractOutcome) -> None:
        if outcome.static and outcome.producer == "bt":
            annotation = PrimAnnotation(FOLD, None, outcome.vector)
        elif outcome.static:
            annotation = PrimAnnotation(TRIGGER, outcome.producer,
                                        outcome.vector)
        else:
            annotation = PrimAnnotation(RESIDUAL, None, outcome.vector)
        previous = annotations.get(id(expr))
        if isinstance(previous, PrimAnnotation) \
                and previous.action != annotation.action:
            # Joined over contexts a node can only get *less* static.
            annotation = PrimAnnotation(
                RESIDUAL, None,
                self.suite.join(previous.vector, annotation.vector))
        annotations[id(expr)] = annotation

    def _compute_needed_facets(self, signatures: dict[str, Signature],
                               annotations: dict[int, object]) \
            -> dict[str, frozenset[str]]:
        """Which facets must the offline specializer track per function?

        A facet is needed where one of its open operators triggers, and
        transitively in every caller that has to pass its values down.
        """
        own: dict[str, set[str]] = {}
        calls: dict[str, set[str]] = {}
        for name in signatures:
            fundef = self.functions[name]
            producers: set[str] = set()
            callees: set[str] = set()
            stack: list[Expr] = [fundef.body]
            while stack:
                node = stack.pop()
                stack.extend(node.children())
                annotation = annotations.get(id(node))
                if isinstance(annotation, PrimAnnotation) \
                        and annotation.action == TRIGGER \
                        and annotation.producer:
                    producers.add(annotation.producer)
                if isinstance(node, Call):
                    callees.add(node.fn)
            own[name] = producers
            calls[name] = callees

        needed = {name: set(facets) for name, facets in own.items()}
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                for callee in callees:
                    extra = needed.get(callee, set()) - needed[name]
                    if extra:
                        needed[name] |= extra
                        changed = True
        return {name: frozenset(facets)
                for name, facets in needed.items()}


def analyze(program: Program,
            inputs: Sequence[AbstractVector | Value],
            suite: FacetSuite | AbstractSuite | None = None,
            config: AnalysisConfig | None = None) -> AnalysisResult:
    """One-shot facet analysis (Figure 4)."""
    return FacetAnalyzer(program, suite, config).analyze(inputs)
