"""Rendering facet-analysis results — the Figure 9 table.

Figure 9 of the paper shows, for the inner-product program, the abstract
facet values the analysis attached to the main expressions (parameters,
the ``vsize`` call, the test, the ``vref`` calls, ...).  This module
regenerates that presentation for any analyzed program: structured rows
via :func:`analysis_rows`, the formatted two-column table via
:func:`facet_table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.lang.ast import Call, Expr, If, Prim, walk
from repro.lang.pretty import pretty
from repro.offline.analysis import AnalysisResult, IfAnnotation, \
    PrimAnnotation, Signature

#: Abbreviations used by the paper's figure.
_SHORT = {"Static": "Stat", "Dynamic": "Dyn"}


@dataclass(frozen=True)
class Row:
    """One line of the report."""

    function: str
    kind: str           # "param" | "prim" | "call" | "if-test"
    code: str
    value: str
    detail: str = ""


def _short(text: str) -> str:
    for long, short in _SHORT.items():
        text = text.replace(long, short)
    return text


def analysis_rows(analysis: AnalysisResult,
                  max_code_width: int = 40) -> list[Row]:
    """Structured per-expression facet values, function by function."""
    rows: list[Row] = []
    for name, signature in analysis.signatures.items():
        fundef = analysis.program.get(name)
        for param, vector in zip(fundef.params, signature.args):
            rows.append(Row(name, "param", param, _short(str(vector))))
        for node in walk(fundef.body):
            rows.extend(_node_rows(analysis, name, node,
                                   max_code_width))
    return rows


def _node_rows(analysis: AnalysisResult, function: str, node: Expr,
               width: int) -> Iterator[Row]:
    value = analysis.expr_values.get(id(node))
    if value is None:
        return
    code = pretty(node)
    if len(code) > width:
        code = code[:width - 3] + "..."
    if isinstance(node, Prim):
        annotation = analysis.annotation_of(node)
        detail = ""
        if isinstance(annotation, PrimAnnotation):
            detail = annotation.action
            if annotation.producer:
                detail += f" via {annotation.producer}"
        yield Row(function, "prim", code, _short(str(value)), detail)
    elif isinstance(node, Call):
        yield Row(function, "call", code, _short(str(value)))
    elif isinstance(node, If):
        annotation = analysis.annotation_of(node)
        test_value = analysis.expr_values.get(id(node.test))
        detail = ""
        if isinstance(annotation, IfAnnotation):
            detail = ("reducible" if annotation.test_bt.is_static
                      else "residual")
        if test_value is not None:
            test_code = pretty(node.test)
            if len(test_code) > width:
                test_code = test_code[:width - 3] + "..."
            yield Row(function, "if-test", test_code,
                      _short(str(test_value)), detail)


def signature_lines(analysis: AnalysisResult) -> list[str]:
    """One ``f : <...> x ... -> <...>`` line per function."""
    return [f"{name} : {_short(str(signature))}"
            for name, signature in analysis.signatures.items()]


def facet_table(analysis: AnalysisResult, title: str = "") -> str:
    """The full report: facet names, signatures, per-expression rows and
    the per-function needed-facet sets — everything Figure 9 displays
    plus the Section 6.2 narrative."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("facets: " + analysis.suite.describe().replace("\n",
                                                                "; "))
    lines.append("")
    lines.append("Facet signatures")
    lines.append("-" * 16)
    lines.extend(signature_lines(analysis))
    lines.append("")
    rows = analysis_rows(analysis)
    width_code = max((len(r.code) for r in rows), default=10) + 2
    width_value = max((len(r.value) for r in rows), default=10) + 2
    current = None
    for row in rows:
        if row.function != current:
            current = row.function
            needed = sorted(analysis.needed_facets.get(current, ()))
            suffix = (f"   [facet computation needed: "
                      f"{', '.join(needed) or 'binding times only'}]")
            lines.append(f"{current}{suffix}")
        detail = f"  ({row.detail})" if row.detail else ""
        lines.append(f"  {row.code.ljust(width_code)}"
                     f"{row.value.ljust(width_value)}{detail}")
    return "\n".join(lines)
