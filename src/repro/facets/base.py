"""Facets (Definition 4): safe abstractions of semantic algebras.

A facet ``[D^; O^]`` of a semantic algebra ``[D; O]`` consists of

* an abstract domain — a finite-height lattice capturing the property of
  interest (:attr:`Facet.domain`);
* an abstraction function ``alpha_D : D -> D^`` (:meth:`Facet.abstract`);
* abstract versions of the algebra's operators, split into **closed**
  operators (``D^n -> D``, abstract version ``D^^n -> D^``) that compute
  new abstract values, and **open** operators (``D^n -> D'``, abstract
  version ``-> Values``) that *use* abstract values to produce constants
  at PE time.

Operator argument convention (matching the paper's signatures, e.g.
``UpdVec : V^ x Values x Values -> V^``): a facet operator receives, for
each argument position, this facet's abstract value when the position's
sort is the facet's carrier, and the argument's PE value
(:class:`~repro.lattice.pevalue.PEValue`) otherwise.

A facet only has to define operators it can say something useful about;
the product machinery fills in the safe defaults (bottom-strict, top
otherwise) for the rest.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.lang.primitives import PrimSig
from repro.lang.values import Value
from repro.lattice.core import AbstractValue, Lattice
from repro.lattice.pevalue import PEValue

#: A facet operator: takes the per-position arguments described above.
#: Closed operators return an element of the facet domain; open operators
#: return a :class:`PEValue`.
FacetOpFn = Callable[..., object]


class Facet:
    """Base class for online-level facets.

    Subclasses set :attr:`name`, :attr:`carrier`, :attr:`domain`,
    implement :meth:`abstract`, and populate :attr:`closed_ops` /
    :attr:`open_ops` keyed by primitive name.  A primitive name may be
    overloaded across carriers; a facet's table only applies to the
    overload whose carrier matches the facet.
    """

    name: str = "facet"
    carrier: str = "int"
    domain: Lattice

    def __init__(self) -> None:
        self.closed_ops: dict[str, FacetOpFn] = {}
        self.open_ops: dict[str, FacetOpFn] = {}
        #: Optional branch-refinement table for the constraint-
        #: propagation extension (see repro.online.constraints):
        #: comparison operator -> (assume, left, right) -> (left',
        #: right'), where the refined values must be meets (safe
        #: narrowings) of the inputs.
        self.refine_ops: dict[str, Callable] = {}

    # -- abstraction ---------------------------------------------------
    def abstract(self, value: Value) -> AbstractValue:
        """The abstraction function ``alpha_D`` on proper (non-bottom)
        concrete values."""
        raise NotImplementedError

    def concretizes(self, value: Value, abstract: AbstractValue) -> bool:
        """The logical relation ``d leq_alpha delta`` of Definition 3:
        ``alpha(d) leq delta``."""
        return self.domain.leq(self.abstract(value), abstract)

    # -- operator lookup ------------------------------------------------
    def op_for(self, prim: str, sig: PrimSig) -> FacetOpFn | None:
        """The facet's own operator for a primitive instance, if any."""
        if sig.carrier != self.carrier:
            return None
        table = self.closed_ops if sig.is_closed else self.open_ops
        return table.get(prim)

    def apply_closed(self, prim: str, sig: PrimSig,
                     args: Sequence[object]) -> AbstractValue:
        """Apply the abstract version of a closed operator, falling back
        to the safe default (bottom-strict, else top)."""
        if any(self._arg_is_bottom(sig, i, a) for i, a in enumerate(args)):
            return self.domain.bottom
        op = self.op_for(prim, sig)
        if op is None:
            return self.domain.top
        return op(*args)

    def apply_open(self, prim: str, sig: PrimSig,
                   args: Sequence[object]) -> PEValue:
        """Apply the abstract version of an open operator, falling back
        to the safe default (bottom-strict, else top)."""
        if any(self._arg_is_bottom(sig, i, a) for i, a in enumerate(args)):
            return PEValue.bottom()
        op = self.op_for(prim, sig)
        if op is None:
            return PEValue.top()
        result = op(*args)
        assert isinstance(result, PEValue), (
            f"{self.name}.{prim}: open operators must return PEValue, "
            f"got {result!r}")
        return result

    def _arg_is_bottom(self, sig: PrimSig, index: int,
                       arg: object) -> bool:
        if sig.arg_sorts[index] == self.carrier:
            return self.domain.leq(arg, self.domain.bottom)
        assert isinstance(arg, PEValue), (
            f"{self.name}: non-carrier argument {index} of {sig} should "
            f"be a PEValue, got {arg!r}")
        return arg.is_bottom

    # -- documentation hooks ---------------------------------------------
    def describe(self) -> str:
        """One-line description for reports."""
        closed = ", ".join(sorted(self.closed_ops)) or "-"
        open_ = ", ".join(sorted(self.open_ops)) or "-"
        return (f"facet {self.name} over {self.carrier}: "
                f"closed ops {{{closed}}}, open ops {{{open_}}}")

    def sample_abstract_values(self) -> Sequence[AbstractValue]:
        """A finite sample of the domain for safety/monotonicity tests;
        enumerable domains enumerate, others must override."""
        if self.domain.is_enumerable():
            return list(self.domain.elements())
        raise NotImplementedError(
            f"{self.name}: override sample_abstract_values for "
            f"non-enumerable domains")

    def __repr__(self) -> str:
        return f"<Facet {self.name}/{self.carrier}>"


def negated_refiner(fn: Callable) -> Callable:
    """Derive the refinement rule of a comparison's negation (``x >= y``
    refines like ``x < y`` with the assumption flipped)."""
    def run(assume: bool, left: object, right: object):
        return fn(not assume, left, right)
    return run


def flipped_refiner(fn: Callable) -> Callable:
    """Derive the refinement rule of the argument-swapped comparison."""
    def run(assume: bool, left: object, right: object):
        new_right, new_left = fn(assume, right, left)
        return new_left, new_right
    return run


def strictly(domain: Lattice, fn: FacetOpFn) -> FacetOpFn:
    """Wrap a closed-operator body so it is bottom-strict in the carrier
    arguments (a convenience; the product machinery already guards, this
    is for direct use of the op in tests)."""

    def wrapped(*args: object) -> object:
        for arg in args:
            if isinstance(arg, PEValue):
                if arg.is_bottom:
                    return domain.bottom
            elif domain.leq(arg, domain.bottom):
                return domain.bottom
        return fn(*args)

    return wrapped
