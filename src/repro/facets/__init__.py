"""The facet framework: Definitions 4-7 of the paper.

* :mod:`repro.facets.base` — the :class:`Facet` protocol (Definition 4);
* :mod:`repro.facets.pe` — the partial-evaluation facet (Definition 7);
* :mod:`repro.facets.vector` — products of facets (Definitions 5-6) and
  the :class:`FacetVector` values threaded by the online specializer;
* :mod:`repro.facets.library` — shipped facets;
* :mod:`repro.facets.abstract` — abstract facets for the offline level
  (Definitions 8-10).
"""

from repro.facets.base import Facet, FacetOpFn, strictly
from repro.facets.pe import PE_FACET, PartialEvaluationFacet
from repro.facets.vector import FacetSuite, FacetVector, PrimOutcome
from repro.facets.library import (
    ConstSetFacet, IntervalFacet, ParityFacet, SignFacet,
    VectorSizeFacet)

__all__ = [
    "Facet", "FacetOpFn", "strictly",
    "PE_FACET", "PartialEvaluationFacet",
    "FacetSuite", "FacetVector", "PrimOutcome",
    "ConstSetFacet", "IntervalFacet", "ParityFacet", "SignFacet",
    "VectorSizeFacet",
]
