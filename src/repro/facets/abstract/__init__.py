"""Abstract facets: the offline level (Definitions 8-10, Section 5)."""

from repro.facets.abstract.base import AbstractFacet, AbstractOpFn
from repro.facets.abstract.bt_facet import BT_FACET, BindingTimeFacet
from repro.facets.abstract.derive import (
    IdentityAbstractFacet, derive_abstract, sig_for)
from repro.facets.abstract.size import (
    DYNAMIC_SIZE, STATIC_SIZE, AbstractVectorSizeFacet)
from repro.facets.abstract.vector import (
    AbstractOutcome, AbstractSuite, AbstractVector)

__all__ = [
    "AbstractFacet", "AbstractOpFn",
    "BT_FACET", "BindingTimeFacet",
    "IdentityAbstractFacet", "derive_abstract", "sig_for",
    "DYNAMIC_SIZE", "STATIC_SIZE", "AbstractVectorSizeFacet",
    "AbstractOutcome", "AbstractSuite", "AbstractVector",
]
