"""The abstract Size facet — Section 6.2 of the paper.

The online Size domain (all the concrete sizes) collapses to the
two-point chain ``V~ = {s, d}`` with ``bot <= s <= d``: ``s`` means "the
size will be a known constant at specialization time", ``d`` means it
will not.  Operators verbatim from the paper:

* ``MkVec~ : Values~ -> V~`` — a Static size argument builds an
  ``s``-vector;
* ``UpdVec~`` — preserves the size class;
* ``Vecf~ : V~ -> Values~`` (open) — ``s`` answers Static;
* ``Vref~`` (open) — always Dynamic.
"""

from __future__ import annotations

from repro.lattice.bt import BT
from repro.lattice.core import AbstractValue
from repro.lattice.flat import ChainLattice
from repro.facets.abstract.base import AbstractFacet
from repro.facets.base import Facet

STATIC_SIZE = "s"
DYNAMIC_SIZE = "d"


class _SizeBTLattice(ChainLattice):
    def __init__(self) -> None:
        super().__init__("size~", ["bot-size~", STATIC_SIZE, DYNAMIC_SIZE])


class AbstractVectorSizeFacet(AbstractFacet):
    """``[V~; O~]`` of Section 6.2."""

    def __init__(self, online: Facet) -> None:
        super().__init__(online)
        self.name = online.name
        self.domain = _SizeBTLattice()

        def mkvec(size: BT) -> AbstractValue:
            return DYNAMIC_SIZE if size.is_dynamic else STATIC_SIZE

        def updvec(vec: AbstractValue, index: BT, value: BT) \
                -> AbstractValue:
            return vec

        self.closed_ops = {"mkvec": mkvec, "updvec": updvec}

        def vsize(vec: AbstractValue) -> BT:
            return BT.STATIC if vec == STATIC_SIZE else BT.DYNAMIC

        def vref(vec: AbstractValue, index: BT) -> BT:
            return BT.DYNAMIC

        self.open_ops = {"vsize": vsize, "vref": vref}

    def abstract_of_facet(self, facet_value: AbstractValue) \
            -> AbstractValue:
        """``alpha~``: bottom to bottom, top to ``d``, any concrete size
        to ``s``."""
        if self.online.domain.leq(facet_value, self.online.domain.bottom):
            return self.domain.bottom
        if facet_value == self.online.domain.top:
            return DYNAMIC_SIZE
        return STATIC_SIZE
