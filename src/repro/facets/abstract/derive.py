"""Automatic derivation of abstract facets (the Example 2 pattern).

Example 2 derives the abstract Sign facet from the Sign facet by taking
the *same* domain (``alpha~`` is the identity) and composing each open
operator with ``tau~``: the abstract ``<~`` answers Static exactly where
the online ``<^`` answers a constant.  That construction is generic for
any operator whose argument positions are all of the facet's carrier:
closed operators are reused unchanged, open operators are
``tau_offline . op``.

Operators with foreign (``Values``-typed) positions cannot be derived
this way — the abstract level only sees a binding time where the online
level sees the actual constant (``MkVec^`` reads the size out of its
``Values`` argument; ``MkVec~`` only learns that *some* size exists).
Such operators keep the safe default (top/Dynamic) unless the facet
ships a hand-written abstract companion, as the Size facet does
(Section 6.2).
"""

from __future__ import annotations

from repro.lang.primitives import PRIMITIVES, PrimSig
from repro.lattice.core import AbstractValue
from repro.lattice.pevalue import PEValue
from repro.algebra.abstraction import tau_offline
from repro.facets.abstract.base import AbstractFacet
from repro.facets.base import Facet


def sig_for(prim: str, carrier: str) -> PrimSig | None:
    """The unique signature of ``prim`` in the algebra ``carrier``."""
    prim_def = PRIMITIVES.get(prim)
    if prim_def is None:
        return None
    matches = [sig for sig in prim_def.sigs if sig.carrier == carrier]
    return matches[0] if len(matches) == 1 else None


def _carrier_only(sig: PrimSig) -> bool:
    return all(sort == sig.carrier for sort in sig.arg_sorts)


class IdentityAbstractFacet(AbstractFacet):
    """The tau-composition derivation over an unchanged domain."""

    def __init__(self, online: Facet) -> None:
        super().__init__(online)
        self.name = online.name
        self.domain = online.domain
        for prim, op in online.closed_ops.items():
            sig = sig_for(prim, online.carrier)
            if sig is not None and _carrier_only(sig):
                self.closed_ops[prim] = op
        for prim, op in online.open_ops.items():
            sig = sig_for(prim, online.carrier)
            if sig is not None and _carrier_only(sig):
                self.open_ops[prim] = _tau_compose(op)

    def abstract_of_facet(self, facet_value: AbstractValue) \
            -> AbstractValue:
        return facet_value

    def sample_abstract_values(self):
        return self.online.sample_abstract_values()


def _tau_compose(op):
    def abstract_op(*args):
        result = op(*args)
        assert isinstance(result, PEValue)
        return tau_offline(result)
    return abstract_op


def derive_abstract(online: Facet) -> AbstractFacet:
    """The abstract companion of a facet: the facet's own hand-written
    one if it defines ``make_abstract``, otherwise the identity
    derivation."""
    maker = getattr(online, "make_abstract", None)
    if maker is not None:
        return maker()
    return IdentityAbstractFacet(online)
