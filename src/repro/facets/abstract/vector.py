"""Products of abstract facets (Definition 9) and analysis-time values.

The facet analysis of Figure 4 computes over ``S~D — a sum, indexed by
basic algebra, of smashed products of abstract facet domains with the
binding-time facet as the first component.  :class:`AbstractVector` is
one element of that sum (the analysis-level mirror of
:class:`~repro.facets.vector.FacetVector`); :class:`AbstractSuite`
builds the abstract companions of a :class:`~repro.facets.vector.FacetSuite`'s
facets and implements the product operators ``omega~_p``.

Open-operator outcomes record *which* abstract facet produced Static —
the offline specializer uses that to know whose online operator to
trigger at specialization time, the "selects the corresponding reduction
operations prior to specialization" of the introduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lang.primitives import PRIMITIVES, PrimSig
from repro.lang.values import Value, is_value, sort_of
from repro.lattice.bt import BT, BT_LATTICE
from repro.lattice.core import AbstractValue
from repro.facets.abstract.base import AbstractFacet
from repro.facets.abstract.bt_facet import BT_FACET
from repro.facets.abstract.derive import derive_abstract
from repro.facets.vector import FacetSuite, FacetVector
from repro.algebra.abstraction import tau_offline


@dataclass(frozen=True)
class AbstractVector:
    """One element of ``S~D``: summand tag, BT component, user facets."""

    sort: str | None
    bt: BT
    user: tuple[AbstractValue, ...]

    def __str__(self) -> str:
        if not self.user:
            return f"<{self.bt}>"
        components = ", ".join(str(c) for c in self.user)
        return f"<{self.bt}, {components}>"


@dataclass(frozen=True)
class AbstractOutcome:
    """Result of applying an abstract product operator."""

    vector: AbstractVector
    sig: PrimSig | None
    static: bool
    producer: str | None


class AbstractSuite:
    """The abstract companions of a facet suite, plus the BT facet."""

    def __init__(self, online: FacetSuite) -> None:
        self.online = online
        self.facets: tuple[AbstractFacet, ...] = tuple(
            derive_abstract(facet) for facet in online.facets)
        self._by_sort: dict[str, tuple[AbstractFacet, ...]] = {}
        for facet in self.facets:
            existing = self._by_sort.get(facet.carrier, ())
            self._by_sort[facet.carrier] = existing + (facet,)

    # -- structure ------------------------------------------------------
    def facets_for(self, sort: str | None) -> tuple[AbstractFacet, ...]:
        if sort is None:
            return ()
        return self._by_sort.get(sort, ())

    def facet_named(self, name: str) -> AbstractFacet:
        for facet in self.facets:
            if facet.name == name:
                return facet
        raise KeyError(f"no abstract facet named {name!r}")

    def describe(self) -> str:
        lines = [BT_FACET.describe()]
        lines.extend(facet.describe() for facet in self.facets)
        return "\n".join(lines)

    # -- vector constructors ------------------------------------------------
    def const_vector(self, value: Value) -> AbstractVector:
        """Figure 4's ``K~[c]``: Static, with each ``Gamma_i(c)``."""
        if not is_value(value):
            raise TypeError(f"not a value: {value!r}")
        sort = sort_of(value)
        user = tuple(facet.abstract(value)
                     for facet in self.facets_for(sort))
        return AbstractVector(sort, BT.STATIC, user)

    def static(self, sort: str | None = None) -> AbstractVector:
        """A fully static input of unknown concrete value."""
        user = tuple(facet.domain.top for facet in self.facets_for(sort))
        return AbstractVector(sort, BT.STATIC, user)

    def dynamic(self, sort: str | None = None) -> AbstractVector:
        user = tuple(facet.domain.top for facet in self.facets_for(sort))
        return AbstractVector(sort, BT.DYNAMIC, user)

    def bottom(self, sort: str | None = None) -> AbstractVector:
        user = tuple(facet.domain.bottom
                     for facet in self.facets_for(sort))
        return AbstractVector(sort, BT.BOT, user)

    def input(self, sort: str, bt: BT = BT.DYNAMIC,
              **components: AbstractValue) -> AbstractVector:
        """Build an analysis input like the paper's ``<Dynamic, s>``."""
        facets = self.facets_for(sort)
        known = dict(components)
        user = []
        for facet in facets:
            user.append(known.pop(facet.name, facet.domain.top))
        if known:
            raise KeyError(
                f"no abstract facet(s) named {sorted(known)} for sort "
                f"{sort!r}")
        return self.smash(AbstractVector(sort, bt, tuple(user)))

    def abstract_of_online(self, vector: FacetVector) -> AbstractVector:
        """The facet mapping from the online level, component-wise:
        ``tau~`` on the PE component, each ``alpha~_i`` on the rest."""
        facets = self.facets_for(vector.sort)
        user = tuple(facet.abstract_of_facet(component)
                     for facet, component in zip(facets, vector.user))
        return self.smash(
            AbstractVector(vector.sort, tau_offline(vector.pe), user))

    # -- lattice structure ------------------------------------------------
    def smash(self, vector: AbstractVector) -> AbstractVector:
        if self.is_bottom(vector):
            return self.bottom(vector.sort)
        return vector

    def is_bottom(self, vector: AbstractVector) -> bool:
        if vector.bt.is_bottom:
            return True
        facets = self.facets_for(vector.sort)
        return any(facet.domain.leq(component, facet.domain.bottom)
                   for facet, component in zip(facets, vector.user))

    def join(self, left: AbstractVector, right: AbstractVector) \
            -> AbstractVector:
        if self.is_bottom(left):
            return right
        if self.is_bottom(right):
            return left
        if left.sort != right.sort:
            # Joining across summands loses the facet components (they
            # live in different algebras) but not the binding time.
            return AbstractVector(None, left.bt.join(right.bt), ())
        facets = self.facets_for(left.sort)
        user = tuple(facet.domain.join(l, r) for facet, l, r
                     in zip(facets, left.user, right.user))
        return AbstractVector(left.sort, left.bt.join(right.bt), user)

    def widen(self, previous: AbstractVector, new: AbstractVector) \
            -> AbstractVector:
        """Join with per-component widening — required when a facet
        domain has infinite height (the interval facet)."""
        if self.is_bottom(previous):
            return new
        if self.is_bottom(new):
            return previous
        if previous.sort != new.sort or previous.sort is None:
            return self.join(previous, new)
        facets = self.facets_for(previous.sort)
        user = tuple(facet.domain.widen(p, n) for facet, p, n
                     in zip(facets, previous.user, new.user))
        return AbstractVector(previous.sort, previous.bt.join(new.bt),
                              user)

    def leq(self, left: AbstractVector, right: AbstractVector) -> bool:
        if self.is_bottom(left):
            return True
        if self.is_bottom(right):
            return False
        if left.sort != right.sort:
            # Sortless vectors have implicitly-top facet components, so
            # only binding times compare; distinct known summands are
            # incomparable.
            if right.sort is None:
                return BT_LATTICE.leq(left.bt, right.bt)
            return False
        if not BT_LATTICE.leq(left.bt, right.bt):
            return False
        facets = self.facets_for(left.sort)
        return all(facet.domain.leq(l, r) for facet, l, r
                   in zip(facets, left.user, right.user))

    def component(self, vector: AbstractVector, facet: AbstractFacet) \
            -> AbstractValue:
        if vector.sort != facet.carrier:
            return facet.domain.top
        facets = self.facets_for(vector.sort)
        for candidate, component in zip(facets, vector.user):
            if candidate is facet:
                return component
        return facet.domain.top

    # -- the product operators (Definition 9) -------------------------------
    def apply_prim(self, prim_name: str,
                   args: Sequence[AbstractVector]) -> AbstractOutcome:
        """``omega~_p`` plus Figure 4's ``K~_P`` constant/result shaping."""
        prim = PRIMITIVES.get(prim_name)
        if prim is None:
            raise KeyError(f"unknown primitive {prim_name!r}")
        sig = self._resolve_sig(prim_name, args)
        if sig is None:
            result_sort = self._common_result_sort(prim_name, args)
            # Unresolvable overloads still obey the BT facet: a primitive
            # whose arguments are all static folds at specialization time.
            bt = BT_FACET.apply(prim_name,
                                prim.sigs[0], [a.bt for a in args])
            if bt.is_bottom:
                return AbstractOutcome(self.bottom(result_sort), None,
                                       False, None)
            if bt.is_static:
                return AbstractOutcome(self.static_result(result_sort),
                                       None, True, "bt")
            return AbstractOutcome(self.dynamic(result_sort), None,
                                   False, None)
        if any(self.is_bottom(arg) for arg in args):
            return AbstractOutcome(self.bottom(sig.result_sort), sig,
                                   False, None)

        bt_result = BT_FACET.apply(prim_name, sig,
                                   [arg.bt for arg in args])
        facets = self.facets_for(sig.carrier)

        if sig.is_closed:
            components = []
            for facet in facets:
                projected = self._project_args(facet, sig, args)
                components.append(
                    facet.apply_closed(prim_name, sig, projected))
            vector = self.smash(AbstractVector(
                sig.result_sort, bt_result, tuple(components)))
            return AbstractOutcome(vector, sig,
                                   bt_result.is_static,
                                   "bt" if bt_result.is_static else None)

        # Open operator (Definition 9 clause b): bottom-strict; Static if
        # any abstract facet (BT facet included) answers Static.
        produced: list[tuple[str, BT]] = [("bt", bt_result)]
        for facet in facets:
            projected = self._project_args(facet, sig, args)
            produced.append(
                (facet.name, facet.apply_open(prim_name, sig, projected)))
        if any(value.is_bottom for _, value in produced):
            return AbstractOutcome(self.bottom(sig.result_sort), sig,
                                   False, None)
        static = [(name, value) for name, value in produced
                  if value.is_static]
        if static:
            name = static[0][0]
            return AbstractOutcome(self.static_result(sig.result_sort),
                                   sig, True, name)
        return AbstractOutcome(self.dynamic(sig.result_sort), sig,
                               False, None)

    def static_result(self, sort: str | None) -> AbstractVector:
        """Figure 4's shaping of a Static open result: the constant is
        pushed through every facet of the result algebra, but at this
        level we only know it exists — Static with top components would
        lose the "it is a constant" information for downstream closed
        operators, so (faithful to ``K~_P``'s ``(d~, T, ..., T)``) the
        result is Static with top user components."""
        user = tuple(facet.domain.top for facet in self.facets_for(sort))
        return AbstractVector(sort, BT.STATIC, user)

    def _resolve_sig(self, prim_name: str,
                     args: Sequence[AbstractVector]) -> PrimSig | None:
        prim = PRIMITIVES[prim_name]
        arg_sorts = [arg.sort for arg in args]
        candidates = [sig for sig in prim.sigs
                      if len(sig.arg_sorts) == len(args)
                      and all(known is None or want == known
                              for want, known
                              in zip(sig.arg_sorts, arg_sorts))]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _common_result_sort(self, prim_name: str,
                            args: Sequence[AbstractVector]) -> str | None:
        prim = PRIMITIVES[prim_name]
        sorts = {sig.result_sort for sig in prim.sigs
                 if len(sig.arg_sorts) == len(args)}
        return sorts.pop() if len(sorts) == 1 else None

    def _project_args(self, facet: AbstractFacet, sig: PrimSig,
                      args: Sequence[AbstractVector]) -> list[object]:
        projected: list[object] = []
        for arg_sort, arg in zip(sig.arg_sorts, args):
            if arg_sort == facet.carrier:
                projected.append(self.component(arg, facet))
            else:
                projected.append(arg.bt)
        return projected

    def needs_widening(self) -> bool:
        """True when any facet domain is of infinite height, in which
        case fixpoint iteration must widen (footnote 1)."""
        for facet in self.facets:
            try:
                facet.domain.height()
            except NotImplementedError:
                return True
        return False
