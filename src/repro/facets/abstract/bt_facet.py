"""The binding-time facet (Definition 10).

Just as constant folding is itself a facet at the online level
(Definition 7), the computation of binding times is itself an *abstract*
facet: its domain is the ``bot <= Static <= Dynamic`` chain and every
operator — open or closed, of any algebra — is the uniform rule

    p~(d1, ..., dn) = bot      if some di = bot
                    = Static   if all di = Static
                    = Dynamic  otherwise

which is exactly what a conventional binding-time analysis computes for
primitives.  It occupies component 0 of every product of abstract facets
(Section 5.4), mirroring the PE facet at the online level.
"""

from __future__ import annotations

from typing import Sequence

from repro.lang.primitives import PrimSig
from repro.lattice.bt import BT, BT_LATTICE
from repro.lattice.pevalue import PEValue
from repro.algebra.abstraction import bt_of_args, tau_offline


class BindingTimeFacet:
    """The distinguished component 0 of every abstract product."""

    name = "bt"
    domain = BT_LATTICE

    def abstract(self, value: object) -> BT:
        """Any proper constant is Static."""
        return BT.STATIC

    def abstract_of_pe(self, pe: PEValue) -> BT:
        """``alpha~_Values = tau~``: the facet mapping from the online
        PE facet (Definition 10, clause 1)."""
        return tau_offline(pe)

    def apply(self, prim: str, sig: PrimSig,
              args: Sequence[BT]) -> BT:
        """The uniform operator (Definition 10, clause 2)."""
        return bt_of_args(list(args))

    def describe(self) -> str:
        return ("abstract facet bt over all algebras: binding times "
                "(Def. 10)")

    def __repr__(self) -> str:
        return "<BindingTimeFacet>"


#: Shared instance; the facet is stateless.
BT_FACET = BindingTimeFacet()
