"""Abstract facets (Definition 8): facets of facets.

An abstract facet ``[D~; O~]`` abstracts a facet ``[D^; O^]`` one more
level so facet computation can run *before* specialization.  It has the
same open/closed structure; the difference is the co-domain of open
operators: instead of constants they produce binding-time values —
``Static`` promising "the facet will produce a constant at
specialization time" (Property 6), ``Dynamic`` promising nothing.

Argument convention (mirroring the online level): a closed/open abstract
operator receives, per position, this abstract facet's value for
carrier-sorted positions and the argument's binding time
(:class:`~repro.lattice.bt.BT`) for foreign positions — e.g. the
abstract Size facet's ``MkVec~ : Values~ -> V~`` of Section 6.2.

Every abstract facet keeps a reference to its online facet: the offline
specializer runs the *online* operators at specialization time, at
exactly the places the analysis marked Static.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.lang.primitives import PrimSig
from repro.lang.values import Value
from repro.lattice.bt import BT
from repro.lattice.core import AbstractValue, Lattice
from repro.facets.base import Facet

AbstractOpFn = Callable[..., object]


class AbstractFacet:
    """Base class for offline-level (analysis-time) facets."""

    name: str = "abstract-facet"
    carrier: str = "int"
    domain: Lattice

    def __init__(self, online: Facet) -> None:
        self.online = online
        self.carrier = online.carrier
        self.closed_ops: dict[str, AbstractOpFn] = {}
        self.open_ops: dict[str, AbstractOpFn] = {}

    # -- the facet mapping alpha~ : D^ -> D~ -----------------------------
    def abstract_of_facet(self, facet_value: AbstractValue) \
            -> AbstractValue:
        """Abstract an *online* facet value to this level."""
        raise NotImplementedError

    def abstract(self, value: Value) -> AbstractValue:
        """The Gamma function of Figure 4's ``K~``: concrete value ->
        online facet value -> abstract facet value."""
        return self.abstract_of_facet(self.online.abstract(value))

    # -- operator application ---------------------------------------------
    def op_for(self, prim: str, sig: PrimSig) -> AbstractOpFn | None:
        if sig.carrier != self.carrier:
            return None
        table = self.closed_ops if sig.is_closed else self.open_ops
        return table.get(prim)

    def apply_closed(self, prim: str, sig: PrimSig,
                     args: Sequence[object]) -> AbstractValue:
        if any(self._arg_is_bottom(sig, i, a) for i, a in enumerate(args)):
            return self.domain.bottom
        op = self.op_for(prim, sig)
        if op is None:
            return self.domain.top
        return op(*args)

    def apply_open(self, prim: str, sig: PrimSig,
                   args: Sequence[object]) -> BT:
        if any(self._arg_is_bottom(sig, i, a) for i, a in enumerate(args)):
            return BT.BOT
        op = self.op_for(prim, sig)
        if op is None:
            return BT.DYNAMIC
        result = op(*args)
        assert isinstance(result, BT), (
            f"{self.name}.{prim}: open abstract operators must return "
            f"BT, got {result!r}")
        return result

    def _arg_is_bottom(self, sig: PrimSig, index: int,
                       arg: object) -> bool:
        if sig.arg_sorts[index] == self.carrier:
            return self.domain.leq(arg, self.domain.bottom)
        assert isinstance(arg, BT), (
            f"{self.name}: non-carrier argument {index} of {sig} should "
            f"be a BT, got {arg!r}")
        return arg.is_bottom

    def sample_abstract_values(self) -> Sequence[AbstractValue]:
        if self.domain.is_enumerable():
            return list(self.domain.elements())
        raise NotImplementedError(
            f"{self.name}: override sample_abstract_values")

    def describe(self) -> str:
        closed = ", ".join(sorted(self.closed_ops)) or "-"
        open_ = ", ".join(sorted(self.open_ops)) or "-"
        return (f"abstract facet {self.name} over {self.carrier}: "
                f"closed ops {{{closed}}}, open ops {{{open_}}}")

    def __repr__(self) -> str:
        return f"<AbstractFacet {self.name}/{self.carrier}>"
