"""Products of facets (Definition 5) and the values that flow through
parameterized partial evaluation.

Section 4.4's semantic domain is ``D^ = sum_j (D^_j1 (x) ... (x) D^_jm)``
— one smashed product of facet domains per basic algebra, with the
partial-evaluation facet always the first component.  A
:class:`FacetVector` is one element of that sum: the summand tag
(``sort``), the PE-facet component (``pe``) and the user-facet components
(``user``).  A vector of *unknown* sort (``sort=None``) arises for
residual expressions whose type the specializer cannot see (e.g. results
of residual calls); every facet component of such a vector is that
facet's top.

:class:`FacetSuite` is the configuration object of the whole system: the
set of user facets the partial evaluator is *parameterized* by.  It
builds vectors, joins them, projects components, and implements the
product operators ``omega_p`` of Definition 5 together with the
constant-propagation rule of Figure 3's ``K^`` (a constant produced by
any facet is pushed to all facets through their abstraction functions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.lang.errors import ConsistencyError, EvalError
from repro.lang.primitives import PRIMITIVES, PrimSig
from repro.lang.values import Value, is_value, sort_of
from repro.lattice.core import AbstractValue
from repro.lattice.pevalue import PE_LATTICE, PEValue
from repro.facets.base import Facet
from repro.facets.pe import PE_FACET


@dataclass(frozen=True)
class FacetVector:
    """One element of the sum-of-products domain ``D^``."""

    sort: str | None
    pe: PEValue
    user: tuple[AbstractValue, ...]

    def __str__(self) -> str:
        if not self.user:
            return f"<{self.pe}>"
        components = ", ".join(str(c) for c in self.user)
        return f"<{self.pe}, {components}>"


@dataclass(frozen=True)
class PrimOutcome:
    """Result of applying a product operator to argument vectors.

    ``folded`` is true when the application produced a constant;
    ``producer`` then names the facet responsible (``"pe"`` for plain
    constant folding — anything else is a win only parameterized PE can
    get).  ``facet_evaluations`` counts how many facet operators ran,
    the online-cost measure reported by ``bench_decisions``.
    """

    vector: FacetVector
    sig: PrimSig | None
    folded: bool
    producer: str | None
    facet_evaluations: int


class FacetSuite:
    """A set of user facets parameterizing the partial evaluator."""

    def __init__(self, facets: Sequence[Facet] = ()) -> None:
        self.facets = tuple(facets)
        names = [f.name for f in self.facets]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate facet names: {names}")
        self._by_sort: dict[str, tuple[Facet, ...]] = {}
        for facet in self.facets:
            existing = self._by_sort.get(facet.carrier, ())
            self._by_sort[facet.carrier] = existing + (facet,)

    # -- structure ------------------------------------------------------
    def facets_for(self, sort: str | None) -> tuple[Facet, ...]:
        """User facets of the algebra ``sort`` (empty for unknown)."""
        if sort is None:
            return ()
        return self._by_sort.get(sort, ())

    def facet_named(self, name: str) -> Facet:
        for facet in self.facets:
            if facet.name == name:
                return facet
        raise KeyError(f"no facet named {name!r}")

    def describe(self) -> str:
        lines = [PE_FACET.describe()]
        lines.extend(facet.describe() for facet in self.facets)
        return "\n".join(lines)

    # -- vector constructors ---------------------------------------------
    def const_vector(self, value: Value) -> FacetVector:
        """``K^`` of Figure 3: a constant, abstracted into every facet of
        its algebra."""
        if not is_value(value):
            raise TypeError(f"not a value: {value!r}")
        sort = sort_of(value)
        user = tuple(facet.abstract(value)
                     for facet in self.facets_for(sort))
        return FacetVector(sort, PEValue.const(value), user)

    def unknown(self, sort: str | None = None) -> FacetVector:
        """A fully dynamic value: top in every component."""
        user = tuple(facet.domain.top for facet in self.facets_for(sort))
        return FacetVector(sort, PEValue.top(), user)

    def bottom(self, sort: str | None = None) -> FacetVector:
        user = tuple(facet.domain.bottom
                     for facet in self.facets_for(sort))
        return FacetVector(sort, PEValue.bottom(), user)

    def input(self, sort: str, pe: PEValue | None = None,
              **components: AbstractValue) -> FacetVector:
        """Build a specialization input like the paper's ``<T, 3>``
        (dynamic vector of known size 3): keyword arguments name facets,
        unnamed facets default to top."""
        facets = self.facets_for(sort)
        known = dict(components)
        user = []
        for facet in facets:
            user.append(known.pop(facet.name, facet.domain.top))
        if known:
            raise KeyError(
                f"no facet(s) named {sorted(known)} for sort {sort!r}")
        vector = FacetVector(sort, pe if pe is not None else PEValue.top(),
                             tuple(user))
        return self.smash(vector)

    def smash(self, vector: FacetVector) -> FacetVector:
        """Collapse to the summand bottom when any component is bottom
        (the smashed product of Definition 5)."""
        if self.is_bottom(vector):
            return self.bottom(vector.sort)
        return vector

    def is_bottom(self, vector: FacetVector) -> bool:
        if vector.pe.is_bottom:
            return True
        facets = self.facets_for(vector.sort)
        return any(facet.domain.leq(component, facet.domain.bottom)
                   for facet, component in zip(facets, vector.user))

    # -- lattice operations -----------------------------------------------
    def join(self, left: FacetVector, right: FacetVector) -> FacetVector:
        """Component-wise join; joining across different summands loses
        the sort (conditional branches of different types)."""
        if self.is_bottom(left):
            return right
        if self.is_bottom(right):
            return left
        if left.sort != right.sort:
            # Joining across summands: the facet components belong to
            # different algebras and are lost, but the PE component
            # joins in the flat Values lattice (constants of different
            # sorts are distinct, so this is usually top).
            return FacetVector(None,
                               PE_LATTICE.join(left.pe, right.pe), ())
        facets = self.facets_for(left.sort)
        user = tuple(facet.domain.join(l, r) for facet, l, r
                     in zip(facets, left.user, right.user))
        return FacetVector(left.sort,
                           PE_LATTICE.join(left.pe, right.pe), user)

    def leq(self, left: FacetVector, right: FacetVector) -> bool:
        if self.is_bottom(left):
            return True
        if self.is_bottom(right):
            return False
        if left.sort != right.sort:
            # A sortless vector carries no facet components (they are
            # implicitly top), so only the PE order matters; vectors of
            # two *known* distinct summands are incomparable.
            if right.sort is None:
                return PE_LATTICE.leq(left.pe, right.pe)
            return False
        if not PE_LATTICE.leq(left.pe, right.pe):
            return False
        facets = self.facets_for(left.sort)
        return all(facet.domain.leq(l, r) for facet, l, r
                   in zip(facets, left.user, right.user))

    def component(self, vector: FacetVector, facet: Facet) \
            -> AbstractValue:
        """Project one facet's component out of a vector; vectors of a
        different (or unknown) sort project to that facet's top."""
        if vector.sort != facet.carrier:
            return facet.domain.top
        facets = self.facets_for(vector.sort)
        for candidate, component in zip(facets, vector.user):
            if candidate is facet:
                return component
        return facet.domain.top

    # -- the product operators (Definition 5) ------------------------------
    def apply_prim(self, prim_name: str,
                   args: Sequence[FacetVector]) -> PrimOutcome:
        """Apply the product operator ``omega_p`` for a primitive.

        Implements both clauses of Definition 5 and the constant
        propagation of Figure 3's ``K^_P``: when the application yields a
        constant, the result vector is the constant's abstraction in
        *every* facet.
        """
        prim = PRIMITIVES.get(prim_name)
        if prim is None:
            raise EvalError(f"unknown primitive {prim_name!r}")
        sig = self._resolve_sig(prim_name, args)
        if sig is None:
            result_sort = self._common_result_sort(prim_name, args)
            return PrimOutcome(self.unknown(result_sort), None,
                               False, None, 0)
        if any(self.is_bottom(arg) for arg in args):
            return PrimOutcome(self.bottom(sig.result_sort), sig,
                               False, None, 0)

        pe_result = PE_FACET.apply(prim_name, sig,
                                   [arg.pe for arg in args])
        facets = self.facets_for(sig.carrier)
        evaluations = 1  # the PE facet ran

        if sig.is_closed:
            components = []
            for facet in facets:
                projected = self._project_args(facet, sig, args)
                components.append(
                    facet.apply_closed(prim_name, sig, projected))
                evaluations += 1
            if pe_result.is_const:
                return PrimOutcome(
                    self.const_vector(pe_result.constant()), sig,
                    True, "pe", evaluations)
            vector = self.smash(
                FacetVector(sig.result_sort, pe_result,
                            tuple(components)))
            return PrimOutcome(vector, sig, False, None, evaluations)

        # Open operator: every facet (PE facet included) may produce the
        # constant; Lemma 3 guarantees agreement for consistent inputs.
        produced: list[tuple[str, PEValue]] = [("pe", pe_result)]
        for facet in facets:
            projected = self._project_args(facet, sig, args)
            produced.append(
                (facet.name,
                 facet.apply_open(prim_name, sig, projected)))
            evaluations += 1
        if any(value.is_bottom for _, value in produced):
            return PrimOutcome(self.bottom(sig.result_sort), sig,
                               False, None, evaluations)
        constants = [(name, value) for name, value in produced
                     if value.is_const]
        if constants:
            names = {name for name, _ in constants}
            distinct = {value for _, value in constants}
            if len(distinct) > 1:
                raise ConsistencyError(
                    f"{prim_name}: facets {sorted(names)} produced "
                    f"disagreeing constants {distinct}; the input facet "
                    f"values are inconsistent (Definition 6)")
            name, value = constants[0]
            return PrimOutcome(self.const_vector(value.constant()), sig,
                               True, name, evaluations)
        return PrimOutcome(self.unknown(sig.result_sort), sig,
                           False, None, evaluations)

    def resolve_sig(self, prim_name: str,
                    args: Sequence[FacetVector]) -> PrimSig | None:
        """Public alias of the overload resolver (used by the offline
        specializer and the generating extension)."""
        return self._resolve_sig(prim_name, args)

    def project_args(self, facet: Facet, sig: PrimSig,
                     args: Sequence[FacetVector]) -> list[object]:
        """Public alias of the per-facet argument projection."""
        return self._project_args(facet, sig, args)

    def _resolve_sig(self, prim_name: str,
                     args: Sequence[FacetVector]) -> PrimSig | None:
        prim = PRIMITIVES[prim_name]
        arg_sorts = [arg.sort for arg in args]
        candidates = [sig for sig in prim.sigs
                      if len(sig.arg_sorts) == len(args)
                      and all(known is None or want == known
                              for want, known
                              in zip(sig.arg_sorts, arg_sorts))]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _common_result_sort(self, prim_name: str,
                            args: Sequence[FacetVector]) -> str | None:
        prim = PRIMITIVES[prim_name]
        sorts = {sig.result_sort for sig in prim.sigs
                 if len(sig.arg_sorts) == len(args)}
        return sorts.pop() if len(sorts) == 1 else None

    def _project_args(self, facet: Facet, sig: PrimSig,
                      args: Sequence[FacetVector]) -> list[object]:
        projected: list[object] = []
        for arg_sort, arg in zip(sig.arg_sorts, args):
            if arg_sort == facet.carrier:
                projected.append(self.component(arg, facet))
            else:
                projected.append(arg.pe)
        return projected

    # -- consistency (Definition 6) ----------------------------------------
    def is_consistent(self, vector: FacetVector,
                      candidates: Iterable[Value]) -> bool:
        """Check Definition 6 against an explicit candidate set: some
        proper concrete value must be described by *every* component."""
        if self.is_bottom(vector):
            return False
        for candidate in candidates:
            if self.describes(vector, candidate):
                return True
        return False

    def describes(self, vector: FacetVector, value: Value) -> bool:
        """The conjunction of the logical relations: ``value`` lies in
        every component's concretization."""
        if sort_of(value) != vector.sort:
            return vector.sort is None
        if vector.pe.is_const and PEValue.const(value) != vector.pe:
            return False
        if vector.pe.is_bottom:
            return False
        facets = self.facets_for(vector.sort)
        return all(facet.concretizes(value, component)
                   for facet, component in zip(facets, vector.user))
