"""Products of facets (Definition 5) and the values that flow through
parameterized partial evaluation.

Section 4.4's semantic domain is ``D^ = sum_j (D^_j1 (x) ... (x) D^_jm)``
— one smashed product of facet domains per basic algebra, with the
partial-evaluation facet always the first component.  A
:class:`FacetVector` is one element of that sum: the summand tag
(``sort``), the PE-facet component (``pe``) and the user-facet components
(``user``).  A vector of *unknown* sort (``sort=None``) arises for
residual expressions whose type the specializer cannot see (e.g. results
of residual calls); every facet component of such a vector is that
facet's top.

:class:`FacetSuite` is the configuration object of the whole system: the
set of user facets the partial evaluator is *parameterized* by.  It
builds vectors, joins them, projects components, and implements the
product operators ``omega_p`` of Definition 5 together with the
constant-propagation rule of Figure 3's ``K^`` (a constant produced by
any facet is pushed to all facets through their abstraction functions).

The suite also owns the hot-path caching layer (on by default, opt out
with ``FacetSuite(facets, caching=False)``):

* a **dispatch cache** memoizing overload resolution keyed on
  ``(prim_name, argument sorts)`` — the specializers re-apply the same
  primitive instances thousands of times per run;
* **hash-consed vectors** — ``const_vector``, ``unknown``, ``bottom``
  and every product built through :meth:`make_vector` are interned, so
  the smashed-product values that dominate allocation are shared,
  identity-comparable, and carry a memoized bottom check;
* a **pure-operator memo** for closed facet operators and the PE
  facet's uniform operator on interned inputs.

Caching is observationally transparent: residual programs and every
:class:`~repro.observability.stats.PEStats` counter are identical with
caching on or off (``facet_evaluations`` counts operator applications
in the paper's cost model even when the memo served them).  Hit rates
are reported through :attr:`FacetSuite.cache_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.lang.errors import ConsistencyError, EvalError
from repro.lang.primitives import PRIMITIVES, PrimSig
from repro.lang.values import Value, is_value, sort_of
from repro.lattice.core import AbstractValue
from repro.lattice.pevalue import PE_LATTICE, PEValue
from repro.observability.cache_stats import CacheStats
from repro.facets.base import Facet
from repro.facets.pe import PE_FACET


@dataclass(frozen=True)
class FacetVector:
    """One element of the sum-of-products domain ``D^``."""

    sort: str | None
    pe: PEValue
    user: tuple[AbstractValue, ...]

    def __str__(self) -> str:
        if not self.user:
            return f"<{self.pe}>"
        components = ", ".join(str(c) for c in self.user)
        return f"<{self.pe}, {components}>"


@dataclass(frozen=True)
class PrimOutcome:
    """Result of applying a product operator to argument vectors.

    ``folded`` is true when the application produced a constant;
    ``producer`` then names the facet responsible (``"pe"`` for plain
    constant folding — anything else is a win only parameterized PE can
    get).  ``facet_evaluations`` counts how many facet operators ran,
    the online-cost measure reported by ``bench_decisions``.
    """

    vector: FacetVector
    sig: PrimSig | None
    folded: bool
    producer: str | None
    facet_evaluations: int


#: Dispatch-cache entry for "no unique overload".
_NO_SIG = (None, ())


class FacetSuite:
    """A set of user facets parameterizing the partial evaluator."""

    def __init__(self, facets: Sequence[Facet] = (), *,
                 caching: bool = True) -> None:
        self.facets = tuple(facets)
        names = [f.name for f in self.facets]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate facet names: {names}")
        self._by_sort: dict[str, tuple[Facet, ...]] = {}
        for facet in self.facets:
            existing = self._by_sort.get(facet.carrier, ())
            self._by_sort[facet.carrier] = existing + (facet,)
        # id(facet) -> component index within its carrier's group.
        self._facet_pos: dict[int, int] = {
            id(facet): index
            for group in self._by_sort.values()
            for index, facet in enumerate(group)}
        self.caching = caching
        self.cache_stats = CacheStats()
        # (prim, arg sorts) -> (sig | None, facets of sig.carrier)
        self._dispatch: dict[tuple, tuple[PrimSig | None,
                                          tuple[Facet, ...]]] = {}
        # (prim, arity) -> common result sort | None
        self._result_sorts: dict[tuple[str, int], str | None] = {}
        # (sort, pe, user) -> interned vector
        self._vectors: dict[tuple, FacetVector] = {}
        # id(interned vector) -> memoized bottom check (safe: the
        # intern table keeps every keyed vector alive for the suite's
        # lifetime, so ids are never reused by live foreign vectors).
        self._bottoms: dict[int, bool] = {}
        self._unknown_by_sort: dict[str | None, FacetVector] = {}
        self._bottom_by_sort: dict[str | None, FacetVector] = {}
        # (sort, constant) -> interned constant vector
        self._consts: dict[tuple, FacetVector] = {}
        # (facet name, prim, sig, projected args) -> operator result
        self._ops: dict[tuple, object] = {}
        # (prim, interned arg identities) -> complete PrimOutcome
        self._outcomes: dict[tuple, PrimOutcome] = {}

    # -- structure ------------------------------------------------------
    def facets_for(self, sort: str | None) -> tuple[Facet, ...]:
        """User facets of the algebra ``sort`` (empty for unknown)."""
        if sort is None:
            return ()
        return self._by_sort.get(sort, ())

    def facet_named(self, name: str) -> Facet:
        for facet in self.facets:
            if facet.name == name:
                return facet
        raise KeyError(f"no facet named {name!r}")

    def describe(self) -> str:
        lines = [PE_FACET.describe()]
        lines.extend(facet.describe() for facet in self.facets)
        return "\n".join(lines)

    # -- vector constructors ---------------------------------------------
    def make_vector(self, sort: str | None, pe: PEValue,
                    user: tuple[AbstractValue, ...]) -> FacetVector:
        """Hash-consing constructor: one shared instance per distinct
        ``(sort, pe, user)``; falls back to a fresh instance when a
        component is unhashable or caching is off."""
        if not self.caching:
            return FacetVector(sort, pe, user)
        key = (sort, pe, user)
        try:
            vector = self._vectors.get(key)
        except TypeError:
            return FacetVector(sort, pe, user)
        if vector is not None:
            self.cache_stats.vector_hits += 1
            return vector
        self.cache_stats.vector_misses += 1
        vector = FacetVector(sort, pe, user)
        self._vectors[key] = vector
        self._bottoms[id(vector)] = self._compute_is_bottom(vector)
        return vector

    def const_vector(self, value: Value) -> FacetVector:
        """``K^`` of Figure 3: a constant, abstracted into every facet of
        its algebra."""
        if not is_value(value):
            raise TypeError(f"not a value: {value!r}")
        sort = sort_of(value)
        if self.caching:
            key = (sort, value)
            try:
                cached = self._consts.get(key)
            except TypeError:
                cached = key = None
            if cached is not None:
                return cached
        user = tuple(facet.abstract(value)
                     for facet in self.facets_for(sort))
        vector = self.make_vector(sort, PEValue.const(value), user)
        if self.caching and key is not None:
            self._consts[key] = vector
        return vector

    def unknown(self, sort: str | None = None) -> FacetVector:
        """A fully dynamic value: top in every component."""
        if self.caching:
            cached = self._unknown_by_sort.get(sort)
            if cached is not None:
                return cached
        user = tuple(facet.domain.top for facet in self.facets_for(sort))
        vector = self.make_vector(sort, PEValue.top(), user)
        if self.caching:
            self._unknown_by_sort[sort] = vector
        return vector

    def bottom(self, sort: str | None = None) -> FacetVector:
        if self.caching:
            cached = self._bottom_by_sort.get(sort)
            if cached is not None:
                return cached
        user = tuple(facet.domain.bottom
                     for facet in self.facets_for(sort))
        vector = self.make_vector(sort, PEValue.bottom(), user)
        if self.caching:
            self._bottom_by_sort[sort] = vector
        return vector

    def input(self, sort: str, pe: PEValue | None = None,
              **components: AbstractValue) -> FacetVector:
        """Build a specialization input like the paper's ``<T, 3>``
        (dynamic vector of known size 3): keyword arguments name facets,
        unnamed facets default to top."""
        facets = self.facets_for(sort)
        known = dict(components)
        user = []
        for facet in facets:
            user.append(known.pop(facet.name, facet.domain.top))
        if known:
            raise KeyError(
                f"no facet(s) named {sorted(known)} for sort {sort!r}")
        vector = self.make_vector(
            sort, pe if pe is not None else PEValue.top(), tuple(user))
        return self.smash(vector)

    def smash(self, vector: FacetVector) -> FacetVector:
        """Collapse to the summand bottom when any component is bottom
        (the smashed product of Definition 5)."""
        if self.is_bottom(vector):
            return self.bottom(vector.sort)
        return vector

    def is_bottom(self, vector: FacetVector) -> bool:
        cached = self._bottoms.get(id(vector))
        if cached is not None:
            return cached
        return self._compute_is_bottom(vector)

    def _compute_is_bottom(self, vector: FacetVector) -> bool:
        if vector.pe.is_bottom:
            return True
        facets = self.facets_for(vector.sort)
        return any(facet.domain.leq(component, facet.domain.bottom)
                   for facet, component in zip(facets, vector.user))

    # -- lattice operations -----------------------------------------------
    def join(self, left: FacetVector, right: FacetVector) -> FacetVector:
        """Component-wise join; joining across different summands loses
        the sort (conditional branches of different types)."""
        if left is right:
            return left
        if self.is_bottom(left):
            return right
        if self.is_bottom(right):
            return left
        if left.sort != right.sort:
            # Joining across summands: the facet components belong to
            # different algebras and are lost, but the PE component
            # joins in the flat Values lattice (constants of different
            # sorts are distinct, so this is usually top).
            return self.make_vector(None,
                                    PE_LATTICE.join(left.pe, right.pe),
                                    ())
        facets = self.facets_for(left.sort)
        user = tuple(facet.domain.join(l, r) for facet, l, r
                     in zip(facets, left.user, right.user))
        return self.make_vector(left.sort,
                                PE_LATTICE.join(left.pe, right.pe),
                                user)

    def leq(self, left: FacetVector, right: FacetVector) -> bool:
        if left is right:
            return True
        if self.is_bottom(left):
            return True
        if self.is_bottom(right):
            return False
        if left.sort != right.sort:
            # A sortless vector carries no facet components (they are
            # implicitly top), so only the PE order matters; vectors of
            # two *known* distinct summands are incomparable.
            if right.sort is None:
                return PE_LATTICE.leq(left.pe, right.pe)
            return False
        if not PE_LATTICE.leq(left.pe, right.pe):
            return False
        facets = self.facets_for(left.sort)
        return all(facet.domain.leq(l, r) for facet, l, r
                   in zip(facets, left.user, right.user))

    def component(self, vector: FacetVector, facet: Facet) \
            -> AbstractValue:
        """Project one facet's component out of a vector; vectors of a
        different (or unknown) sort project to that facet's top."""
        if vector.sort != facet.carrier:
            return facet.domain.top
        index = self._facet_pos.get(id(facet))
        if index is None or index >= len(vector.user):
            # A facet that is not part of this suite projects to top.
            return facet.domain.top
        return vector.user[index]

    # -- the product operators (Definition 5) ------------------------------
    def apply_prim(self, prim_name: str,
                   args: Sequence[FacetVector]) -> PrimOutcome:
        """Apply the product operator ``omega_p`` for a primitive.

        Implements both clauses of Definition 5 and the constant
        propagation of Figure 3's ``K^_P``: when the application yields a
        constant, the result vector is the constant's abstraction in
        *every* facet.

        The whole outcome — result vector, fold decision and the
        semantic ``facet_evaluations`` count — is a pure function of
        the arguments, so it is memoized on interned argument identity;
        a cache hit replays the exact accounting of the original
        application.
        """
        if prim_name not in PRIMITIVES:
            raise EvalError(f"unknown primitive {prim_name!r}")
        memo_key = None
        if self.caching:
            interned = self._bottoms
            if all(id(arg) in interned for arg in args):
                memo_key = (prim_name, *map(id, args))
                cached = self._outcomes.get(memo_key)
                if cached is not None:
                    self.cache_stats.outcome_hits += 1
                    return cached
                self.cache_stats.outcome_misses += 1
        outcome = self._apply_prim_uncached(prim_name, args)
        if memo_key is not None:
            self._outcomes[memo_key] = outcome
        return outcome

    def _apply_prim_uncached(self, prim_name: str,
                             args: Sequence[FacetVector]) -> PrimOutcome:
        sig, facets = self._dispatch_prim(prim_name, args)
        if sig is None:
            result_sort = self._common_result_sort(prim_name, args)
            return PrimOutcome(self.unknown(result_sort), None,
                               False, None, 0)
        if any(self.is_bottom(arg) for arg in args):
            return PrimOutcome(self.bottom(sig.result_sort), sig,
                               False, None, 0)

        pe_result = self._apply_pe(prim_name, sig,
                                   tuple(arg.pe for arg in args))
        evaluations = 1  # the PE facet ran

        if sig.is_closed:
            components = []
            for facet in facets:
                projected = self._project_args(facet, sig, args)
                components.append(
                    self._apply_closed(facet, prim_name, sig, projected))
                evaluations += 1
            if pe_result.is_const:
                return PrimOutcome(
                    self.const_vector(pe_result.constant()), sig,
                    True, "pe", evaluations)
            vector = self.smash(
                self.make_vector(sig.result_sort, pe_result,
                                 tuple(components)))
            return PrimOutcome(vector, sig, False, None, evaluations)

        # Open operator: every facet (PE facet included) may produce the
        # constant; Lemma 3 guarantees agreement for consistent inputs.
        produced: list[tuple[str, PEValue]] = [("pe", pe_result)]
        for facet in facets:
            projected = self._project_args(facet, sig, args)
            produced.append(
                (facet.name,
                 facet.apply_open(prim_name, sig, projected)))
            evaluations += 1
        if any(value.is_bottom for _, value in produced):
            return PrimOutcome(self.bottom(sig.result_sort), sig,
                               False, None, evaluations)
        constants = [(name, value) for name, value in produced
                     if value.is_const]
        if constants:
            names = {name for name, _ in constants}
            distinct = {value for _, value in constants}
            if len(distinct) > 1:
                raise ConsistencyError(
                    f"{prim_name}: facets {sorted(names)} produced "
                    f"disagreeing constants {distinct}; the input facet "
                    f"values are inconsistent (Definition 6)")
            name, value = constants[0]
            return PrimOutcome(self.const_vector(value.constant()), sig,
                               True, name, evaluations)
        return PrimOutcome(self.unknown(sig.result_sort), sig,
                           False, None, evaluations)

    # -- cached operator applications ---------------------------------------
    def _apply_pe(self, prim_name: str, sig: PrimSig,
                  pe_args: tuple[PEValue, ...]) -> PEValue:
        """The PE facet's uniform operator, memoized (it is pure —
        errors fold to top deterministically)."""
        if not self.caching:
            return PE_FACET.apply(prim_name, sig, pe_args)
        key = ("pe", prim_name, sig, pe_args)
        try:
            cached = self._ops.get(key)
        except TypeError:
            return PE_FACET.apply(prim_name, sig, pe_args)
        if cached is not None:
            self.cache_stats.op_hits += 1
            return cached  # type: ignore[return-value]
        self.cache_stats.op_misses += 1
        result = PE_FACET.apply(prim_name, sig, pe_args)
        self._ops[key] = result
        return result

    def _apply_closed(self, facet: Facet, prim_name: str, sig: PrimSig,
                      projected: list[object]) -> AbstractValue:
        """A closed facet operator, memoized on interned inputs (facet
        operators are pure abstract functions by Definition 4)."""
        if not self.caching:
            return facet.apply_closed(prim_name, sig, projected)
        try:
            key: Hashable = (facet.name, prim_name, sig,
                             tuple(projected))
            cached = self._ops.get(key)
        except TypeError:
            return facet.apply_closed(prim_name, sig, projected)
        if cached is not None:
            self.cache_stats.op_hits += 1
            return cached
        self.cache_stats.op_misses += 1
        result = facet.apply_closed(prim_name, sig, projected)
        self._ops[key] = result
        return result

    # -- overload dispatch ----------------------------------------------------
    def _dispatch_prim(self, prim_name: str,
                       args: Sequence[FacetVector]) \
            -> tuple[PrimSig | None, tuple[Facet, ...]]:
        """Resolve the overload and its carrier's facets, memoized on
        ``(prim_name, argument sorts)``."""
        if not self.caching:
            sig = self._resolve_sig(prim_name, args)
            return (sig, self.facets_for(sig.carrier)) if sig \
                else _NO_SIG
        key = (prim_name, tuple(arg.sort for arg in args))
        entry = self._dispatch.get(key)
        if entry is not None:
            self.cache_stats.dispatch_hits += 1
            return entry
        self.cache_stats.dispatch_misses += 1
        sig = self._resolve_sig(prim_name, args)
        entry = (sig, self.facets_for(sig.carrier)) if sig else _NO_SIG
        self._dispatch[key] = entry
        return entry

    def resolve_sig(self, prim_name: str,
                    args: Sequence[FacetVector]) -> PrimSig | None:
        """Public alias of the overload resolver (used by the offline
        specializer and the generating extension); cached like
        :meth:`apply_prim`'s dispatch."""
        if prim_name not in PRIMITIVES:
            raise EvalError(f"unknown primitive {prim_name!r}")
        return self._dispatch_prim(prim_name, args)[0]

    def project_args(self, facet: Facet, sig: PrimSig,
                     args: Sequence[FacetVector]) -> list[object]:
        """Public alias of the per-facet argument projection."""
        return self._project_args(facet, sig, args)

    def _resolve_sig(self, prim_name: str,
                     args: Sequence[FacetVector]) -> PrimSig | None:
        prim = PRIMITIVES[prim_name]
        arg_sorts = [arg.sort for arg in args]
        candidates = [sig for sig in prim.sigs
                      if len(sig.arg_sorts) == len(args)
                      and all(known is None or want == known
                              for want, known
                              in zip(sig.arg_sorts, arg_sorts))]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _common_result_sort(self, prim_name: str,
                            args: Sequence[FacetVector]) -> str | None:
        key = (prim_name, len(args))
        if self.caching and key in self._result_sorts:
            return self._result_sorts[key]
        prim = PRIMITIVES[prim_name]
        sorts = {sig.result_sort for sig in prim.sigs
                 if len(sig.arg_sorts) == len(args)}
        result = sorts.pop() if len(sorts) == 1 else None
        if self.caching:
            self._result_sorts[key] = result
        return result

    def _project_args(self, facet: Facet, sig: PrimSig,
                      args: Sequence[FacetVector]) -> list[object]:
        projected: list[object] = []
        for arg_sort, arg in zip(sig.arg_sorts, args):
            if arg_sort == facet.carrier:
                projected.append(self.component(arg, facet))
            else:
                projected.append(arg.pe)
        return projected

    # -- consistency (Definition 6) ----------------------------------------
    def is_consistent(self, vector: FacetVector,
                      candidates: Iterable[Value]) -> bool:
        """Check Definition 6 against an explicit candidate set: some
        proper concrete value must be described by *every* component."""
        if self.is_bottom(vector):
            return False
        for candidate in candidates:
            if self.describes(vector, candidate):
                return True
        return False

    def describes(self, vector: FacetVector, value: Value) -> bool:
        """The conjunction of the logical relations: ``value`` lies in
        every component's concretization."""
        if sort_of(value) != vector.sort:
            return vector.sort is None
        if vector.pe.is_const and PEValue.const(value) != vector.pe:
            return False
        if vector.pe.is_bottom:
            return False
        facets = self.facets_for(vector.sort)
        return all(facet.concretizes(value, component)
                   for facet, component in zip(facets, vector.user))
