"""The partial-evaluation facet (Definition 7).

Ordinary partial evaluation of primitives — constant folding — is itself
a facet: its domain is the flat ``Values`` lattice and, for *every*
operator of the algebra, open or closed, the abstract version is

    p^(d1, ..., dn) = bottom          if some di = bottom
                    = tau(K_p(d1..dn)) if all di are constants
                    = top             otherwise

It is always the first component of every product of facets (Section
4.4).  Unlike user facets it is not tied to one carrier; we expose it as
one object whose operators are generated uniformly from the concrete
semantics ``K_p``.

One operational refinement: when folding raises an evaluation error
(division by zero, out-of-range ``vref``), we return ``top`` — i.e. keep
the expression residual — instead of the denotational bottom.  Folding
the error away would change observable behaviour; residualizing preserves
it at run time and stays safe (the residual value is above bottom).
"""

from __future__ import annotations

from typing import Sequence

from repro.lang.errors import EvalError
from repro.lang.primitives import PrimSig, apply_primitive, \
    fold_would_blow_up
from repro.lattice.pevalue import PE_LATTICE, PEValue


class PartialEvaluationFacet:
    """The distinguished facet occupying component 0 of every product."""

    name = "pe"
    domain = PE_LATTICE

    def abstract(self, value: object) -> PEValue:
        """``alpha_Values = tau``: a concrete value abstracts to the
        constant denoting it (its "textual representation")."""
        return PEValue.const(value)  # type: ignore[arg-type]

    def apply(self, prim: str, sig: PrimSig,
              args: Sequence[PEValue]) -> PEValue:
        """The uniform operator of Definition 7 (open and closed alike)."""
        if any(arg.is_bottom for arg in args):
            return PEValue.bottom()
        if all(arg.is_const for arg in args):
            consts = [a.constant() for a in args]
            if fold_would_blow_up(prim, consts):
                return PEValue.top()
            try:
                return PEValue.const(apply_primitive(prim, consts))
            except EvalError:
                return PEValue.top()
        return PEValue.top()

    def describe(self) -> str:
        return "facet pe over all algebras: constant folding (Def. 7)"

    def __repr__(self) -> str:
        return "<PartialEvaluationFacet>"


#: Shared instance; the facet is stateless.
PE_FACET = PartialEvaluationFacet()
