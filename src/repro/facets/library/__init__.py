"""Shipped facets: Sign (Example 1), Parity, Interval, Vector-Size
(§6), and the ConstSet user-extensibility demonstration."""

from repro.facets.library.constset import (
    ConstSetFacet, ConstSetLattice)
from repro.facets.library.interval import (
    EMPTY, FULL, Interval, IntervalFacet, IntervalLattice)
from repro.facets.library.parity import EVEN, ODD, ParityFacet
from repro.facets.library.sign import NEG, POS, ZERO, SignFacet
from repro.facets.library.vector_size import VectorSizeFacet

__all__ = [
    "ConstSetFacet", "ConstSetLattice",
    "EMPTY", "FULL", "Interval", "IntervalFacet", "IntervalLattice",
    "EVEN", "ODD", "ParityFacet",
    "NEG", "POS", "ZERO", "SignFacet",
    "VectorSizeFacet",
]
