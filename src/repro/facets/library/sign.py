"""The Sign facet — Example 1 of the paper, extended to all primitives.

Domain ``{bot, pos, zero, neg, top}`` (a flat lattice over three points),
abstraction by comparison with zero.  The paper defines ``+^`` (closed)
and ``<^`` (open); we flesh out the rest of the numeric algebra with the
best sound sign rules.  The facet is instantiable over the ``int`` or
``float`` carrier — the overloaded primitives resolve per carrier, so a
suite usually contains one instance of each.

Open-operator logic: the three sign classes denote the disjoint sets
``(0, +inf)``, ``{0}``, ``(-inf, 0)``; a comparison folds exactly when
the classes decide it (e.g. ``neg < zero`` is ``true``, ``zero = zero``
is ``true`` because both sides are exactly 0, ``pos < pos`` is unknown).
"""

from __future__ import annotations

from repro.lang.values import FLOAT, INT, Value
from repro.lattice.core import AbstractValue
from repro.lattice.flat import FlatLattice
from repro.lattice.pevalue import PEValue
from repro.facets.base import Facet

POS = "pos"
ZERO = "zero"
NEG = "neg"

_SIGNS = (POS, ZERO, NEG)


class SignFacet(Facet):
    """Sign information for a numeric algebra (Example 1)."""

    def __init__(self, carrier: str = INT) -> None:
        super().__init__()
        if carrier not in (INT, FLOAT):
            raise ValueError(f"sign facet needs a numeric carrier, "
                             f"got {carrier!r}")
        self.name = "sign" if carrier == INT else f"sign_{carrier}"
        self.carrier = carrier
        self.domain = FlatLattice(self.name, _SIGNS)
        top, bottom = self.domain.top, self.domain.bottom

        def known(value: AbstractValue) -> bool:
            return value in _SIGNS

        def add(a: AbstractValue, b: AbstractValue) -> AbstractValue:
            # Example 1: zero is the unit; equal signs persist.
            if a == ZERO:
                return b
            if b == ZERO:
                return a
            return self.domain.join(a, b)

        def sub(a: AbstractValue, b: AbstractValue) -> AbstractValue:
            if b == ZERO:
                return a
            if known(b):
                return add(a, _negated(b))
            return top

        def mul(a: AbstractValue, b: AbstractValue) -> AbstractValue:
            # zero annihilates even an unknown partner.
            if a == ZERO or b == ZERO:
                return ZERO
            if carrier == FLOAT:
                # IEEE underflow: tiny*tiny rounds to (-)0.0, so the
                # sign of a nonzero float product is NOT the sign rule.
                return top
            if known(a) and known(b):
                return POS if a == b else NEG
            return top

        def neg(a: AbstractValue) -> AbstractValue:
            return _negated(a) if known(a) else a

        def abs_(a: AbstractValue) -> AbstractValue:
            if a == ZERO:
                return ZERO
            if a in (POS, NEG):
                return POS
            return a

        def max_(a: AbstractValue, b: AbstractValue) -> AbstractValue:
            if a == POS or b == POS:
                return POS
            if known(a) and known(b):
                # max over {zero, neg}: zero wins unless both negative.
                return NEG if a == b == NEG else ZERO
            return top

        def min_(a: AbstractValue, b: AbstractValue) -> AbstractValue:
            if a == NEG or b == NEG:
                return NEG
            if known(a) and known(b):
                return POS if a == b == POS else ZERO
            return top

        def div(a: AbstractValue, b: AbstractValue) -> AbstractValue:
            # Truncating int division loses sign precision (1 div 2 = 0);
            # only a zero dividend is exact.
            if a == ZERO:
                return ZERO
            return top

        def fdiv(a: AbstractValue, b: AbstractValue) -> AbstractValue:
            # Only a zero dividend is exact: tiny/huge underflows to
            # zero, so nonzero quotients can lose their sign class.
            if a == ZERO:
                return ZERO
            return top

        def mod(a: AbstractValue, b: AbstractValue) -> AbstractValue:
            if a == ZERO:
                return ZERO
            return top

        self.closed_ops = {
            "+": add, "-": sub, "*": mul, "neg": neg, "abs": abs_,
            "min": min_, "max": max_,
        }
        if carrier == INT:
            self.closed_ops["div"] = div
            self.closed_ops["mod"] = mod
        else:
            self.closed_ops["/"] = fdiv

        def compare(decide):
            def op(a: AbstractValue, b: AbstractValue) -> PEValue:
                if known(a) and known(b):
                    verdict = decide(a, b)
                    if verdict is not None:
                        return PEValue.const(verdict)
                return PEValue.top()
            return op

        self.open_ops = {
            "<": compare(_lt),
            "<=": compare(_le),
            ">": compare(lambda a, b: _lt(b, a)),
            ">=": compare(lambda a, b: _le(b, a)),
            "=": compare(_eq),
            "!=": compare(lambda a, b: _negate(_eq(a, b))),
        }

        # Branch refinements (constraint-propagation extension): a flat
        # sign domain can only be sharpened by comparisons whose other
        # side is the exactly-zero class (``x < 0`` true means neg) or
        # by assumed equalities (meet of the two classes).
        from repro.facets.base import negated_refiner

        def against_zero(truth_class: str):
            mirrored = {NEG: POS, POS: NEG}[truth_class]

            def refine(assume: bool, a: AbstractValue,
                       b: AbstractValue):
                if not assume:
                    return a, b
                if b == ZERO:
                    a = self.domain.meet(a, truth_class)
                elif a == ZERO:
                    b = self.domain.meet(b, mirrored)
                return a, b
            return refine

        def equal(assume: bool, a: AbstractValue, b: AbstractValue):
            if assume:
                meet = self.domain.meet(a, b)
                return meet, meet
            return a, b

        self.refine_ops = {
            "<": against_zero(NEG),
            ">": against_zero(POS),
            ">=": negated_refiner(against_zero(NEG)),
            "<=": negated_refiner(against_zero(POS)),
            "=": equal,
            "!=": negated_refiner(equal),
        }

    def abstract(self, value: Value) -> AbstractValue:
        if value > 0:
            return POS
        if value < 0:
            return NEG
        return ZERO


def _negated(sign: str) -> str:
    return {POS: NEG, NEG: POS, ZERO: ZERO}[sign]


def _lt(a: str, b: str) -> bool | None:
    """``a < b`` when decidable from the sign classes, else None."""
    if a == NEG and b in (ZERO, POS):
        return True
    if a == ZERO and b == POS:
        return True
    if a == POS and b in (NEG, ZERO):
        return False
    if a == ZERO and b in (NEG, ZERO):
        return False
    if a == POS and b == NEG:
        return False
    if a == NEG and b == NEG:
        return None
    return None


def _le(a: str, b: str) -> bool | None:
    if a == NEG and b in (ZERO, POS):
        return True
    if a == ZERO and b in (ZERO, POS):
        return True
    if a == POS and b in (NEG, ZERO):
        return False
    if a == ZERO and b == NEG:
        return False
    return None


def _eq(a: str, b: str) -> bool | None:
    if a == ZERO and b == ZERO:
        return True
    if a != b:
        return False
    return None


def _negate(verdict: bool | None) -> bool | None:
    return None if verdict is None else not verdict
