"""The ConstSet facet: "one of these k constants".

A demonstration that the facet framework really is *parameterized* — a
user-defined facet built purely from the public API, with no special
support anywhere else.  Its domain is

    bot  <=  {v1, ..., vm}  (m <= k)  <=  top

ordered by set inclusion and collapsing to top beyond ``k`` elements
(which keeps the height finite at ``k + 1``).  Abstraction of a
constant is the singleton set.

Operators are generated *generically* from the concrete semantics:

* a closed operator applies ``K_p`` elementwise over the cartesian
  product of its argument sets (pairs on which ``K_p`` errors denote
  bottom concretizations and are skipped);
* an open operator folds when every element combination agrees on the
  answer — e.g. ``x < y`` with ``x in {1,2}`` and ``y in {7,9}``.

This gives a small decision procedure for free and exercises parts of
the product machinery the hand-written facets do not (set-valued
components, error-skipping elementwise ops).
"""

from __future__ import annotations

from itertools import product as cartesian
from typing import Iterable

from repro.lang.errors import EvalError
from repro.lang.primitives import PrimSig, apply_primitive, \
    fold_would_blow_up, primitives_for_carrier
from repro.lang.values import INT, Value
from repro.lattice.core import AbstractValue, Lattice
from repro.lattice.pevalue import PEValue
from repro.facets.base import Facet

#: Default bound on tracked set size.
DEFAULT_LIMIT = 8


class ConstSetLattice(Lattice):
    """Sets of at most ``limit`` values under inclusion, plus top."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("the set bound must be at least 1")
        self.name = f"constset<={limit}"
        self.limit = limit
        self._top = ("top", self.name)

    @property
    def bottom(self) -> AbstractValue:
        return frozenset()

    @property
    def top(self) -> AbstractValue:
        return self._top

    def make(self, values: Iterable[Value]) -> AbstractValue:
        """Build an element, widening to top past the bound."""
        collected = frozenset(values)
        if len(collected) > self.limit:
            return self._top
        return collected

    def leq(self, left: AbstractValue, right: AbstractValue) -> bool:
        if right == self._top:
            return True
        if left == self._top:
            return False
        assert isinstance(left, frozenset) \
            and isinstance(right, frozenset)
        return left <= right

    def join(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        if left == self._top or right == self._top:
            return self._top
        assert isinstance(left, frozenset) \
            and isinstance(right, frozenset)
        return self.make(left | right)

    def meet(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        if left == self._top:
            return right
        if right == self._top:
            return left
        assert isinstance(left, frozenset) \
            and isinstance(right, frozenset)
        return left & right

    def height(self) -> int:
        return self.limit + 1

    def is_enumerable(self) -> bool:
        return False

    def contains(self, element: AbstractValue) -> bool:
        if element == self._top:
            return True
        return isinstance(element, frozenset) \
            and len(element) <= self.limit


class ConstSetFacet(Facet):
    """Bounded value-set tracking for the ``int`` algebra."""

    carrier = INT

    def __init__(self, limit: int = DEFAULT_LIMIT) -> None:
        super().__init__()
        self.name = "constset"
        self.domain = ConstSetLattice(limit)
        for prim, sig in primitives_for_carrier(self.carrier):
            if sig.is_closed:
                self.closed_ops[prim] = self._elementwise_closed(prim,
                                                                  sig)
            else:
                self.open_ops[prim] = self._elementwise_open(prim, sig)

    def abstract(self, value: Value) -> AbstractValue:
        return frozenset((value,))

    def sample_abstract_values(self):
        lattice = self.domain
        return [lattice.bottom, frozenset((0,)), frozenset((3,)),
                frozenset((-1, 2)), frozenset((1, 2, 3)), lattice.top]

    # -- generic elementwise operators ----------------------------------
    def _combinations(self, sig: PrimSig, args) -> list[tuple] | None:
        """All concrete argument tuples, or None when some argument is
        unbounded (top / non-constant PE value)."""
        pools = []
        for sort, arg in zip(sig.arg_sorts, args):
            if sort == self.carrier:
                if arg == self.domain.top:
                    return None
                assert isinstance(arg, frozenset)
                pools.append(sorted(arg))
            else:
                assert isinstance(arg, PEValue)
                if not arg.is_const:
                    return None
                pools.append([arg.constant()])
        return list(cartesian(*pools))

    def _elementwise_closed(self, prim: str, sig: PrimSig):
        def op(*args):
            combos = self._combinations(sig, args)
            if combos is None:
                return self.domain.top
            results = []
            for combo in combos:
                if fold_would_blow_up(prim, combo):
                    return self.domain.top
                try:
                    results.append(apply_primitive(prim, list(combo)))
                except EvalError:
                    continue  # a bottom concretization
            if not results:
                # Every combination errors: no proper value reaches
                # here, but top stays safe and avoids claiming dead
                # code the PE facet cannot see.
                return self.domain.top
            return self.domain.make(results)
        return op

    def _elementwise_open(self, prim: str, sig: PrimSig):
        def op(*args) -> PEValue:
            combos = self._combinations(sig, args)
            if combos is None:
                return PEValue.top()
            answers = set()
            for combo in combos:
                if fold_would_blow_up(prim, combo):
                    return PEValue.top()
                try:
                    answers.add(apply_primitive(prim, list(combo)))
                except EvalError:
                    continue
            if len(answers) == 1:
                return PEValue.const(answers.pop())
            return PEValue.top()
        return op
