"""The Parity facet: even/odd over the integer algebra.

A second user-defined facet in the spirit of the paper's Section 1 list
("signs, ranges, and types"): its flat domain ``{bot, even, odd, top}``
tracks residues mod 2.  Its open ``=``/``!=`` operators fold equality
tests between values of *different* parity — something neither plain PE
nor the sign facet can see — which the example suite and the product-of-
facets tests exercise.
"""

from __future__ import annotations

from repro.lang.values import INT, Value
from repro.lattice.core import AbstractValue
from repro.lattice.flat import FlatLattice
from repro.lattice.pevalue import PEValue
from repro.facets.base import Facet

EVEN = "even"
ODD = "odd"

_PARITIES = (EVEN, ODD)


class ParityFacet(Facet):
    """Residue-mod-2 information for the ``int`` algebra."""

    name = "parity"
    carrier = INT

    def __init__(self) -> None:
        super().__init__()
        self.domain = FlatLattice(self.name, _PARITIES)
        top = self.domain.top

        def known(value: AbstractValue) -> bool:
            return value in _PARITIES

        def add(a: AbstractValue, b: AbstractValue) -> AbstractValue:
            if known(a) and known(b):
                return EVEN if a == b else ODD
            return top

        def mul(a: AbstractValue, b: AbstractValue) -> AbstractValue:
            if a == EVEN or b == EVEN:
                return EVEN
            if a == ODD and b == ODD:
                return ODD
            return top

        def neg(a: AbstractValue) -> AbstractValue:
            return a

        def mod(a: AbstractValue, b: AbstractValue) -> AbstractValue:
            # Truncating a mod b = a - b*(a div b): even - even*q is
            # even, odd - even*q is odd; an odd divisor reveals nothing.
            if b == EVEN and known(a):
                return a
            return top

        def same(a: AbstractValue, b: AbstractValue) -> AbstractValue:
            return a if a == b else top

        self.closed_ops = {
            "+": add, "-": add, "*": mul, "neg": neg, "abs": neg,
            "mod": mod, "min": same, "max": same,
        }

        def eq(a: AbstractValue, b: AbstractValue) -> PEValue:
            if known(a) and known(b) and a != b:
                return PEValue.const(False)
            return PEValue.top()

        def neq(a: AbstractValue, b: AbstractValue) -> PEValue:
            if known(a) and known(b) and a != b:
                return PEValue.const(True)
            return PEValue.top()

        self.open_ops = {"=": eq, "!=": neq}

    def abstract(self, value: Value) -> AbstractValue:
        return EVEN if value % 2 == 0 else ODD
