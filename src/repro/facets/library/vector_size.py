"""The Size facet for the vector ADT — Section 6.1 of the paper.

The facet domain is ``V^ = Int + {bot, top}``: a flat lattice whose
points are the possible sizes.  The abstraction of a vector is its size.
Operators, exactly as in the paper:

* ``mkvec`` (closed, ``MkVec^ : Values -> V^``): the size is whatever
  constant the argument partially evaluated to;
* ``updvec`` (closed, ``UpdVec^ : V^ x Values x Values -> V^``): updating
  preserves the size;
* ``vsize`` (open, ``Vecf^ : V^ -> Values``): a known size *is* the
  constant — this is the operator that makes the inner-product example
  go;
* ``vref`` (open): never folds — the size says nothing about elements.

Note how ``mkvec``'s argument and ``updvec``'s index/element arguments
arrive as PE values (they are of foreign sorts), matching the paper's
signatures verbatim.
"""

from __future__ import annotations

from repro.lang.values import VECTOR, Value, Vector
from repro.lattice.core import AbstractValue
from repro.lattice.flat import FlatLattice
from repro.lattice.pevalue import PEValue
from repro.facets.base import Facet


class VectorSizeFacet(Facet):
    """Size information for the vector algebra (Section 6.1)."""

    name = "size"
    carrier = VECTOR

    def __init__(self) -> None:
        super().__init__()
        # Points are all integers: a flat, non-enumerable, height-2
        # lattice, exactly the paper's V^ = Int with bot/top adjoined.
        self.domain = FlatLattice(self.name, points=None)
        top = self.domain.top

        def mkvec(size: PEValue) -> AbstractValue:
            if size.is_const:
                return size.constant()
            return top

        def updvec(vec: AbstractValue, index: PEValue,
                   value: PEValue) -> AbstractValue:
            return vec

        self.closed_ops = {"mkvec": mkvec, "updvec": updvec}

        def vsize(vec: AbstractValue) -> PEValue:
            if self.domain.is_point(vec):
                return PEValue.const(vec)
            return PEValue.top()

        def vref(vec: AbstractValue, index: PEValue) -> PEValue:
            return PEValue.top()

        self.open_ops = {"vsize": vsize, "vref": vref}

    def abstract(self, value: Value) -> AbstractValue:
        assert isinstance(value, Vector)
        return value.size

    def make_abstract(self):
        """The hand-written abstract Size facet of Section 6.2 — the
        identity derivation cannot see through ``mkvec``'s and
        ``vsize``'s ``Values``-typed positions."""
        from repro.facets.abstract.size import AbstractVectorSizeFacet
        return AbstractVectorSizeFacet(self)

    def sample_abstract_values(self) -> list[AbstractValue]:
        return [self.domain.bottom, 0, 1, 3, 7, self.domain.top]
